//! **SpLPG** — distributed GNN training for link prediction via graph
//! sparsification.
//!
//! A from-scratch Rust reproduction of *"Demystifying Distributed Training
//! of Graph Neural Networks for Link Prediction"* (Huang & Lee, ICDCS
//! 2025). This facade crate wires the workspace together and exposes the
//! paper's Algorithm 1 as a builder API:
//!
//! 1. **Partition** the graph with a METIS-like multilevel partitioner,
//!    retaining the full-neighbor list (and features) of every node in its
//!    partition ([`splpg_partition`]);
//! 2. **Sparsify** each partition with the effective-resistance sampler
//!    (degree-based approximation of Theorem 2), placing the sparsified
//!    copies in shared memory ([`splpg_sparsify`]);
//! 3. **Train** one GNN replica per worker, drawing positive samples from
//!    the local partition and *global* negative samples through the
//!    sparsified remote partitions, synchronizing by gradient or model
//!    averaging ([`splpg_dist`]).
//!
//! # Quick start
//!
//! ```
//! use splpg::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A synthetic stand-in for Cora at 5% scale (see splpg-datasets).
//! let data = DatasetSpec::cora().generate(Scale::new(0.05, 16), 7)?;
//!
//! let outcome = SpLpg::builder()
//!     .workers(2)
//!     .strategy(Strategy::SpLpg)
//!     .sparsification_alpha(0.15)
//!     .epochs(2)
//!     .hidden(8)
//!     .layers(2)
//!     .fanouts(vec![Some(5), Some(5)])
//!     .hits_k(20)
//!     .build()
//!     .run(ModelKind::GraphSage, &data)?;
//!
//! println!("Hits@20 = {:.3}", outcome.test_hits);
//! println!("comm    = {} bytes/epoch", outcome.comm.mean_epoch_bytes());
//! # Ok(())
//! # }
//! ```
//!
//! The [`prelude`] re-exports everything needed for typical use; the
//! individual crates remain available for fine-grained control
//! (custom partitioners, raw tensor autograd, exact effective
//! resistances, ...).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use splpg_datasets as datasets;
pub use splpg_dist as dist;
pub use splpg_gnn as gnn;
pub use splpg_graph as graph;
pub use splpg_linalg as linalg;
pub use splpg_net as net;
pub use splpg_nn as nn;
pub use splpg_par as par;
pub use splpg_partition as partition;
pub use splpg_rng as rng;
pub use splpg_sparsify as sparsify;
pub use splpg_tensor as tensor;

use splpg_datasets::Dataset;
use splpg_dist::{
    DistConfig, DistError, DistOutcome, DistTrainer, FaultConfig, FaultPlan, RetryPolicy,
    SparsifierKind, Strategy, SyncMethod,
};
use splpg_gnn::trainer::{ModelKind, TrainConfig};

/// Commonly-used types in one import.
pub mod prelude {
    pub use crate::{SpLpg, SpLpgBuilder};
    pub use splpg_datasets::{Dataset, DatasetSpec, Scale};
    pub use splpg_dist::{
        tcp_worker_entry, CodecConfig, CommReport, DistConfig, DistOutcome, DistTrainer,
        FaultConfig, FaultPlan, FeatCodec, NetReport, RetryPolicy, ShmBusMode, SparsifierKind,
        StructCodec, Strategy, SyncMethod, TcpConfig, WorkerEnv,
    };
    pub use splpg_gnn::trainer::{ModelKind, TrainConfig};
    pub use splpg_graph::{Edge, EdgeSplit, FeatureMatrix, Graph, GraphBuilder, NodeId};
    pub use splpg_partition::{MetisLike, Partition, Partitioner};
    pub use splpg_sparsify::{DegreeSparsifier, SparsifyConfig, Sparsifier};
}

/// The SpLPG framework, configured and ready to run (Algorithm 1).
///
/// Construct through [`SpLpg::builder`].
#[derive(Debug, Clone)]
pub struct SpLpg {
    dist: DistConfig,
    train: TrainConfig,
}

impl SpLpg {
    /// Starts a builder with the paper's defaults (4 workers, SpLPG
    /// strategy, alpha 0.15, model averaging).
    pub fn builder() -> SpLpgBuilder {
        SpLpgBuilder::default()
    }

    /// The cluster configuration.
    pub fn dist_config(&self) -> &DistConfig {
        &self.dist
    }

    /// The training hyperparameters.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// Runs Algorithm 1 end-to-end: partition, sparsify, train, evaluate.
    ///
    /// # Errors
    ///
    /// Propagates partitioning, sparsification and training failures as
    /// [`DistError`].
    pub fn run(&self, kind: ModelKind, data: &Dataset) -> Result<DistOutcome, DistError> {
        DistTrainer::new(self.dist.clone(), self.train.clone()).run(kind, data)
    }
}

/// Builder for [`SpLpg`] (non-consuming, per the Rust API guidelines).
#[derive(Debug, Clone)]
#[derive(Default)]
pub struct SpLpgBuilder {
    dist: DistConfig,
    train: TrainConfig,
}


impl SpLpgBuilder {
    /// Number of workers `p` (paper: 4, 8, 16).
    pub fn workers(&mut self, p: usize) -> &mut Self {
        self.dist.num_workers = p;
        self
    }

    /// Training strategy (default [`Strategy::SpLpg`]).
    pub fn strategy(&mut self, strategy: Strategy) -> &mut Self {
        self.dist.strategy = strategy;
        self
    }

    /// Sparsification level alpha (default 0.15).
    pub fn sparsification_alpha(&mut self, alpha: f64) -> &mut Self {
        self.dist.alpha = alpha;
        self
    }

    /// Synchronization method (default model averaging).
    pub fn sync(&mut self, sync: SyncMethod) -> &mut Self {
        self.dist.sync = sync;
        self
    }

    /// Training epochs.
    pub fn epochs(&mut self, epochs: usize) -> &mut Self {
        self.train.epochs = epochs;
        self
    }

    /// Hidden/embedding width.
    pub fn hidden(&mut self, hidden: usize) -> &mut Self {
        self.train.hidden = hidden;
        self
    }

    /// GNN layer count.
    pub fn layers(&mut self, layers: usize) -> &mut Self {
        self.train.layers = layers;
        self
    }

    /// Per-hop sampling fanouts (`None` = full neighborhood).
    pub fn fanouts(&mut self, fanouts: Vec<Option<usize>>) -> &mut Self {
        self.train.fanouts = fanouts;
        self
    }

    /// Mini-batch size in positive edges.
    pub fn batch_size(&mut self, batch_size: usize) -> &mut Self {
        self.train.batch_size = batch_size;
        self
    }

    /// Adam learning rate.
    pub fn learning_rate(&mut self, lr: f32) -> &mut Self {
        self.train.learning_rate = lr;
        self
    }

    /// Hits@K cutoff.
    pub fn hits_k(&mut self, k: usize) -> &mut Self {
        self.train.hits_k = k;
        self
    }

    /// RNG seed for model init and training.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.train.seed = seed;
        self
    }

    /// Evaluate every `n` epochs (default 1).
    pub fn eval_every(&mut self, n: usize) -> &mut Self {
        self.dist.eval_every = n.max(1);
        self
    }

    /// Injects worker faults (per-worker per-epoch crash probability).
    pub fn faults(&mut self, faults: FaultConfig) -> &mut Self {
        self.dist.faults = Some(faults);
        self
    }

    /// Injects deterministic message-level wire faults
    /// (drop/duplicate/delay probabilities and scheduled worker crashes).
    pub fn wire_faults(&mut self, plan: FaultPlan) -> &mut Self {
        self.dist.wire_faults = Some(plan);
        self
    }

    /// Minimum number of workers that must answer each synchronization
    /// unit (default: all of them).
    pub fn quorum(&mut self, q: usize) -> &mut Self {
        self.dist.quorum = Some(q);
        self
    }

    /// Per-message timeout/backoff/retry policy used when silence is
    /// possible (wire faults or a quorum below the worker count).
    pub fn retry(&mut self, policy: RetryPolicy) -> &mut Self {
        self.dist.retry = policy;
        self
    }

    /// Sparsifier used for the shared remote copies (default: the paper's
    /// degree-based effective-resistance sampler).
    pub fn sparsifier(&mut self, kind: SparsifierKind) -> &mut Self {
        self.dist.sparsifier = kind;
        self
    }

    /// Wire codec for protocol frames and data-plane pricing: structure
    /// delta+varint/RLE packing, f16/int8 feature quantization (default:
    /// uncompressed, lossless).
    pub fn wire_codec(&mut self, codec: splpg_dist::CodecConfig) -> &mut Self {
        self.dist.wire_codec = codec;
        self
    }

    /// Shared-memory feature bus for co-located workers: remote feature
    /// rows are read zero-copy from a master-published segment instead of
    /// crossing the wire (default: off). Falls back to the wire path when
    /// the host has no usable shared memory or the segment fails
    /// validation.
    pub fn feature_bus(&mut self, mode: splpg_dist::ShmBusMode) -> &mut Self {
        self.dist.feature_bus = mode;
        self
    }

    /// Finalizes the configuration.
    pub fn build(&self) -> SpLpg {
        SpLpg { dist: self.dist.clone(), train: self.train.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_datasets::{DatasetSpec, Scale};

    #[test]
    fn builder_sets_every_field() {
        let s = SpLpg::builder()
            .workers(8)
            .strategy(Strategy::PsgdPa)
            .sparsification_alpha(0.05)
            .sync(SyncMethod::GradientAveraging)
            .epochs(3)
            .hidden(32)
            .layers(2)
            .fanouts(vec![None, None])
            .batch_size(64)
            .learning_rate(0.01)
            .hits_k(50)
            .seed(9)
            .eval_every(2)
            .quorum(6)
            .retry(RetryPolicy { timeout_ms: 250, max_retries: 2, backoff: 3 })
            .wire_faults(FaultPlan { drop: 0.1, seed: 4, ..FaultPlan::default() })
            .wire_codec(splpg_dist::CodecConfig {
                structure: splpg_dist::StructCodec::Varint,
                features: splpg_dist::FeatCodec::Int8,
            })
            .feature_bus(splpg_dist::ShmBusMode::On)
            .build();
        assert_eq!(s.dist_config().num_workers, 8);
        assert_eq!(s.dist_config().strategy, Strategy::PsgdPa);
        assert_eq!(s.dist_config().alpha, 0.05);
        assert_eq!(s.dist_config().sync, SyncMethod::GradientAveraging);
        assert_eq!(s.dist_config().eval_every, 2);
        assert_eq!(s.dist_config().quorum, Some(6));
        assert_eq!(s.dist_config().retry.timeout_ms, 250);
        assert_eq!(s.dist_config().wire_faults.as_ref().unwrap().drop, 0.1);
        assert_eq!(s.dist_config().wire_codec.structure, splpg_dist::StructCodec::Varint);
        assert_eq!(s.dist_config().wire_codec.features, splpg_dist::FeatCodec::Int8);
        assert_eq!(s.dist_config().feature_bus, splpg_dist::ShmBusMode::On);
        assert_eq!(s.train_config().epochs, 3);
        assert_eq!(s.train_config().hidden, 32);
        assert_eq!(s.train_config().batch_size, 64);
        assert_eq!(s.train_config().hits_k, 50);
        assert_eq!(s.train_config().seed, 9);
    }

    #[test]
    fn end_to_end_smoke() {
        let data = DatasetSpec::citeseer().generate(Scale::new(0.05, 8), 3).unwrap();
        let out = SpLpg::builder()
            .workers(2)
            .epochs(1)
            .hidden(8)
            .layers(2)
            .fanouts(vec![Some(5), Some(5)])
            .hits_k(10)
            .build()
            .run(ModelKind::Gcn, &data)
            .unwrap();
        assert!(out.test_hits.is_finite());
        assert!(out.comm.total_bytes() > 0);
    }
}
