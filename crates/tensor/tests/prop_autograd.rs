//! Property-based gradient checks: random shapes, random data, random op
//! chains must all match central finite differences.

use proptest::prelude::*;
use splpg_tensor::{grad_check, Tensor};

fn arb_tensor(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-2.0f32..2.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn linear_sigmoid_mean_grad(x in arb_tensor(5, 4), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let w = Tensor::from_fn(x.cols(), 3, |_, _| rng.gen::<f32>() - 0.5);
        let report = grad_check(&x, 1e-3, |tape, v| {
            let wv = tape.leaf(w.clone());
            let y = tape.matmul(v, wv);
            let s = tape.sigmoid(y);
            tape.mean_all(s)
        });
        prop_assert!(report.passes(8e-2), "{:?}", report);
    }

    #[test]
    fn add_sub_mul_scale_grad(x in arb_tensor(4, 4), c in -3.0f32..3.0) {
        let report = grad_check(&x, 1e-3, |tape, v| {
            let a = tape.scale(v, c);
            let b = tape.mul(v, a);      // c * x^2
            let d = tape.sub(b, v);      // c x^2 - x
            let e = tape.add(d, v);      // c x^2
            tape.sum_all(e)
        });
        prop_assert!(report.passes(8e-2), "{:?}", report);
    }

    #[test]
    fn segment_pipeline_grad(x in arb_tensor(6, 3), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = x.rows();
        let idx: Vec<u32> = (0..8).map(|_| rng.gen_range(0..n) as u32).collect();
        let seg: Vec<u32> = (0..8).map(|_| rng.gen_range(0..3u32)).collect();
        let report = grad_check(&x, 1e-3, |tape, v| {
            let g = tape.gather_rows(v, &idx);
            let s = tape.segment_sum(g, &seg, 3);
            let t = tape.tanh(s);
            tape.mean_all(t)
        });
        prop_assert!(report.passes(8e-2), "{:?}", report);
    }

    #[test]
    fn bce_grad(x in arb_tensor(8, 1), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let targets: Vec<f32> = (0..x.rows()).map(|_| f32::from(rng.gen::<bool>())).collect();
        let report = grad_check(&x, 1e-3, |tape, v| tape.bce_with_logits(v, &targets));
        prop_assert!(report.passes(8e-2), "{:?}", report);
    }

    #[test]
    fn matmul_shapes_compose(a in arb_tensor(4, 3), seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let b = Tensor::from_fn(a.cols(), 5, |_, _| rng.gen::<f32>() - 0.5);
        // Forward identity: (A B)^T == B^T A^T
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn col_row_sums_agree_with_manual(x in arb_tensor(5, 5)) {
        let total: f32 = x.data().iter().sum();
        prop_assert!((x.col_sums().sum() - total).abs() < 1e-3);
        prop_assert!((x.row_sums().sum() - total).abs() < 1e-3);
    }
}
