//! Property-style gradient checks, run as seeded loops: random shapes,
//! random data, random op chains must all match central finite differences.
//!
//! Each case draws its inputs from a `splpg_rng` generator seeded by the
//! loop index, so failures reproduce exactly from the printed case number.

use splpg_rng::{Rng, SeedableRng};
use splpg_tensor::{grad_check, Tensor};

const CASES: u64 = 24;

fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(seed)
}

/// Random tensor with 1..=max_rows rows, 1..=max_cols cols, data in [-2, 2).
fn rand_tensor(r: &mut splpg_rng::rngs::StdRng, max_rows: usize, max_cols: usize) -> Tensor {
    let rows = r.gen_range(1..=max_rows);
    let cols = r.gen_range(1..=max_cols);
    Tensor::from_fn(rows, cols, |_, _| r.gen_range(-2.0f32..2.0))
}

#[test]
fn linear_sigmoid_mean_grad() {
    for case in 0..CASES {
        let mut r = rng(case);
        let x = rand_tensor(&mut r, 5, 4);
        let w = Tensor::from_fn(x.cols(), 3, |_, _| r.gen::<f32>() - 0.5);
        let report = grad_check(&x, 1e-3, |tape, v| {
            let wv = tape.leaf(w.clone());
            let y = tape.matmul(v, wv);
            let s = tape.sigmoid(y);
            tape.mean_all(s)
        });
        assert!(report.passes(8e-2), "case {case}: {report:?}");
    }
}

#[test]
fn add_sub_mul_scale_grad() {
    for case in 0..CASES {
        let mut r = rng(1000 + case);
        let x = rand_tensor(&mut r, 4, 4);
        let c = r.gen_range(-3.0f32..3.0);
        let report = grad_check(&x, 1e-3, |tape, v| {
            let a = tape.scale(v, c);
            let b = tape.mul(v, a); // c * x^2
            let d = tape.sub(b, v); // c x^2 - x
            let e = tape.add(d, v); // c x^2
            tape.sum_all(e)
        });
        assert!(report.passes(8e-2), "case {case}: {report:?}");
    }
}

#[test]
fn segment_pipeline_grad() {
    for case in 0..CASES {
        let mut r = rng(2000 + case);
        let x = rand_tensor(&mut r, 6, 3);
        let n = x.rows();
        let idx: Vec<u32> = (0..8).map(|_| r.gen_range(0..n) as u32).collect();
        let seg: Vec<u32> = (0..8).map(|_| r.gen_range(0..3u32)).collect();
        let report = grad_check(&x, 1e-3, |tape, v| {
            let g = tape.gather_rows(v, &idx);
            let s = tape.segment_sum(g, &seg, 3);
            let t = tape.tanh(s);
            tape.mean_all(t)
        });
        assert!(report.passes(8e-2), "case {case}: {report:?}");
    }
}

#[test]
fn bce_grad() {
    for case in 0..CASES {
        let mut r = rng(3000 + case);
        let x = rand_tensor(&mut r, 8, 1);
        let targets: Vec<f32> = (0..x.rows()).map(|_| f32::from(r.gen::<bool>())).collect();
        let report = grad_check(&x, 1e-3, |tape, v| tape.bce_with_logits(v, &targets));
        assert!(report.passes(8e-2), "case {case}: {report:?}");
    }
}

#[test]
fn matmul_shapes_compose() {
    for case in 0..CASES {
        let mut r = rng(4000 + case);
        let a = rand_tensor(&mut r, 4, 3);
        let b = Tensor::from_fn(a.cols(), 5, |_, _| r.gen::<f32>() - 0.5);
        // Forward identity: (A B)^T == B^T A^T
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.data().iter().zip(bt_at.data()) {
            assert!((x - y).abs() < 1e-4, "case {case}");
        }
    }
}

#[test]
fn col_row_sums_agree_with_manual() {
    for case in 0..CASES {
        let mut r = rng(5000 + case);
        let x = rand_tensor(&mut r, 5, 5);
        let total: f32 = x.data().iter().sum();
        assert!((x.col_sums().sum() - total).abs() < 1e-3, "case {case}");
        assert!((x.row_sums().sum() - total).abs() < 1e-3, "case {case}");
    }
}
