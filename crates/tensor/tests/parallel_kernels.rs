//! Bit-for-bit equality of the cache-blocked parallel matmul kernels
//! against the scalar references, across odd shapes and thread counts.
//!
//! Exact `==` on the raw f32 buffers — not approximate comparison — is
//! the contract: blocking and row partitioning must not change the
//! per-element accumulation order.

use splpg_par::Pool;
use splpg_rng::{Rng, SeedableRng};
use splpg_tensor::{kernels, Tensor};

const THREAD_COUNTS: [usize; 3] = [1, 3, 8];

/// Odd shapes: degenerate, single-row, prime dims, rows < threads, and
/// sizes straddling the tile boundaries (64/128).
const SHAPES: [(usize, usize, usize); 10] = [
    (1, 1, 1),
    (1, 17, 1),
    (1, 64, 9),
    (7, 13, 17),
    (2, 128, 130),
    (3, 1, 3),
    (5, 5, 5),
    (31, 67, 129),
    (64, 64, 64),
    (97, 128, 65),
];

fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
    // Sprinkle exact zeros so the skip-on-zero path is exercised.
    Tensor::from_fn(rows, cols, |_, _| {
        if rng.gen_bool(0.15) {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

#[test]
fn matmul_nn_bit_identical_across_threads() {
    for (case, &(n, k, m)) in SHAPES.iter().enumerate() {
        let a = rand_matrix(n, k, case as u64);
        let b = rand_matrix(k, m, 100 + case as u64);
        let reference = a.matmul_scalar(&b);
        for threads in THREAD_COUNTS {
            let out = kernels::matmul_nn(a.data(), b.data(), n, k, m, &Pool::new(threads));
            assert_eq!(
                out,
                reference.data(),
                "nn [{n},{k}]x[{k},{m}] differs at {threads} threads"
            );
        }
    }
}

#[test]
fn matmul_tn_bit_identical_across_threads() {
    for (case, &(n, k, m)) in SHAPES.iter().enumerate() {
        // tn computes a[k,n]^T @ b[k,m].
        let a = rand_matrix(k, n, 200 + case as u64);
        let b = rand_matrix(k, m, 300 + case as u64);
        let reference = a.matmul_tn_scalar(&b);
        for threads in THREAD_COUNTS {
            let out = kernels::matmul_tn(a.data(), b.data(), k, n, m, &Pool::new(threads));
            assert_eq!(
                out,
                reference.data(),
                "tn [{k},{n}]^T x [{k},{m}] differs at {threads} threads"
            );
        }
    }
}

#[test]
fn matmul_nt_bit_identical_across_threads() {
    for (case, &(n, k, m)) in SHAPES.iter().enumerate() {
        // nt computes a[n,k] @ b[m,k]^T.
        let a = rand_matrix(n, k, 400 + case as u64);
        let b = rand_matrix(m, k, 500 + case as u64);
        let reference = a.matmul_nt_scalar(&b);
        for threads in THREAD_COUNTS {
            let out = kernels::matmul_nt(a.data(), b.data(), n, k, m, &Pool::new(threads));
            assert_eq!(
                out,
                reference.data(),
                "nt [{n},{k}] x [{m},{k}]^T differs at {threads} threads"
            );
        }
    }
}

#[test]
fn dispatching_entry_points_match_scalar_above_threshold() {
    // [160, 80] x [80, 90] = 2.3M flops: above PAR_FLOP_THRESHOLD, so
    // the public methods take the parallel path.
    let (n, k, m) = (160, 80, 90);
    assert!(2 * n * k * m >= kernels::PAR_FLOP_THRESHOLD);
    let a = rand_matrix(n, k, 600);
    let b = rand_matrix(k, m, 601);
    let bt = b.transpose();
    let at = a.transpose();
    for threads in THREAD_COUNTS {
        splpg_par::set_num_threads(threads);
        assert_eq!(a.matmul(&b), a.matmul_scalar(&b), "matmul at {threads} threads");
        assert_eq!(
            at.matmul_tn(&b),
            at.matmul_tn_scalar(&b),
            "matmul_tn at {threads} threads"
        );
        assert_eq!(
            a.matmul_nt(&bt),
            a.matmul_nt_scalar(&bt),
            "matmul_nt at {threads} threads"
        );
    }
    splpg_par::set_num_threads(0);
}

#[test]
fn transposed_kernels_agree_with_explicit_transpose() {
    let (n, k, m) = (23, 31, 29);
    let a = rand_matrix(n, k, 700);
    let b = rand_matrix(k, m, 701);
    let pool = Pool::new(3);
    let nn = kernels::matmul_nn(a.data(), b.data(), n, k, m, &pool);
    let tn = kernels::matmul_tn(a.transpose().data(), b.data(), k, n, m, &pool);
    let nt = kernels::matmul_nt(a.data(), b.transpose().data(), n, k, m, &pool);
    // Same math through three loop orders: approximate agreement (the
    // accumulation orders legitimately differ between variants).
    for ((&x, &y), &z) in nn.iter().zip(&tn).zip(&nt) {
        assert!((x - y).abs() < 1e-3, "nn vs tn: {x} vs {y}");
        assert!((x - z).abs() < 1e-3, "nn vs nt: {x} vs {z}");
    }
}
