use crate::{Tape, Tensor, Var};

/// Report from a numeric gradient check.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_error: f64,
    /// Largest relative difference (normalized by magnitudes).
    pub max_rel_error: f64,
    /// Number of parameters checked.
    pub checked: usize,
}

impl GradCheckReport {
    /// Whether the analytic gradient matches numerics within `tol`
    /// (relative, with an absolute floor for near-zero entries).
    pub fn passes(&self, tol: f64) -> bool {
        self.max_rel_error <= tol
    }
}

/// Verifies the analytic gradient of a scalar function against central
/// finite differences.
///
/// `build` must construct the computation on the provided tape, taking the
/// leaf variable for the (cloned) input tensor and returning the scalar
/// loss var. The same construction is replayed for every perturbed input,
/// so `build` must be deterministic (seeded dropout etc. is the caller's
/// responsibility to avoid or freeze).
///
/// # Examples
///
/// ```
/// use splpg_tensor::{grad_check, Tensor};
///
/// // Inputs away from ReLU's kink at zero keep finite differences valid.
/// let x = Tensor::from_vec(2, 2, vec![0.5, -1.0, 2.0, 0.3]).unwrap();
/// let report = grad_check(&x, 1e-3, |tape, v| {
///     let y = tape.relu(v);
///     tape.sum_all(y)
/// });
/// assert!(report.passes(1e-3));
/// ```
pub fn grad_check<F>(input: &Tensor, epsilon: f64, build: F) -> GradCheckReport
where
    F: Fn(&mut Tape, Var) -> Var,
{
    // Analytic gradient. The same tape is reset and reused for every
    // perturbed evaluation below, exercising the arena-reuse path the
    // trainers rely on.
    let mut tape = Tape::new();
    let v = tape.leaf_copy(input);
    let loss = build(&mut tape, v);
    let grads = tape.backward(loss);
    let analytic = grads.get(v).cloned().unwrap_or_else(|| {
        let (r, c) = input.shape();
        Tensor::zeros(r, c)
    });
    tape.recycle_gradients(grads);

    let mut eval = |t: &Tensor| -> f64 {
        tape.reset();
        let v = tape.leaf_copy(t);
        let loss = build(&mut tape, v);
        tape.value(loss).get(0, 0) as f64
    };

    let mut max_abs: f64 = 0.0;
    let mut max_rel: f64 = 0.0;
    let n = input.len();
    for i in 0..n {
        let mut plus = input.clone();
        plus.data_mut()[i] += epsilon as f32;
        let mut minus = input.clone();
        minus.data_mut()[i] -= epsilon as f32;
        let numeric = (eval(&plus) - eval(&minus)) / (2.0 * epsilon);
        let a = analytic.data()[i] as f64;
        let abs = (a - numeric).abs();
        // The floor keeps f32 round-off on near-zero gradients from
        // registering as a large relative error.
        let rel = abs / a.abs().max(numeric.abs()).max(1e-2);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport { max_abs_error: max_abs, max_rel_error: max_rel, checked: n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::Rng;
    use splpg_rng::SeedableRng;

    fn random_tensor(rows: usize, cols: usize, seed: u64) -> Tensor {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
        Tensor::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 2.0 - 1.0)
    }

    #[test]
    fn matmul_gradients_check() {
        let x = random_tensor(3, 4, 1);
        let w = random_tensor(4, 2, 2);
        let report = grad_check(&x, 1e-3, |tape, v| {
            let wv = tape.leaf(w.clone());
            let y = tape.matmul(v, wv);
            tape.sum_all(y)
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn sigmoid_tanh_chain_checks() {
        let x = random_tensor(2, 3, 3);
        let report = grad_check(&x, 1e-3, |tape, v| {
            let s = tape.sigmoid(v);
            let t = tape.tanh(s);
            tape.mean_all(t)
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn leaky_relu_checks_away_from_kink() {
        // Shift inputs away from 0 so finite differences are valid.
        let mut x = random_tensor(3, 3, 4);
        for v in x.data_mut() {
            if v.abs() < 0.05 {
                *v += 0.1;
            }
        }
        let report = grad_check(&x, 1e-4, |tape, v| {
            let y = tape.leaky_relu(v, 0.2);
            tape.sum_all(y)
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn segment_softmax_attention_chain_checks() {
        let x = random_tensor(6, 1, 5);
        let msgs = random_tensor(6, 3, 6);
        let seg = vec![0u32, 0, 1, 1, 1, 2];
        let report = grad_check(&x, 1e-3, |tape, v| {
            let att = tape.segment_softmax(v, &seg, 3);
            let m = tape.leaf(msgs.clone());
            let weighted = tape.mul_col_broadcast(m, att);
            let agg = tape.segment_sum(weighted, &seg, 3);
            let act = tape.tanh(agg);
            tape.mean_all(act)
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn bce_with_logits_checks() {
        let x = random_tensor(8, 1, 7);
        let targets = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 0.0];
        let report = grad_check(&x, 1e-3, |tape, v| tape.bce_with_logits(v, &targets));
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn gather_concat_rowsum_pipeline_checks() {
        let x = random_tensor(4, 3, 8);
        let idx_a = vec![0u32, 2, 3];
        let idx_b = vec![1u32, 1, 0];
        let report = grad_check(&x, 1e-3, |tape, v| {
            let a = tape.gather_rows(v, &idx_a);
            let b = tape.gather_rows(v, &idx_b);
            let prod = tape.mul(a, b);
            let scores = tape.row_sum(prod);
            tape.bce_with_logits(scores, &[1.0, 0.0, 1.0])
        });
        assert!(report.passes(1e-2), "{report:?}");
    }

    #[test]
    fn full_gnn_like_layer_checks() {
        // A miniature message-passing layer: gather -> scale_rows (norm) ->
        // segment_sum -> linear -> relu -> loss. This is the exact data
        // flow of the GCN layer in splpg-gnn.
        let x = random_tensor(5, 3, 9);
        let w = random_tensor(3, 2, 10);
        let src = vec![0u32, 1, 2, 3, 4, 0];
        let dst = vec![1u32, 0, 3, 2, 0, 4];
        let norms = vec![0.5f32, 0.5, 0.7, 0.7, 0.4, 0.4];
        let report = grad_check(&x, 1e-3, |tape, v| {
            let msgs = tape.gather_rows(v, &src);
            let scaled = tape.scale_rows(msgs, &norms);
            let agg = tape.segment_sum(scaled, &dst, 5);
            let wv = tape.leaf(w.clone());
            let h = tape.matmul(agg, wv);
            let a = tape.relu(h);
            tape.mean_all(a)
        });
        assert!(report.passes(2e-2), "{report:?}");
    }
}
