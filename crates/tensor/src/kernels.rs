//! Register-blocked, row-partitioned matmul microkernels.
//!
//! Each kernel partitions its *output rows* across a [`Pool`] — every
//! output row is owned by exactly one thread — and computes fixed-width
//! register tiles (`MR` output rows × `NR` output columns of `f32`
//! accumulators held in a stack array) with scalar tail loops for the
//! row/column remainders. The tile loops have compile-time trip counts
//! over contiguous slices, which is the shape LLVM auto-vectorizes into
//! packed SIMD without any `unsafe` (the workspace forbids intrinsics).
//!
//! Both the partitioning and the tiling preserve the per-element
//! accumulation order of the scalar reference kernels in
//! [`Tensor`](crate::Tensor) (`k` ascending, with the same
//! skip-on-zero for `nn`/`tn` and the same single left-to-right dot for
//! `nt`), so the results are **bit-identical** to the scalar kernels at
//! every thread count and at every tile boundary. The equality tests in
//! `tests/parallel_kernels.rs` and the `#[cfg(test)]` bit-identity
//! harness below pin this down shape by shape.

use splpg_par::Pool;

/// Flop count (`2·n·k·m`) below which [`Tensor`](crate::Tensor) stays on
/// the scalar kernels: under ~100us of work, thread spawn dominates.
pub const PAR_FLOP_THRESHOLD: usize = 2_000_000;

/// Flop count below which even the single-thread microkernel is not
/// engaged: for tiny products the tile setup costs more than it saves.
pub const MICRO_FLOP_THRESHOLD: usize = 16_384;

/// Minimum flops per chunk handed to a worker thread.
const MIN_CHUNK_FLOPS: usize = 500_000;

/// Output columns per register tile: two 8-lane `f32` vectors.
const NR: usize = 16;

/// Output rows per register tile.
const MR: usize = 4;

/// Depth per packed k-tile in the `nt` kernel: bounds the transposed
/// `b` panel to `TK * NR * 4` bytes (8 KiB) of stack.
const TK: usize = 128;

/// Minimum output rows per chunk so each spawn amortizes.
fn min_rows_per_chunk(k: usize, m: usize) -> usize {
    (MIN_CHUNK_FLOPS / (2 * k * m).max(1)).max(1)
}

/// Worker count the cost model picks for an `[rows,k] x [k,m]` product:
/// `1` means "stay single-threaded" (the caller may still use the
/// microkernel inline). Parallelism engages only when the product clears
/// [`PAR_FLOP_THRESHOLD`] and more than one worker can *actually* run
/// concurrently ([`splpg_par::effective_threads`], which clamps the
/// configured pool width by the hardware — an oversubscribed pool on a
/// 1-CPU container pays fork-join overhead serially for zero overlap).
/// Rather than collapsing to scalar when the output cannot feed every
/// worker a minimum-rows chunk, the model falls back to however many
/// workers the projected per-thread work *can* keep profitable. The
/// scalar and microkernel paths are bit-identical, so this choice
/// affects time only, never results.
pub fn par_parts(rows: usize, k: usize, m: usize) -> usize {
    par_parts_with(splpg_par::effective_threads(), rows, k, m)
}

/// [`par_parts`] with an explicit worker count (unit-testable).
fn par_parts_with(threads: usize, rows: usize, k: usize, m: usize) -> usize {
    let flops = 2 * rows * k * m;
    if flops < PAR_FLOP_THRESHOLD || threads <= 1 {
        return 1;
    }
    let by_rows = rows / min_rows_per_chunk(k, m);
    let by_flops = flops / MIN_CHUNK_FLOPS;
    threads.min(by_rows).min(by_flops).max(1)
}

/// Dispatch gate shared by [`Tensor`](crate::Tensor)'s matmul paths:
/// true when the cost model picks more than one worker.
pub fn par_dispatch(rows: usize, k: usize, m: usize) -> bool {
    par_parts(rows, k, m) > 1
}

/// `a[n,k] @ b[k,m]`, row-major, into a fresh `[n,m]` buffer.
///
/// Row-partitioned over `pool`; register-tiled. Accumulation per output
/// element runs over `k` ascending with the scalar kernel's
/// skip-on-zero, so the result is bit-identical to
/// [`Tensor::matmul_scalar`](crate::Tensor::matmul_scalar).
pub fn matmul_nn(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, pool: &Pool) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    matmul_nn_into(a, b, n, k, m, pool, &mut out);
    out
}

/// [`matmul_nn`] writing into a caller-provided **zero-filled** `[n,m]`
/// buffer (the tape arena's pooled storage).
///
/// # Panics
///
/// Panics if `out.len() != n * m`.
pub fn matmul_nn_into(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    pool: &Pool,
    out: &mut [f32],
) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    if n == 0 || m == 0 || k == 0 {
        return;
    }
    pool.parallel_for_mut(out, m, min_rows_per_chunk(k, m), |row0, chunk| {
        nn_chunk(a, b, k, m, row0, chunk);
    });
}

/// One chunk of `nn` output rows: `MR x NR` register tiles with scalar
/// tails. Per output element the adds run over `k` ascending with
/// skip-on-zero, exactly like the scalar reference.
fn nn_chunk(a: &[f32], b: &[f32], k: usize, m: usize, row0: usize, chunk: &mut [f32]) {
    let rows = chunk.len() / m;
    let jm = m - m % NR;
    let mut r = 0;
    while r + MR <= rows {
        let mut jb = 0;
        while jb < jm {
            nn_tile::<MR>(a, b, k, m, row0 + r, jb, r, chunk);
            jb += NR;
        }
        nn_cols_tail(a, b, k, m, row0 + r, MR, jm, r, chunk);
        r += MR;
    }
    while r < rows {
        let mut jb = 0;
        while jb < jm {
            nn_tile::<1>(a, b, k, m, row0 + r, jb, r, chunk);
            jb += NR;
        }
        nn_cols_tail(a, b, k, m, row0 + r, 1, jm, r, chunk);
        r += 1;
    }
}

/// `R x NR` register tile of `out = a @ b` at rows `ar0..ar0+R`, columns
/// `jb..jb+NR`. The accumulator array lives in registers; `k` streams
/// ascending with the scalar skip-on-zero per row.
#[inline]
#[allow(clippy::too_many_arguments)] // flat kernel params mirror the BLAS-style signature
fn nn_tile<const R: usize>(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    ar0: usize,
    jb: usize,
    cr0: usize,
    chunk: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; R];
    for kk in 0..k {
        let b_seg = &b[kk * m + jb..kk * m + jb + NR];
        for r in 0..R {
            let av = a[(ar0 + r) * k + kk];
            if av == 0.0 {
                continue;
            }
            for (al, &bv) in acc[r].iter_mut().zip(b_seg) {
                *al += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        chunk[(cr0 + r) * m + jb..(cr0 + r) * m + jb + NR].copy_from_slice(acc_row);
    }
}

/// Scalar column tail (`jm..m`) for `rows` rows of the `nn` kernel, in
/// the scalar reference's exact per-element order.
#[allow(clippy::too_many_arguments)] // flat kernel params mirror the BLAS-style signature
fn nn_cols_tail(
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    ar0: usize,
    rows: usize,
    jm: usize,
    cr0: usize,
    chunk: &mut [f32],
) {
    if jm == m {
        return;
    }
    for r in 0..rows {
        let a_row = &a[(ar0 + r) * k..(ar0 + r + 1) * k];
        let o_row = &mut chunk[(cr0 + r) * m + jm..(cr0 + r) * m + m];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_seg = &b[kk * m + jm..kk * m + m];
            for (o, &bv) in o_row.iter_mut().zip(b_seg) {
                *o += av * bv;
            }
        }
    }
}

/// `a[k,n]^T @ b[k,m]` into a fresh `[n,m]` buffer, without
/// materializing the transpose.
///
/// Output rows (columns of `a`) are partitioned over `pool`; the shared
/// `k` dimension streams in ascending order for every element, matching
/// [`Tensor::matmul_tn_scalar`](crate::Tensor::matmul_tn_scalar)
/// bit for bit.
pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, n: usize, m: usize, pool: &Pool) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    matmul_tn_into(a, b, k, n, m, pool, &mut out);
    out
}

/// [`matmul_tn`] writing into a caller-provided **zero-filled** `[n,m]`
/// buffer.
///
/// # Panics
///
/// Panics if `out.len() != n * m`.
pub fn matmul_tn_into(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    m: usize,
    pool: &Pool,
    out: &mut [f32],
) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    if n == 0 || m == 0 || k == 0 {
        return;
    }
    pool.parallel_for_mut(out, m, min_rows_per_chunk(k, m), |row0, chunk| {
        tn_chunk(a, b, k, n, m, row0, chunk);
    });
}

/// One chunk of `tn` output rows (columns of `a`): same tiling as
/// [`nn_chunk`], with `a` read down its columns.
fn tn_chunk(a: &[f32], b: &[f32], k: usize, n: usize, m: usize, row0: usize, chunk: &mut [f32]) {
    let rows = chunk.len() / m;
    let jm = m - m % NR;
    let mut r = 0;
    while r + MR <= rows {
        let mut jb = 0;
        while jb < jm {
            tn_tile::<MR>(a, b, k, n, m, row0 + r, jb, r, chunk);
            jb += NR;
        }
        tn_cols_tail(a, b, k, n, m, row0 + r, MR, jm, r, chunk);
        r += MR;
    }
    while r < rows {
        let mut jb = 0;
        while jb < jm {
            tn_tile::<1>(a, b, k, n, m, row0 + r, jb, r, chunk);
            jb += NR;
        }
        tn_cols_tail(a, b, k, n, m, row0 + r, 1, jm, r, chunk);
        r += 1;
    }
}

/// `R x NR` register tile of `out = a^T @ b` at output rows
/// `ar0..ar0+R` (columns of `a`), columns `jb..jb+NR`.
#[inline]
#[allow(clippy::too_many_arguments)] // flat kernel params mirror the BLAS-style signature
fn tn_tile<const R: usize>(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    m: usize,
    ar0: usize,
    jb: usize,
    cr0: usize,
    chunk: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; R];
    for kk in 0..k {
        let b_seg = &b[kk * m + jb..kk * m + jb + NR];
        for r in 0..R {
            let av = a[kk * n + ar0 + r];
            if av == 0.0 {
                continue;
            }
            for (al, &bv) in acc[r].iter_mut().zip(b_seg) {
                *al += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        chunk[(cr0 + r) * m + jb..(cr0 + r) * m + jb + NR].copy_from_slice(acc_row);
    }
}

/// Scalar column tail for the `tn` kernel.
#[allow(clippy::too_many_arguments)] // flat kernel params mirror the BLAS-style signature
fn tn_cols_tail(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    m: usize,
    ar0: usize,
    rows: usize,
    jm: usize,
    cr0: usize,
    chunk: &mut [f32],
) {
    if jm == m {
        return;
    }
    for r in 0..rows {
        let o_row = &mut chunk[(cr0 + r) * m + jm..(cr0 + r) * m + m];
        for kk in 0..k {
            let av = a[kk * n + ar0 + r];
            if av == 0.0 {
                continue;
            }
            let b_seg = &b[kk * m + jm..kk * m + m];
            for (o, &bv) in o_row.iter_mut().zip(b_seg) {
                *o += av * bv;
            }
        }
    }
}

/// `a[n,k] @ b[m,k]^T` into a fresh `[n,m]` buffer, without
/// materializing the transpose.
///
/// Row-partitioned over `pool`. A `TK x NR` panel of `b` is packed
/// (transposed) into a stack buffer per j-tile so the inner loop reads
/// both operands contiguously; accumulators are spilled to the output
/// between k-tiles, which is bitwise lossless, so each output element is
/// still the scalar reference's single left-to-right dot product,
/// identical to
/// [`Tensor::matmul_nt_scalar`](crate::Tensor::matmul_nt_scalar).
pub fn matmul_nt(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, pool: &Pool) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    matmul_nt_into(a, b, n, k, m, pool, &mut out);
    out
}

/// [`matmul_nt`] writing into a caller-provided `[n,m]` buffer (every
/// element is overwritten).
///
/// # Panics
///
/// Panics if `out.len() != n * m`.
pub fn matmul_nt_into(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    pool: &Pool,
    out: &mut [f32],
) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    if n == 0 || m == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    pool.parallel_for_mut(out, m, min_rows_per_chunk(k, m), |row0, chunk| {
        nt_chunk(a, b, k, m, row0, chunk);
    });
}

/// One chunk of `nt` output rows: packed `b` panels, `MR x NR` register
/// tiles, scalar dot tails.
fn nt_chunk(a: &[f32], b: &[f32], k: usize, m: usize, row0: usize, chunk: &mut [f32]) {
    let rows = chunk.len() / m;
    let jm = m - m % NR;
    let mut pk = [0.0f32; TK * NR];
    let mut jb = 0;
    while jb < jm {
        let mut kb = 0;
        while kb < k {
            let tk = TK.min(k - kb);
            // Pack the transposed panel: pk[kk][l] = b[jb+l][kb+kk].
            for l in 0..NR {
                let b_row = &b[(jb + l) * k + kb..(jb + l) * k + kb + tk];
                for (kk, &bv) in b_row.iter().enumerate() {
                    pk[kk * NR + l] = bv;
                }
            }
            let first = kb == 0;
            let mut r = 0;
            while r + MR <= rows {
                nt_tile::<MR>(a, &pk, k, m, kb, tk, row0 + r, jb, r, first, chunk);
                r += MR;
            }
            while r < rows {
                nt_tile::<1>(a, &pk, k, m, kb, tk, row0 + r, jb, r, first, chunk);
                r += 1;
            }
            kb += tk;
        }
        jb += NR;
    }
    // Scalar column tail: plain left-to-right dots.
    for r in 0..rows {
        let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
        for j in jm..m {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            chunk[r * m + j] = acc;
        }
    }
}

/// `R x NR` register tile of `out = a @ b^T` over one packed k-tile.
/// `first` selects zero-init vs reload of the running accumulators; the
/// spill between k-tiles stores exact `f32` values, so the per-element
/// add chain is the same single left-to-right dot as the scalar kernel.
#[inline]
#[allow(clippy::too_many_arguments)]
fn nt_tile<const R: usize>(
    a: &[f32],
    pk: &[f32],
    k: usize,
    m: usize,
    kb: usize,
    tk: usize,
    ar0: usize,
    jb: usize,
    cr0: usize,
    first: bool,
    chunk: &mut [f32],
) {
    let mut acc = [[0.0f32; NR]; R];
    if !first {
        for (r, acc_row) in acc.iter_mut().enumerate() {
            acc_row.copy_from_slice(&chunk[(cr0 + r) * m + jb..(cr0 + r) * m + jb + NR]);
        }
    }
    for kk in 0..tk {
        let p_seg = &pk[kk * NR..kk * NR + NR];
        for r in 0..R {
            let av = a[(ar0 + r) * k + kb + kk];
            for (al, &bv) in acc[r].iter_mut().zip(p_seg) {
                *al += av * bv;
            }
        }
    }
    for (r, acc_row) in acc.iter().enumerate() {
        chunk[(cr0 + r) * m + jb..(cr0 + r) * m + jb + NR].copy_from_slice(acc_row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_require_real_concurrency_and_profitable_chunks() {
        // Big product, healthy pool: all workers engage.
        assert_eq!(par_parts_with(4, 4096, 256, 256), 4);
        // One effective worker (oversubscribed 1-CPU container after the
        // hardware clamp): single-threaded, no matter how big the product.
        assert_eq!(par_parts_with(1, 4096, 256, 256), 1);
        // Below the flop threshold: single-threaded.
        assert_eq!(par_parts_with(4, 16, 16, 16), 1);
        // Tall enough to clear the flop threshold but too few rows to
        // feed eight workers: falls back to fewer workers, not scalar.
        assert_eq!(par_parts_with(8, 4, 512, 512), 4);
        assert_eq!(par_parts_with(8, 5, 512, 512), 5);
        // Projected per-chunk work caps the worker count too.
        assert_eq!(par_parts_with(8, 16, 256, 256), 4);
    }

    #[test]
    fn dispatch_matches_parts() {
        assert_eq!(par_dispatch(4096, 256, 256), par_parts(4096, 256, 256) > 1);
    }

    // ---- bit-identity harness: microkernels vs the scalar references ----

    fn fill(v: &mut [f32], seed: u32) {
        // Deterministic pseudo-values with exact zeros sprinkled in so the
        // skip-on-zero paths are exercised.
        let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
        for x in v.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = if s.is_multiple_of(7) { 0.0 } else { ((s >> 8) as f32 / 8388608.0) - 1.0 };
        }
    }

    fn scalar_nn(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for kk in 0..k {
                let av = a[i * k + kk];
                if av == 0.0 {
                    continue;
                }
                for j in 0..m {
                    out[i * m + j] += av * b[kk * m + j];
                }
            }
        }
        out
    }

    fn scalar_tn(a: &[f32], b: &[f32], k: usize, n: usize, m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n * m];
        for kk in 0..k {
            for i in 0..n {
                let av = a[kk * n + i];
                if av == 0.0 {
                    continue;
                }
                for j in 0..m {
                    out[i * m + j] += av * b[kk * m + j];
                }
            }
        }
        out
    }

    fn scalar_nt(a: &[f32], b: &[f32], n: usize, k: usize, m: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; n * m];
        for i in 0..n {
            for j in 0..m {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                out[i * m + j] = acc;
            }
        }
        out
    }

    /// Shapes chosen to straddle every tile boundary: row tails
    /// (`n % MR`), column tails (`m % NR`), k-tile tails (`k % TK`), and
    /// degenerate sizes.
    fn shapes() -> Vec<(usize, usize, usize)> {
        vec![
            (1, 1, 1),
            (1, 3, 17),
            (3, 5, 15),
            (4, 7, 16),
            (5, 129, 33),
            (7, 64, 48),
            (8, 130, 16),
            (9, 2, 31),
            (13, 257, 19),
            (17, 128, 35),
            (33, 1, 16),
        ]
    }

    #[test]
    fn microkernels_bit_identical_to_scalar_references() {
        for &(n, k, m) in &shapes() {
            let mut a = vec![0.0f32; n * k];
            let mut b_nn = vec![0.0f32; k * m];
            let mut a_tn = vec![0.0f32; k * n];
            let mut b_nt = vec![0.0f32; m * k];
            fill(&mut a, (n * 31 + k * 7 + m) as u32);
            fill(&mut b_nn, (n * 13 + k * 3 + m) as u32);
            fill(&mut a_tn, (n * 5 + k * 11 + m) as u32);
            fill(&mut b_nt, (n * 17 + k + m * 3) as u32);
            for threads in [1usize, 3] {
                let pool = Pool::new(threads);
                let got = matmul_nn(&a, &b_nn, n, k, m, &pool);
                assert_eq!(got, scalar_nn(&a, &b_nn, n, k, m), "nn {n}x{k}x{m} t{threads}");
                let got = matmul_tn(&a_tn, &b_nn, k, n, m, &pool);
                assert_eq!(got, scalar_tn(&a_tn, &b_nn, k, n, m), "tn {n}x{k}x{m} t{threads}");
                let got = matmul_nt(&a, &b_nt, n, k, m, &pool);
                assert_eq!(got, scalar_nt(&a, &b_nt, n, k, m), "nt {n}x{k}x{m} t{threads}");
            }
        }
    }

    #[test]
    fn nt_overwrites_dirty_buffers() {
        let (n, k, m) = (5, 3, 17);
        let mut a = vec![0.0f32; n * k];
        let mut b = vec![0.0f32; m * k];
        fill(&mut a, 1);
        fill(&mut b, 2);
        let mut out = vec![f32::NAN; n * m];
        matmul_nt_into(&a, &b, n, k, m, &Pool::new(1), &mut out);
        assert_eq!(out, scalar_nt(&a, &b, n, k, m));
        let mut out = vec![f32::NAN; n * m];
        matmul_nt_into(&a, &b, n, 0, m, &Pool::new(1), &mut out);
        assert!(out.iter().all(|&v| v == 0.0), "k=0 must still overwrite");
    }
}
