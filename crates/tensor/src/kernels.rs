//! Cache-blocked, row-partitioned matmul kernels.
//!
//! Each kernel partitions its *output rows* across a [`Pool`] — every
//! output row is owned by exactly one thread — and tiles the inner loops
//! for cache reuse. Both transformations preserve the per-element
//! accumulation order of the scalar reference kernels in
//! [`Tensor`](crate::Tensor) (`k` ascending, with the same
//! skip-on-zero), so the results are **bit-identical** to the scalar
//! kernels at every thread count. The equality tests in
//! `tests/parallel_kernels.rs` pin this down shape by shape.

use splpg_par::Pool;

/// Flop count (`2·n·k·m`) below which [`Tensor`](crate::Tensor) stays on
/// the scalar kernels: under ~100us of work, thread spawn dominates.
pub const PAR_FLOP_THRESHOLD: usize = 2_000_000;

/// Minimum flops per chunk handed to a worker thread.
const MIN_CHUNK_FLOPS: usize = 500_000;

/// Columns per j-tile: one tile of `b` and `out` rows stays in L1.
const TILE_J: usize = 128;

/// Depth per k-tile: bounds the working set of `b` rows per j-sweep.
const TILE_K: usize = 64;

/// Output rows per i-tile in the `tn` kernel: keeps the re-swept output
/// block resident while `k` streams past.
const TILE_I: usize = 32;

/// Minimum output rows per chunk so each spawn amortizes.
fn min_rows_per_chunk(k: usize, m: usize) -> usize {
    (MIN_CHUNK_FLOPS / (2 * k * m).max(1)).max(1)
}

/// Dispatch gate shared by [`Tensor`](crate::Tensor)'s matmul paths:
/// go parallel only when the product clears [`PAR_FLOP_THRESHOLD`],
/// more than one worker can *actually* run concurrently
/// ([`splpg_par::effective_threads`], which clamps the configured pool
/// width by the hardware — an oversubscribed pool on a 1-CPU container
/// pays fork-join overhead serially for zero overlap), and the output
/// is tall enough to give every worker at least a minimum-rows chunk.
/// The scalar and parallel kernels are bit-identical, so this gate
/// affects time only, never results.
pub fn par_dispatch(rows: usize, k: usize, m: usize) -> bool {
    par_dispatch_with(splpg_par::effective_threads(), rows, k, m)
}

/// [`par_dispatch`] with an explicit worker count (unit-testable).
fn par_dispatch_with(threads: usize, rows: usize, k: usize, m: usize) -> bool {
    2 * rows * k * m >= PAR_FLOP_THRESHOLD
        && threads > 1
        && rows >= threads * min_rows_per_chunk(k, m)
}

/// `a[n,k] @ b[k,m]`, row-major, into a fresh `[n,m]` buffer.
///
/// Row-partitioned over `pool`; j/k-tiled. Accumulation per output
/// element runs over `k` ascending with the scalar kernel's
/// skip-on-zero, so the result is bit-identical to
/// [`Tensor::matmul_scalar`](crate::Tensor::matmul_scalar).
pub fn matmul_nn(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, pool: &Pool) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    matmul_nn_into(a, b, n, k, m, pool, &mut out);
    out
}

/// [`matmul_nn`] writing into a caller-provided **zero-filled** `[n,m]`
/// buffer (the tape arena's pooled storage).
///
/// # Panics
///
/// Panics if `out.len() != n * m`.
pub fn matmul_nn_into(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    pool: &Pool,
    out: &mut [f32],
) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    if n == 0 || m == 0 || k == 0 {
        return;
    }
    pool.parallel_for_mut(out, m, min_rows_per_chunk(k, m), |row0, chunk| {
        for (r, o_row) in chunk.chunks_mut(m).enumerate() {
            let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
            for kb in (0..k).step_by(TILE_K) {
                let ke = (kb + TILE_K).min(k);
                for jb in (0..m).step_by(TILE_J) {
                    let je = (jb + TILE_J).min(m);
                    for (kk, &av) in a_row[kb..ke].iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let b_seg = &b[(kb + kk) * m + jb..(kb + kk) * m + je];
                        for (o, &bv) in o_row[jb..je].iter_mut().zip(b_seg) {
                            *o += av * bv;
                        }
                    }
                }
            }
        }
    });
}

/// `a[k,n]^T @ b[k,m]` into a fresh `[n,m]` buffer, without
/// materializing the transpose.
///
/// Output rows (columns of `a`) are partitioned over `pool`; the shared
/// `k` dimension streams in ascending order for every element, matching
/// [`Tensor::matmul_tn_scalar`](crate::Tensor::matmul_tn_scalar)
/// bit for bit.
pub fn matmul_tn(a: &[f32], b: &[f32], k: usize, n: usize, m: usize, pool: &Pool) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    matmul_tn_into(a, b, k, n, m, pool, &mut out);
    out
}

/// [`matmul_tn`] writing into a caller-provided **zero-filled** `[n,m]`
/// buffer.
///
/// # Panics
///
/// Panics if `out.len() != n * m`.
pub fn matmul_tn_into(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    m: usize,
    pool: &Pool,
    out: &mut [f32],
) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    if n == 0 || m == 0 || k == 0 {
        return;
    }
    pool.parallel_for_mut(out, m, min_rows_per_chunk(k, m), |row0, chunk| {
        let rows = chunk.len() / m;
        for rb in (0..rows).step_by(TILE_I) {
            let re = (rb + TILE_I).min(rows);
            for kk in 0..k {
                let a_row = &a[kk * n..(kk + 1) * n];
                let b_row = &b[kk * m..(kk + 1) * m];
                for r in rb..re {
                    let av = a_row[row0 + r];
                    if av == 0.0 {
                        continue;
                    }
                    for (o, &bv) in chunk[r * m..(r + 1) * m].iter_mut().zip(b_row) {
                        *o += av * bv;
                    }
                }
            }
        }
    });
}

/// `a[n,k] @ b[m,k]^T` into a fresh `[n,m]` buffer, without
/// materializing the transpose.
///
/// Row-partitioned over `pool`; j-tiled so a tile of `b` rows is reused
/// across the chunk's output rows. Each output element is a single
/// left-to-right dot product, identical to
/// [`Tensor::matmul_nt_scalar`](crate::Tensor::matmul_nt_scalar).
pub fn matmul_nt(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, pool: &Pool) -> Vec<f32> {
    let mut out = vec![0.0f32; n * m];
    matmul_nt_into(a, b, n, k, m, pool, &mut out);
    out
}

/// [`matmul_nt`] writing into a caller-provided `[n,m]` buffer (every
/// element is overwritten).
///
/// # Panics
///
/// Panics if `out.len() != n * m`.
pub fn matmul_nt_into(
    a: &[f32],
    b: &[f32],
    n: usize,
    k: usize,
    m: usize,
    pool: &Pool,
    out: &mut [f32],
) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    if n == 0 || m == 0 {
        return;
    }
    pool.parallel_for_mut(out, m, min_rows_per_chunk(k, m), |row0, chunk| {
        let rows = chunk.len() / m;
        for jb in (0..m).step_by(TILE_J) {
            let je = (jb + TILE_J).min(m);
            for r in 0..rows {
                let a_row = &a[(row0 + r) * k..(row0 + r + 1) * k];
                for j in jb..je {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0f32;
                    for (&av, &bv) in a_row.iter().zip(b_row) {
                        acc += av * bv;
                    }
                    chunk[r * m + j] = acc;
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_requires_real_concurrency_and_tall_output() {
        // Big product, healthy pool: parallel.
        assert!(par_dispatch_with(4, 4096, 256, 256));
        // One effective worker (oversubscribed 1-CPU container after the
        // hardware clamp): scalar, no matter how big the product is.
        assert!(!par_dispatch_with(1, 4096, 256, 256));
        // Below the flop threshold: scalar.
        assert!(!par_dispatch_with(4, 16, 16, 16));
        // Wide-but-flat product whose rows cannot feed every worker a
        // minimum-rows chunk: scalar.
        let rows = min_rows_per_chunk(256, 256) * 4 - 1;
        assert!(!par_dispatch_with(4, rows, 256, 256));
    }

    #[test]
    fn dispatch_matches_effective_threads() {
        assert_eq!(
            par_dispatch(4096, 256, 256),
            par_dispatch_with(splpg_par::effective_threads(), 4096, 256, 256)
        );
    }
}
