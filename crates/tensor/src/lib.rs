//! Minimal dense tensor library with reverse-mode automatic
//! differentiation.
//!
//! This crate stands in for PyTorch in the SpLPG reproduction: it provides
//! exactly the operator set needed to train GCN, GraphSAGE, GAT and GATv2
//! models with MLP/dot-product edge predictors on CPU:
//!
//! * [`Tensor`] — a 2-D row-major `f32` matrix with the usual arithmetic;
//! * [`Tape`] — an arena-based autograd tape. Operations append nodes; a
//!   single [`Tape::backward`] pass computes gradients for every leaf.
//!   Tapes are thread-local, so each simulated worker differentiates
//!   independently — mirroring how each GPU in DDP holds its own autograd
//!   graph. Trainers hold **one tape across steps**: [`Tape::reset`]
//!   recycles every backing buffer into the tape's arena, so the
//!   steady-state training step performs no heap allocation
//!   ([`ArenaStats`] counts the warm-up allocations);
//! * [`segment`] — the deterministic parallel aggregation kernels behind
//!   the tape's graph ops, bit-identical to their scalar counterparts at
//!   every thread count;
//! * graph-specific ops: [`Tape::gather_rows`], [`Tape::segment_sum`]
//!   (neighborhood aggregation), [`Tape::segment_softmax`] (GAT attention),
//!   [`Tape::scale_rows`] (GCN normalization / sparsifier edge weights);
//! * [`grad_check`] — central-difference gradient verification used
//!   extensively by the test suite.
//!
//! # Examples
//!
//! ```
//! use splpg_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, 2.0]).unwrap());
//! let w = tape.leaf(Tensor::from_vec(2, 1, vec![0.5, -0.25]).unwrap());
//! let y = tape.matmul(x, w);          // y = x W = 0.0
//! let loss = tape.sum_all(y);
//! let grads = tape.backward(loss);
//! // dloss/dW = x^T
//! assert_eq!(grads.get(w).unwrap().data(), &[1.0, 2.0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod check;
pub mod kernels;
pub mod segment;
mod tape;
mod tensor;

pub use arena::ArenaStats;
pub use check::{grad_check, GradCheckReport};
pub use tape::{Gradients, Tape, Var};
pub use tensor::Tensor;

/// Errors from tensor construction and shape checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Data length does not match the requested shape.
    ShapeMismatch {
        /// Expected element count.
        expected: usize,
        /// Supplied element count.
        actual: usize,
    },
    /// Two operands have incompatible shapes for the attempted operation.
    IncompatibleShapes {
        /// Human-readable description of the operation and shapes.
        context: String,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected} elements, got {actual}")
            }
            TensorError::IncompatibleShapes { context } => {
                write!(f, "incompatible shapes: {context}")
            }
        }
    }
}

impl std::error::Error for TensorError {}
