//! Buffer pool backing [`Tape`](crate::Tape)'s zero-realloc steady state.
//!
//! Every intermediate the tape materializes — op values, op metadata
//! (gather indices, segment ids, dropout masks), gradient tensors and the
//! gradient slot table — is drawn from this arena and returned to it by
//! [`Tape::reset`](crate::Tape::reset) /
//! [`Tape::recycle_gradients`](crate::Tape::recycle_gradients). After a
//! warm-up step with the largest shapes, every request is served from
//! pooled capacity and the training step performs no heap allocation.
//!
//! The free lists are kept sorted by capacity and served best-fit: the
//! smallest pooled buffer that fits the request wins. When nothing fits,
//! the largest pooled buffer is grown (bounding total growth), and only
//! when the pool is empty is a brand-new buffer allocated. The
//! [`ArenaStats`] counters distinguish the three cases so benches and
//! tests can assert the steady state allocates nothing.

/// Counters describing how the tape arena served buffer requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Requests served by allocating a brand-new buffer (pool was empty).
    pub fresh: u64,
    /// Requests served by growing a pooled buffer whose capacity fell
    /// short of the request.
    pub grown: u64,
    /// Requests served entirely from pooled capacity — no allocator call.
    pub reused: u64,
}

impl ArenaStats {
    /// Requests that touched the system allocator (fresh + grown); the
    /// per-step delta of this is the "allocations per step" proxy and
    /// must be zero in steady state.
    pub fn allocations(&self) -> u64 {
        self.fresh + self.grown
    }
}

/// Takes a cleared buffer with capacity for `len` elements from `pool`
/// (sorted ascending by capacity), preferring the smallest that fits.
fn take_from<T>(pool: &mut Vec<Vec<T>>, len: usize, stats: &mut ArenaStats) -> Vec<T> {
    if len == 0 {
        // Zero-capacity vectors never allocate; don't disturb the pool.
        return Vec::new();
    }
    if let Some(i) = pool.iter().position(|b| b.capacity() >= len) {
        stats.reused += 1;
        let mut b = pool.remove(i);
        b.clear();
        return b;
    }
    match pool.pop() {
        Some(mut b) => {
            stats.grown += 1;
            b.clear();
            b.reserve(len);
            b
        }
        None => {
            stats.fresh += 1;
            Vec::with_capacity(len)
        }
    }
}

/// Returns `buf` to `pool`, keeping the pool sorted ascending by capacity.
fn give_back<T>(pool: &mut Vec<Vec<T>>, buf: Vec<T>) {
    if buf.capacity() == 0 {
        return;
    }
    let at = pool.partition_point(|b| b.capacity() < buf.capacity());
    pool.insert(at, buf);
}

/// The buffer pool a [`Tape`](crate::Tape) owns across
/// [`reset`](crate::Tape::reset) calls.
#[derive(Debug, Default)]
pub(crate) struct TapeArena {
    free_f32: Vec<Vec<f32>>,
    free_u32: Vec<Vec<u32>>,
    /// Pooled backing for the [`Gradients`](crate::Gradients) slot table.
    pub(crate) grad_slots: Vec<Option<crate::Tensor>>,
    stats: ArenaStats,
}

impl TapeArena {
    /// Cleared `f32` buffer with capacity for at least `len` elements.
    pub(crate) fn take_f32(&mut self, len: usize) -> Vec<f32> {
        take_from(&mut self.free_f32, len, &mut self.stats)
    }

    /// Cleared `u32` buffer with capacity for at least `len` elements.
    pub(crate) fn take_u32(&mut self, len: usize) -> Vec<u32> {
        take_from(&mut self.free_u32, len, &mut self.stats)
    }

    /// Zero-filled `f32` buffer of exactly `len` elements.
    pub(crate) fn zeroed_f32(&mut self, len: usize) -> Vec<f32> {
        let mut b = self.take_f32(len);
        b.resize(len, 0.0);
        b
    }

    /// Pooled copy of `src`.
    pub(crate) fn copy_f32(&mut self, src: &[f32]) -> Vec<f32> {
        let mut b = self.take_f32(src.len());
        b.extend_from_slice(src);
        b
    }

    /// Pooled copy of `src`.
    pub(crate) fn copy_u32(&mut self, src: &[u32]) -> Vec<u32> {
        let mut b = self.take_u32(src.len());
        b.extend_from_slice(src);
        b
    }

    /// Pooled tensor with every element set to `v`.
    pub(crate) fn filled_tensor(&mut self, rows: usize, cols: usize, v: f32) -> crate::Tensor {
        let mut data = self.take_f32(rows * cols);
        data.resize(rows * cols, v);
        crate::Tensor::from_raw(rows, cols, data)
    }

    /// Pooled copy of `t`.
    pub(crate) fn copy_tensor(&mut self, t: &crate::Tensor) -> crate::Tensor {
        let (rows, cols) = t.shape();
        let data = self.copy_f32(t.data());
        crate::Tensor::from_raw(rows, cols, data)
    }

    /// Returns an `f32` buffer to the pool.
    pub(crate) fn recycle_f32(&mut self, buf: Vec<f32>) {
        give_back(&mut self.free_f32, buf);
    }

    /// Returns a `u32` buffer to the pool.
    pub(crate) fn recycle_u32(&mut self, buf: Vec<u32>) {
        give_back(&mut self.free_u32, buf);
    }

    /// Returns a tensor's backing storage to the pool.
    pub(crate) fn recycle_tensor(&mut self, t: crate::Tensor) {
        self.recycle_f32(t.into_data());
    }

    /// Allocation counters since the arena was created.
    pub(crate) fn stats(&self) -> ArenaStats {
        self.stats
    }

    /// Bytes of backing capacity currently parked in the free lists and
    /// the pooled gradient slot table.
    pub(crate) fn pooled_bytes(&self) -> usize {
        let f: usize = self.free_f32.iter().map(|b| b.capacity() * 4).sum();
        let u: usize = self.free_u32.iter().map(|b| b.capacity() * 4).sum();
        let slots =
            self.grad_slots.capacity() * std::mem::size_of::<Option<crate::Tensor>>();
        f + u + slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut a = TapeArena::default();
        a.recycle_f32(Vec::with_capacity(100));
        a.recycle_f32(Vec::with_capacity(10));
        a.recycle_f32(Vec::with_capacity(50));
        let b = a.take_f32(30);
        assert_eq!(b.capacity(), 50, "smallest buffer that fits");
        assert_eq!(a.stats().reused, 1);
        assert_eq!(a.stats().allocations(), 0);
    }

    #[test]
    fn grows_largest_when_nothing_fits() {
        let mut a = TapeArena::default();
        a.recycle_f32(Vec::with_capacity(10));
        a.recycle_f32(Vec::with_capacity(20));
        let b = a.take_f32(64);
        assert!(b.capacity() >= 64);
        assert_eq!(a.stats().grown, 1);
        // The smaller buffer is still pooled.
        assert_eq!(a.take_f32(10).capacity(), 10);
    }

    #[test]
    fn steady_state_reuses_everything() {
        let mut a = TapeArena::default();
        for _ in 0..3 {
            let x = a.zeroed_f32(128);
            let y = a.copy_f32(&[1.0; 64]);
            a.recycle_f32(x);
            a.recycle_f32(y);
        }
        let s = a.stats();
        assert_eq!(s.fresh, 2, "one fresh allocation per distinct size");
        assert_eq!(s.grown, 0);
        assert_eq!(s.reused, 4);
    }

    #[test]
    fn zero_length_requests_bypass_the_pool() {
        let mut a = TapeArena::default();
        let b = a.take_f32(0);
        assert_eq!(b.capacity(), 0);
        assert_eq!(a.stats(), ArenaStats::default());
        a.recycle_f32(b);
        assert_eq!(a.pooled_bytes(), 0);
    }
}
