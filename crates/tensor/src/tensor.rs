use crate::TensorError;

/// A dense 2-D row-major `f32` matrix.
///
/// All shapes in this workspace are 2-D: node-embedding blocks are
/// `[num_nodes, dim]`, edge scores are `[num_edges, 1]`, scalars are
/// `[1, 1]`. Operations panic on shape mismatch only where the mismatch is
/// a programming error inside this workspace; fallible constructors return
/// [`TensorError`].
///
/// # Examples
///
/// ```
/// use splpg_tensor::Tensor;
/// let a = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Tensor::eye(2);
/// assert_eq!(a.matmul(&b).data(), a.data());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// All-ones tensor.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Tensor { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch { expected: rows * cols, actual: data.len() });
        }
        Ok(Tensor { rows, cols, data })
    }

    /// Builds from a buffer whose length is known by construction to be
    /// `rows * cols` (the tape arena's pooled storage path).
    pub(crate) fn from_raw(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        debug_assert_eq!(data.len(), rows * cols, "raw tensor shape");
        Tensor { rows, cols, data }
    }

    /// Takes the backing buffer (for recycling into the tape arena).
    pub(crate) fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Capacity of the backing buffer in elements.
    pub(crate) fn data_capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Builds element-wise from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f32>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Tensor { rows, cols, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self @ other` (`[n,k] x [k,m] -> [n,m]`).
    ///
    /// [`crate::kernels::par_parts`] picks the worker count: products
    /// with enough flops, more than one *hardware-backed* worker, and
    /// enough output rows to feed each of them run on the
    /// register-blocked microkernel row-partitioned across that many
    /// workers; single-worker products above
    /// [`crate::kernels::MICRO_FLOP_THRESHOLD`] still run the
    /// microkernel inline (it beats the scalar loop even on one
    /// thread); only tiny products stay scalar. The result is
    /// bit-identical to [`Tensor::matmul_scalar`] on every path, at
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (n, m) = (self.rows, other.cols);
        let mut out = vec![0.0f32; n * m];
        self.matmul_into(other, &mut out);
        Tensor { rows: n, cols: m, data: out }
    }

    /// [`Tensor::matmul`] writing into a caller-provided zero-filled
    /// buffer (the tape arena's pooled storage path).
    pub(crate) fn matmul_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: [{},{}] x [{},{}]",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let parts = crate::kernels::par_parts(n, k, m);
        if parts > 1 {
            crate::kernels::matmul_nn_into(&self.data, &other.data, n, k, m, &splpg_par::Pool::new(parts), out);
        } else if 2 * n * k * m >= crate::kernels::MICRO_FLOP_THRESHOLD {
            crate::kernels::matmul_nn_into(&self.data, &other.data, n, k, m, &splpg_par::Pool::new(1), out);
        } else {
            nn_scalar_into(&self.data, &other.data, n, k, m, out);
        }
    }

    /// Scalar reference for [`Tensor::matmul`]: ikj loop order for
    /// cache-friendly row-major access. The parallel kernel is tested
    /// bit-for-bit against this.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_scalar(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul inner dims: [{},{}] x [{},{}]",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        nn_scalar_into(&self.data, &other.data, n, k, m, &mut out);
        Tensor { rows: n, cols: m, data: out }
    }

    /// `self^T @ other` (`[k,n]^T x [k,m] -> [n,m]`) without materializing
    /// the transpose; used by matmul backward.
    ///
    /// Large products run on the blocked parallel kernel, bit-identical
    /// to [`Tensor::matmul_tn_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (n, m) = (self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        self.matmul_tn_into(other, &mut out);
        Tensor { rows: n, cols: m, data: out }
    }

    /// [`Tensor::matmul_tn`] writing into a caller-provided zero-filled
    /// buffer.
    pub(crate) fn matmul_tn_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.rows, other.rows, "matmul_tn row dims");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let parts = crate::kernels::par_parts(n, k, m);
        if parts > 1 {
            crate::kernels::matmul_tn_into(&self.data, &other.data, k, n, m, &splpg_par::Pool::new(parts), out);
        } else if 2 * n * k * m >= crate::kernels::MICRO_FLOP_THRESHOLD {
            crate::kernels::matmul_tn_into(&self.data, &other.data, k, n, m, &splpg_par::Pool::new(1), out);
        } else {
            tn_scalar_into(&self.data, &other.data, k, n, m, out);
        }
    }

    /// Scalar reference for [`Tensor::matmul_tn`].
    ///
    /// # Panics
    ///
    /// Panics if row counts disagree.
    pub fn matmul_tn_scalar(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "matmul_tn row dims");
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = vec![0.0f32; n * m];
        tn_scalar_into(&self.data, &other.data, k, n, m, &mut out);
        Tensor { rows: n, cols: m, data: out }
    }

    /// `self @ other^T` (`[n,k] x [m,k]^T -> [n,m]`) without materializing
    /// the transpose; used by matmul backward.
    ///
    /// Large products run on the blocked parallel kernel, bit-identical
    /// to [`Tensor::matmul_nt_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (n, m) = (self.rows, other.rows);
        let mut out = vec![0.0f32; n * m];
        self.matmul_nt_into(other, &mut out);
        Tensor { rows: n, cols: m, data: out }
    }

    /// [`Tensor::matmul_nt`] writing into a caller-provided zero-filled
    /// buffer.
    pub(crate) fn matmul_nt_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(self.cols, other.cols, "matmul_nt col dims");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let parts = crate::kernels::par_parts(n, k, m);
        if parts > 1 {
            crate::kernels::matmul_nt_into(&self.data, &other.data, n, k, m, &splpg_par::Pool::new(parts), out);
        } else if 2 * n * k * m >= crate::kernels::MICRO_FLOP_THRESHOLD {
            crate::kernels::matmul_nt_into(&self.data, &other.data, n, k, m, &splpg_par::Pool::new(1), out);
        } else {
            nt_scalar_into(&self.data, &other.data, n, k, m, out);
        }
    }

    /// Scalar reference for [`Tensor::matmul_nt`].
    ///
    /// # Panics
    ///
    /// Panics if column counts disagree.
    pub fn matmul_nt_scalar(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_nt col dims");
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = vec![0.0f32; n * m];
        nt_scalar_into(&self.data, &other.data, n, k, m, &mut out);
        Tensor { rows: n, cols: m, data: out }
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum. Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference. Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product. Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, c: f32) -> Tensor {
        self.map(|v| v * c)
    }

    /// Element-wise map.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    fn zip<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "element-wise shape mismatch");
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place `self += alpha * other`. Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum()
    }

    /// Column-wise sums as a `[1, cols]` tensor.
    pub fn col_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Row-wise sums as a `[rows, 1]` tensor.
    pub fn row_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(self.rows, 1);
        for r in 0..self.rows {
            out.data[r] = self.row(r).iter().sum();
        }
        out
    }
}

/// Scalar ikj matmul into a zero-filled `[n,m]` buffer: the bit-exact
/// reference the parallel kernel is held to.
fn nn_scalar_into(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, out: &mut [f32]) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * m..(i + 1) * m];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * m..(kk + 1) * m];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Scalar `a^T b` into a zero-filled `[n,m]` buffer (`a` is `[k,n]`).
fn tn_scalar_into(a: &[f32], b: &[f32], k: usize, n: usize, m: usize, out: &mut [f32]) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    for kk in 0..k {
        let a_row = &a[kk * n..(kk + 1) * n];
        let b_row = &b[kk * m..(kk + 1) * m];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let o_row = &mut out[i * m..(i + 1) * m];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Scalar `a b^T` into a `[n,m]` buffer (`b` is `[m,k]`); every element
/// is overwritten by a single left-to-right dot product.
fn nt_scalar_into(a: &[f32], b: &[f32], n: usize, k: usize, m: usize, out: &mut [f32]) {
    assert_eq!(out.len(), n * m, "matmul output shape");
    for i in 0..n {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..m {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * m + j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Tensor::ones(2, 2).sum(), 4.0);
        assert_eq!(Tensor::eye(3).sum(), 3.0);
        assert!(Tensor::from_vec(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn from_fn_row_major() {
        let t = Tensor::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(t.data(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(t.get(1, 2), 12.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Tensor::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_transposed_variants_agree() {
        let a = Tensor::from_fn(3, 4, |r, c| (r + c) as f32 * 0.5);
        let b = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        // a^T b == transpose(a).matmul(b)
        assert_eq!(a.matmul_tn(&b), a.transpose().matmul(&b));
        let d = Tensor::from_fn(5, 4, |r, c| (r as f32 - c as f32) * 0.25);
        // a d^T == a.matmul(transpose(d))
        assert_eq!(a.matmul_nt(&d), a.matmul(&d.transpose()));
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.norm_sq(), 30.0);
        assert_eq!(t.col_sums().data(), &[4.0, 6.0]);
        assert_eq!(t.row_sums().data(), &[3.0, 7.0]);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut a = Tensor::ones(1, 2);
        let b = Tensor::from_vec(1, 2, vec![2.0, 4.0]).unwrap();
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_shape_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
