//! Parallel segment/gather and row-wise elementwise kernels for the
//! aggregation hot path.
//!
//! These back [`Tape`](crate::Tape)'s message-passing ops
//! (`gather_rows`, `segment_sum`, `segment_softmax`, row scaling) and the
//! row-wise elementwise activations, forward *and* backward. Each kernel
//! partitions a contiguous range of **destination rows or segments** per
//! thread over a [`Pool`] — never interleaving by thread id — and every
//! accumulator runs over its contributions in ascending input order, so
//! outputs are **bit-identical** to the scalar reference at any thread
//! count. Kernels follow the matmul scalar-fallback policy: below
//! [`PAR_FLOP_THRESHOLD`](crate::kernels::PAR_FLOP_THRESHOLD) estimated
//! flops (or on a one-thread pool) the scalar loop runs inline.
//!
//! Scratch buffers (`segment_softmax`'s max/denominator, the backward
//! pass's per-segment dot products) are caller-provided so the tape arena
//! can pool them; kernels never allocate.

use splpg_par::Pool;

use crate::kernels::PAR_FLOP_THRESHOLD;

/// Minimum estimated flops per chunk handed to a worker thread (same
/// amortization floor as the matmul kernels).
const MIN_CHUNK_FLOPS: usize = 500_000;

/// Minimum rows per chunk for a kernel doing ~`per_row` flops per row.
fn min_rows(per_row: usize) -> usize {
    (MIN_CHUNK_FLOPS / per_row.max(1)).max(1)
}

/// f32 lanes per register block in the row microkernels below: one
/// 8-lane vector. The blocked loops have compile-time trip counts over
/// `chunks_exact` slices, the shape LLVM auto-vectorizes without
/// `unsafe`.
const LANES: usize = 8;

/// Whether `work` estimated flops justify fan-out on `pool`. Clamps the
/// configured pool width by [`splpg_par::hardware_threads`]: an
/// oversubscribed pool (e.g. `SPLPG_NUM_THREADS=8` on a 1-CPU
/// container) pays fork-join overhead serially for zero overlap, so it
/// stays on the inline path. Bit-identical either way — only time is
/// affected.
fn par(work: usize, pool: &Pool) -> bool {
    work >= PAR_FLOP_THRESHOLD && pool.threads().min(splpg_par::hardware_threads()) > 1
}

/// Gate for the scatter kernels ([`gather_rows_grad`], [`segment_sum`]):
/// every worker scans the whole index array to find the rows it owns, an
/// `O(n)` overhead per chunk, so fan-out only pays when the `m`-wide
/// accumulate dominates the scan. Narrow rows stay inline.
fn par_scatter(n: usize, m: usize, pool: &Pool) -> bool {
    m >= LANES && par(2 * n * m, pool)
}

/// `o[j] += x[j]` over one row: fixed-width `LANES` blocks plus a scalar
/// tail. Each element still receives exactly one add, so the blocked
/// form is bit-identical to the plain zip loop it replaces.
#[inline]
fn row_add(o: &mut [f32], x: &[f32]) {
    debug_assert_eq!(o.len(), x.len(), "row_add shape");
    let blocks = o.len() / LANES * LANES;
    let (oh, ot) = o.split_at_mut(blocks);
    for (ob, xb) in oh.chunks_exact_mut(LANES).zip(x[..blocks].chunks_exact(LANES)) {
        for j in 0..LANES {
            ob[j] += xb[j];
        }
    }
    for (ov, &xv) in ot.iter_mut().zip(&x[blocks..]) {
        *ov += xv;
    }
}

/// `o[j] = x[j] * f` over one row, lane-blocked like [`row_add`].
#[inline]
fn row_scale_one(o: &mut [f32], x: &[f32], f: f32) {
    debug_assert_eq!(o.len(), x.len(), "row_scale shape");
    let blocks = o.len() / LANES * LANES;
    let (oh, ot) = o.split_at_mut(blocks);
    for (ob, xb) in oh.chunks_exact_mut(LANES).zip(x[..blocks].chunks_exact(LANES)) {
        for j in 0..LANES {
            ob[j] = xb[j] * f;
        }
    }
    for (ov, &xv) in ot.iter_mut().zip(&x[blocks..]) {
        *ov = xv * f;
    }
}

/// Dot product with `LANES` independent accumulators, reduced in a fixed
/// lane order, plus a scalar tail. Deterministic and identical on the
/// inline and fan-out paths (both call this), though its rounding
/// differs from a single left-to-right chain — acceptable here because
/// [`row_dot`] *is* the reference for itself at every thread count.
#[inline]
fn row_dot_one(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "row_dot shape");
    let blocks = a.len() / LANES * LANES;
    let mut lanes = [0.0f32; LANES];
    for (ab, bb) in a[..blocks].chunks_exact(LANES).zip(b[..blocks].chunks_exact(LANES)) {
        for j in 0..LANES {
            lanes[j] += ab[j] * bb[j];
        }
    }
    let mut acc = 0.0f32;
    for &l in &lanes {
        acc += l;
    }
    for (&x, &y) in a[blocks..].iter().zip(&b[blocks..]) {
        acc += x * y;
    }
    acc
}

/// Row sum with `LANES` accumulators, mirroring [`row_dot_one`].
#[inline]
fn row_sum_one(a: &[f32]) -> f32 {
    let blocks = a.len() / LANES * LANES;
    let mut lanes = [0.0f32; LANES];
    for ab in a[..blocks].chunks_exact(LANES) {
        for j in 0..LANES {
            lanes[j] += ab[j];
        }
    }
    let mut acc = 0.0f32;
    for &l in &lanes {
        acc += l;
    }
    for &x in &a[blocks..] {
        acc += x;
    }
    acc
}

/// Row gather: `out` row `i` is `a`'s row `idx[i]` (`m` columns).
///
/// Output rows are partitioned across the pool; each is a plain copy, so
/// any partition is bit-identical to the scalar loop.
///
/// # Panics
///
/// Panics if an index is out of range or the buffer lengths disagree.
pub fn gather_rows(a: &[f32], m: usize, idx: &[u32], out: &mut [f32], pool: &Pool) {
    let n = a.len().checked_div(m).unwrap_or(0);
    assert_eq!(out.len(), idx.len() * m, "gather output shape");
    if m == 0 {
        return;
    }
    for &src in idx {
        assert!((src as usize) < n, "gather index {src} out of range {n}");
    }
    let run = |row0: usize, chunk: &mut [f32]| {
        for (i, o_row) in chunk.chunks_mut(m).enumerate() {
            let src = idx[row0 + i] as usize;
            o_row.copy_from_slice(&a[src * m..(src + 1) * m]);
        }
    };
    if par(idx.len() * m, pool) {
        pool.parallel_for_mut(out, m, min_rows(m), run);
    } else {
        run(0, out);
    }
}

/// Backward of [`gather_rows`]: scatter-adds `grad` row `i` into `da` row
/// `idx[i]`.
///
/// `da` (`n x m`, zero-initialized by the caller) is partitioned by
/// destination row; each thread scans `idx` in ascending order and
/// accumulates only the rows it owns, reproducing the scalar
/// accumulation order exactly.
///
/// # Panics
///
/// Panics if buffer lengths disagree.
pub fn gather_rows_grad(grad: &[f32], m: usize, idx: &[u32], da: &mut [f32], pool: &Pool) {
    assert_eq!(grad.len(), idx.len() * m, "gather grad shape");
    if m == 0 || da.is_empty() {
        return;
    }
    assert_eq!(da.len() % m, 0, "da must hold whole rows");
    let run = |row0: usize, chunk: &mut [f32]| {
        let rows = chunk.len() / m;
        for (i, &src) in idx.iter().enumerate() {
            let src = src as usize;
            if src >= row0 && src < row0 + rows {
                row_add(
                    &mut chunk[(src - row0) * m..(src - row0 + 1) * m],
                    &grad[i * m..(i + 1) * m],
                );
            }
        }
    };
    if par_scatter(idx.len(), m, pool) {
        pool.parallel_for_mut(da, m, min_rows(2 * m), run);
    } else {
        run(0, da);
    }
}

/// Segment sum: `out` row `s` is the sum of `a` rows `i` with
/// `seg[i] == s` (the neighborhood-aggregation primitive).
///
/// `out` (`num_segments x m`, zero-initialized by the caller) is
/// partitioned by destination segment; each thread scans `seg` ascending
/// and accumulates only its own segments — the scalar order per segment.
///
/// # Panics
///
/// Panics if a segment id is out of range or buffer lengths disagree.
pub fn segment_sum(a: &[f32], m: usize, seg: &[u32], out: &mut [f32], pool: &Pool) {
    assert_eq!(a.len(), seg.len() * m, "segment input shape");
    if m == 0 {
        return;
    }
    if out.is_empty() {
        assert!(seg.is_empty(), "segment id out of range");
        return;
    }
    assert_eq!(out.len() % m, 0, "out must hold whole rows");
    let num_segments = out.len() / m;
    for &s in seg {
        assert!((s as usize) < num_segments, "segment id {s} out of range");
    }
    let run = |seg0: usize, chunk: &mut [f32]| {
        let segs = chunk.len() / m;
        for (i, &s) in seg.iter().enumerate() {
            let s = s as usize;
            if s >= seg0 && s < seg0 + segs {
                row_add(&mut chunk[(s - seg0) * m..(s - seg0 + 1) * m], &a[i * m..(i + 1) * m]);
            }
        }
    };
    if par_scatter(seg.len(), m, pool) {
        pool.parallel_for_mut(out, m, min_rows(2 * m), run);
    } else {
        run(0, out);
    }
}

/// Backward of [`segment_sum`]: `da` row `i` is `grad` row `seg[i]`.
///
/// Rows of `da` are independent copies, partitioned across the pool.
///
/// # Panics
///
/// Panics if buffer lengths disagree.
pub fn segment_sum_grad(grad: &[f32], m: usize, seg: &[u32], da: &mut [f32], pool: &Pool) {
    assert_eq!(da.len(), seg.len() * m, "segment grad shape");
    if m == 0 {
        return;
    }
    let run = |row0: usize, chunk: &mut [f32]| {
        for (i, o_row) in chunk.chunks_mut(m).enumerate() {
            let s = seg[row0 + i] as usize;
            o_row.copy_from_slice(&grad[s * m..(s + 1) * m]);
        }
    };
    if par(seg.len() * m, pool) {
        pool.parallel_for_mut(da, m, min_rows(m), run);
    } else {
        run(0, da);
    }
}

/// Numerically-stable softmax over segments of the column `x`.
///
/// `max` (init `f32::NEG_INFINITY`) and `denom` (init `0.0`) are
/// caller-provided per-segment scratch of length `num_segments`. The
/// per-row passes (exp, normalize) partition `out` across the pool; the
/// 1-wide per-segment scans (max, denominator) always run inline, in
/// ascending row order, matching the scalar reference element for
/// element. Segments no row maps to keep their initial scratch values
/// (`-inf` max, `0.0` denominator) and produce no output rows.
///
/// # Panics
///
/// Panics if a segment id is out of range or lengths disagree.
pub fn segment_softmax(
    x: &[f32],
    seg: &[u32],
    max: &mut [f32],
    denom: &mut [f32],
    out: &mut [f32],
    pool: &Pool,
) {
    let n = x.len();
    assert_eq!(seg.len(), n, "segment ids must cover every row");
    assert_eq!(out.len(), n, "softmax output shape");
    assert_eq!(max.len(), denom.len(), "scratch lengths");
    let num_segments = max.len();
    for &s in seg {
        assert!((s as usize) < num_segments, "segment id {s} out of range");
    }
    if n == 0 {
        return;
    }
    let wide = par(8 * n, pool);
    // Pass 1: per-segment max. Always inline: a fan-out worker would
    // re-scan all of `seg` (the whole cost of this 1-wide pass) just to
    // find its own segments, so parallelism cannot win here.
    for (i, &s) in seg.iter().enumerate() {
        let s = s as usize;
        max[s] = max[s].max(x[i]);
    }
    // Pass 2: exponentials, shifted by the segment max.
    let maxes = &*max;
    let exp_run = |i0: usize, chunk: &mut [f32]| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = (x[i0 + i] - maxes[seg[i0 + i] as usize]).exp();
        }
    };
    if wide {
        pool.parallel_for_mut(out, 1, MIN_CHUNK_FLOPS / 8, exp_run);
    } else {
        exp_run(0, out);
    }
    // Pass 3: per-segment denominators, accumulated in ascending row
    // order exactly like the scalar reference. Inline for the same
    // reason as pass 1: the scan is the whole cost of a 1-wide pass.
    for (i, &s) in seg.iter().enumerate() {
        denom[s as usize] += out[i];
    }
    // Pass 4: normalize.
    let div_run = |i0: usize, chunk: &mut [f32]| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o /= denom[seg[i0 + i] as usize].max(f32::MIN_POSITIVE);
        }
    };
    if wide {
        pool.parallel_for_mut(out, 1, MIN_CHUNK_FLOPS / 8, div_run);
    } else {
        div_run(0, out);
    }
}

/// Backward of [`segment_softmax`]:
/// `da_i = y_i (g_i - sum_{j in segment(i)} y_j g_j)`.
///
/// `seg_dot` (init `0.0`) is caller-provided per-segment scratch; the
/// dot pass runs inline (ascending scan), the output pass partitions
/// rows across the pool.
///
/// # Panics
///
/// Panics if a segment id is out of range or lengths disagree.
pub fn segment_softmax_grad(
    y: &[f32],
    g: &[f32],
    seg: &[u32],
    seg_dot: &mut [f32],
    da: &mut [f32],
    pool: &Pool,
) {
    let n = y.len();
    assert_eq!(g.len(), n, "grad shape");
    assert_eq!(seg.len(), n, "segment ids must cover every row");
    assert_eq!(da.len(), n, "output shape");
    let num_segments = seg_dot.len();
    for &s in seg {
        assert!((s as usize) < num_segments, "segment id {s} out of range");
    }
    if n == 0 {
        return;
    }
    let wide = par(6 * n, pool);
    // Per-segment dots stay inline (1-wide scan pass; see
    // [`segment_softmax`] pass 1).
    for (i, &s) in seg.iter().enumerate() {
        seg_dot[s as usize] += y[i] * g[i];
    }
    let dots = &*seg_dot;
    let out_run = |i0: usize, chunk: &mut [f32]| {
        for (i, o) in chunk.iter_mut().enumerate() {
            let at = i0 + i;
            *o = y[at] * (g[at] - dots[seg[at] as usize]);
        }
    };
    if wide {
        pool.parallel_for_mut(da, 1, MIN_CHUNK_FLOPS / 6, out_run);
    } else {
        out_run(0, da);
    }
}

/// Elementwise `out[i] = f(a[i])`, partitioned across the pool.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn unary_map<F>(a: &[f32], out: &mut [f32], f: F, pool: &Pool)
where
    F: Fn(f32) -> f32 + Sync,
{
    assert_eq!(a.len(), out.len(), "unary map shape");
    let run = |i0: usize, chunk: &mut [f32]| {
        let src = &a[i0..i0 + chunk.len()];
        for (o, &x) in chunk.iter_mut().zip(src) {
            *o = f(x);
        }
    };
    if par(2 * a.len(), pool) {
        pool.parallel_for_mut(out, 1, MIN_CHUNK_FLOPS / 2, run);
    } else {
        run(0, out);
    }
}

/// Elementwise `out[i] = f(a[i], b[i])`, partitioned across the pool.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn binary_map<F>(a: &[f32], b: &[f32], out: &mut [f32], f: F, pool: &Pool)
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    assert_eq!(a.len(), b.len(), "binary map shape");
    assert_eq!(a.len(), out.len(), "binary map shape");
    let run = |i0: usize, chunk: &mut [f32]| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(a[i0 + i], b[i0 + i]);
        }
    };
    if par(2 * a.len(), pool) {
        pool.parallel_for_mut(out, 1, MIN_CHUNK_FLOPS / 2, run);
    } else {
        run(0, out);
    }
}

/// Row scaling: `out` row `r` is `a` row `r` times `factors[r]`
/// (GCN normalization, attention weighting, and their backward passes).
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn row_scale(a: &[f32], m: usize, factors: &[f32], out: &mut [f32], pool: &Pool) {
    assert_eq!(a.len(), out.len(), "row scale shape");
    if m == 0 {
        return;
    }
    assert_eq!(a.len(), factors.len() * m, "one factor per row");
    let run = |row0: usize, chunk: &mut [f32]| {
        for (r, o_row) in chunk.chunks_mut(m).enumerate() {
            row_scale_one(o_row, &a[(row0 + r) * m..(row0 + r + 1) * m], factors[row0 + r]);
        }
    };
    if par(2 * a.len(), pool) {
        pool.parallel_for_mut(out, m, min_rows(2 * m), run);
    } else {
        run(0, out);
    }
}

/// Per-row dot products `out[r] = a_row_r . b_row_r` (the attention
/// column's backward pass).
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn row_dot(a: &[f32], b: &[f32], m: usize, out: &mut [f32], pool: &Pool) {
    assert_eq!(a.len(), b.len(), "row dot shape");
    if m == 0 {
        for o in out.iter_mut() {
            *o = 0.0;
        }
        return;
    }
    assert_eq!(a.len(), out.len() * m, "row dot output shape");
    let run = |row0: usize, chunk: &mut [f32]| {
        for (r, o) in chunk.iter_mut().enumerate() {
            let at = (row0 + r) * m;
            *o = row_dot_one(&a[at..at + m], &b[at..at + m]);
        }
    };
    if par(2 * a.len(), pool) {
        pool.parallel_for_mut(out, 1, min_rows(2 * m).max(1), run);
    } else {
        run(0, out);
    }
}

/// Broadcast row addition `out = a + bias` with `bias` of length `m`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn add_bias(a: &[f32], bias: &[f32], out: &mut [f32], pool: &Pool) {
    let m = bias.len();
    assert_eq!(a.len(), out.len(), "add bias shape");
    if m == 0 {
        return;
    }
    assert_eq!(a.len() % m, 0, "rows must match bias width");
    let run = |row0: usize, chunk: &mut [f32]| {
        for (r, o_row) in chunk.chunks_mut(m).enumerate() {
            let a_row = &a[(row0 + r) * m..(row0 + r + 1) * m];
            for ((o, &x), &b) in o_row.iter_mut().zip(a_row).zip(bias) {
                *o = x + b;
            }
        }
    };
    if par(2 * a.len(), pool) {
        pool.parallel_for_mut(out, m, min_rows(2 * m), run);
    } else {
        run(0, out);
    }
}

/// Fills each `m`-wide row `r` of `out` with `col[r]` (row-sum backward).
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn rows_from_col(col: &[f32], m: usize, out: &mut [f32], pool: &Pool) {
    if m == 0 {
        return;
    }
    assert_eq!(out.len(), col.len() * m, "broadcast shape");
    let run = |row0: usize, chunk: &mut [f32]| {
        for (r, o_row) in chunk.chunks_mut(m).enumerate() {
            o_row.fill(col[row0 + r]);
        }
    };
    if par(out.len(), pool) {
        pool.parallel_for_mut(out, m, min_rows(m), run);
    } else {
        run(0, out);
    }
}

/// Row-wise sums `out[r] = sum(a row r)`.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn row_sums(a: &[f32], m: usize, out: &mut [f32], pool: &Pool) {
    if m == 0 {
        for o in out.iter_mut() {
            *o = 0.0;
        }
        return;
    }
    assert_eq!(a.len(), out.len() * m, "row sums shape");
    let run = |row0: usize, chunk: &mut [f32]| {
        for (r, o) in chunk.iter_mut().enumerate() {
            let at = (row0 + r) * m;
            *o = row_sum_one(&a[at..at + m]);
        }
    };
    if par(a.len(), pool) {
        pool.parallel_for_mut(out, 1, min_rows(m).max(1), run);
    } else {
        run(0, out);
    }
}

/// Column concatenation: `out` row `r` is `a` row `r` (`ma` wide)
/// followed by `b` row `r` (`mb` wide).
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn concat_cols(a: &[f32], ma: usize, b: &[f32], mb: usize, out: &mut [f32], pool: &Pool) {
    let m = ma + mb;
    if m == 0 {
        return;
    }
    assert_eq!(out.len() % m, 0, "out must hold whole rows");
    let n = out.len() / m;
    assert_eq!(a.len(), n * ma, "left operand shape");
    assert_eq!(b.len(), n * mb, "right operand shape");
    let run = |row0: usize, chunk: &mut [f32]| {
        for (r, o_row) in chunk.chunks_mut(m).enumerate() {
            let at = row0 + r;
            o_row[..ma].copy_from_slice(&a[at * ma..(at + 1) * ma]);
            o_row[ma..].copy_from_slice(&b[at * mb..(at + 1) * mb]);
        }
    };
    if par(out.len(), pool) {
        pool.parallel_for_mut(out, m, min_rows(m), run);
    } else {
        run(0, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::{Rng, SeedableRng};

    const THREADS: [usize; 4] = [1, 2, 3, 8];

    fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(seed)
    }

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut r = rng(seed);
        (0..len).map(|_| r.gen_range(-2.0f32..2.0)).collect()
    }

    fn rand_idx(len: usize, n: usize, seed: u64) -> Vec<u32> {
        let mut r = rng(seed);
        (0..len).map(|_| r.gen_range(0..n) as u32).collect()
    }

    // Shapes large enough that `par()` takes the fan-out path on
    // multi-thread pools, so 1-vs-N compares scalar vs parallel.
    const EDGES: usize = 300_000;
    const NODES: usize = 50_000;
    const SEGS: usize = 40_000;
    const DIM: usize = 8;

    #[test]
    fn gather_rows_bit_identical_across_threads() {
        let a = rand_vec(NODES * DIM, 1);
        let idx = rand_idx(EDGES, NODES, 2);
        let mut reference = vec![0.0; EDGES * DIM];
        gather_rows(&a, DIM, &idx, &mut reference, &Pool::new(1));
        for t in THREADS {
            let mut out = vec![0.0; EDGES * DIM];
            gather_rows(&a, DIM, &idx, &mut out, &Pool::new(t));
            assert_eq!(out, reference, "gather_rows at {t} threads");
        }
    }

    #[test]
    fn gather_rows_grad_bit_identical_across_threads() {
        let grad = rand_vec(EDGES * DIM, 3);
        let idx = rand_idx(EDGES, NODES, 4);
        let mut reference = vec![0.0; NODES * DIM];
        gather_rows_grad(&grad, DIM, &idx, &mut reference, &Pool::new(1));
        for t in THREADS {
            let mut da = vec![0.0; NODES * DIM];
            gather_rows_grad(&grad, DIM, &idx, &mut da, &Pool::new(t));
            assert_eq!(da, reference, "gather_rows_grad at {t} threads");
        }
    }

    #[test]
    fn segment_sum_bit_identical_across_threads() {
        let a = rand_vec(EDGES * DIM, 5);
        let seg = rand_idx(EDGES, SEGS, 6);
        let mut reference = vec![0.0; SEGS * DIM];
        segment_sum(&a, DIM, &seg, &mut reference, &Pool::new(1));
        for t in THREADS {
            let mut out = vec![0.0; SEGS * DIM];
            segment_sum(&a, DIM, &seg, &mut out, &Pool::new(t));
            assert_eq!(out, reference, "segment_sum at {t} threads");
        }
    }

    #[test]
    fn segment_sum_grad_bit_identical_across_threads() {
        let grad = rand_vec(SEGS * DIM, 7);
        let seg = rand_idx(EDGES, SEGS, 8);
        let mut reference = vec![0.0; EDGES * DIM];
        segment_sum_grad(&grad, DIM, &seg, &mut reference, &Pool::new(1));
        for t in THREADS {
            let mut da = vec![0.0; EDGES * DIM];
            segment_sum_grad(&grad, DIM, &seg, &mut da, &Pool::new(t));
            assert_eq!(da, reference, "segment_sum_grad at {t} threads");
        }
    }

    #[test]
    fn segment_softmax_bit_identical_across_threads_and_matches_fused_scalar() {
        let n = 400_000;
        let segs = 30_000;
        let x = rand_vec(n, 9);
        let seg = rand_idx(n, segs, 10);
        // Fused scalar reference (the pre-parallel tape implementation).
        let mut fmax = vec![f32::NEG_INFINITY; segs];
        for (i, &s) in seg.iter().enumerate() {
            fmax[s as usize] = fmax[s as usize].max(x[i]);
        }
        let mut fden = vec![0.0f32; segs];
        let mut fused = vec![0.0f32; n];
        for (i, &s) in seg.iter().enumerate() {
            let e = (x[i] - fmax[s as usize]).exp();
            fused[i] = e;
            fden[s as usize] += e;
        }
        for (i, &s) in seg.iter().enumerate() {
            fused[i] /= fden[s as usize].max(f32::MIN_POSITIVE);
        }
        for t in THREADS {
            let mut max = vec![f32::NEG_INFINITY; segs];
            let mut denom = vec![0.0; segs];
            let mut out = vec![0.0; n];
            segment_softmax(&x, &seg, &mut max, &mut denom, &mut out, &Pool::new(t));
            assert_eq!(out, fused, "segment_softmax at {t} threads");
        }
    }

    #[test]
    fn segment_softmax_grad_bit_identical_across_threads() {
        let n = 400_000;
        let segs = 30_000;
        let y = rand_vec(n, 11);
        let g = rand_vec(n, 12);
        let seg = rand_idx(n, segs, 13);
        let mut ref_dot = vec![0.0; segs];
        let mut reference = vec![0.0; n];
        segment_softmax_grad(&y, &g, &seg, &mut ref_dot, &mut reference, &Pool::new(1));
        for t in THREADS {
            let mut dot = vec![0.0; segs];
            let mut da = vec![0.0; n];
            segment_softmax_grad(&y, &g, &seg, &mut dot, &mut da, &Pool::new(t));
            assert_eq!(da, reference, "segment_softmax_grad at {t} threads");
            assert_eq!(dot, ref_dot, "seg_dot at {t} threads");
        }
    }

    #[test]
    fn elementwise_and_row_kernels_bit_identical_across_threads() {
        let n = 300_000;
        let m = 8;
        let a = rand_vec(n * m, 14);
        let b = rand_vec(n * m, 15);
        let factors = rand_vec(n, 16);
        let bias = rand_vec(m, 17);
        for t in THREADS {
            let pool = Pool::new(t);
            let one = Pool::new(1);
            let mut x = vec![0.0; n * m];
            let mut y = vec![0.0; n * m];
            unary_map(&a, &mut x, |v| v.max(0.0), &pool);
            unary_map(&a, &mut y, |v| v.max(0.0), &one);
            assert_eq!(x, y, "unary at {t}");
            binary_map(&a, &b, &mut x, |u, v| u * v, &pool);
            binary_map(&a, &b, &mut y, |u, v| u * v, &one);
            assert_eq!(x, y, "binary at {t}");
            row_scale(&a, m, &factors, &mut x, &pool);
            row_scale(&a, m, &factors, &mut y, &one);
            assert_eq!(x, y, "row_scale at {t}");
            add_bias(&a, &bias, &mut x, &pool);
            add_bias(&a, &bias, &mut y, &one);
            assert_eq!(x, y, "add_bias at {t}");
            let mut cx = vec![0.0; n];
            let mut cy = vec![0.0; n];
            row_dot(&a, &b, m, &mut cx, &pool);
            row_dot(&a, &b, m, &mut cy, &one);
            assert_eq!(cx, cy, "row_dot at {t}");
            row_sums(&a, m, &mut cx, &pool);
            row_sums(&a, m, &mut cy, &one);
            assert_eq!(cx, cy, "row_sums at {t}");
            rows_from_col(&factors, m, &mut x, &pool);
            rows_from_col(&factors, m, &mut y, &one);
            assert_eq!(x, y, "rows_from_col at {t}");
        }
    }

    #[test]
    fn concat_cols_matches_scalar_layout() {
        let a = rand_vec(5 * 2, 18);
        let b = rand_vec(5 * 3, 19);
        let mut out = vec![0.0; 5 * 5];
        concat_cols(&a, 2, &b, 3, &mut out, &Pool::new(4));
        for r in 0..5 {
            assert_eq!(&out[r * 5..r * 5 + 2], &a[r * 2..(r + 1) * 2]);
            assert_eq!(&out[r * 5 + 2..r * 5 + 5], &b[r * 3..(r + 1) * 3]);
        }
    }

    #[test]
    fn small_shapes_stay_on_the_scalar_path() {
        // Below the flop threshold the pool must not be consulted: a
        // panicking closure inside Pool would fire if fan-out happened.
        let a = rand_vec(6 * 2, 20);
        let idx = vec![0u32, 3, 5, 1];
        let mut out = vec![0.0; 4 * 2];
        gather_rows(&a, 2, &idx, &mut out, &Pool::new(8));
        for (i, &src) in idx.iter().enumerate() {
            assert_eq!(&out[i * 2..(i + 1) * 2], &a[src as usize * 2..(src as usize + 1) * 2]);
        }
    }

    #[test]
    fn segment_sum_empty_segments_stay_zero_forward_and_backward() {
        // 4 segments, rows mapping only to segments 1 and 3: segments 0
        // and 2 are empty and must keep their zero-initialized rows.
        let a = vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0];
        let seg = vec![1u32, 3, 1];
        let mut out = vec![0.0; 4 * 2];
        segment_sum(&a, 2, &seg, &mut out, &Pool::new(4));
        assert_eq!(out, vec![0.0, 0.0, 11.0, 22.0, 0.0, 0.0, 3.0, 4.0]);
        // Backward: da row i is grad row seg[i]; empty segments simply
        // never appear.
        let grad = vec![0.5, 0.5, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        let mut da = vec![0.0; 3 * 2];
        segment_sum_grad(&grad, 2, &seg, &mut da, &Pool::new(4));
        assert_eq!(da, vec![1.0, 1.0, 3.0, 3.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_sum_with_no_rows_leaves_output_zero() {
        let a: Vec<f32> = Vec::new();
        let seg: Vec<u32> = Vec::new();
        let mut out = vec![0.0; 3 * 2];
        segment_sum(&a, 2, &seg, &mut out, &Pool::new(2));
        assert!(out.iter().all(|&v| v == 0.0));
        let mut da: Vec<f32> = Vec::new();
        segment_sum_grad(&[0.0; 6], 2, &seg, &mut da, &Pool::new(2));
        assert!(da.is_empty());
    }

    #[test]
    fn segment_softmax_single_row_segment_forward_and_backward() {
        // Segment 0 has one row (softmax == 1.0), segment 1 has two,
        // segment 2 is empty.
        let x = vec![3.0, 0.0, 0.0];
        let seg = vec![0u32, 1, 1];
        let mut max = vec![f32::NEG_INFINITY; 3];
        let mut denom = vec![0.0; 3];
        let mut out = vec![0.0; 3];
        segment_softmax(&x, &seg, &mut max, &mut denom, &mut out, &Pool::new(4));
        assert_eq!(out[0], 1.0, "single-row segment normalizes to 1");
        assert!((out[1] - 0.5).abs() < 1e-6 && (out[2] - 0.5).abs() < 1e-6);
        // The empty segment keeps its init scratch and contributes no rows.
        assert_eq!(max[2], f32::NEG_INFINITY);
        assert_eq!(denom[2], 0.0);
        // Backward: a single-row segment's softmax is constant, so its
        // gradient must vanish exactly.
        let g = vec![0.7, 1.0, -1.0];
        let mut seg_dot = vec![0.0; 3];
        let mut da = vec![0.0; 3];
        segment_softmax_grad(&out, &g, &seg, &mut seg_dot, &mut da, &Pool::new(4));
        assert_eq!(da[0], 0.0, "constant output => zero gradient");
        assert!((da[1] - 0.5).abs() < 1e-6 && (da[2] + 0.5).abs() < 1e-6);
    }

    #[test]
    fn segment_softmax_empty_input_is_a_no_op() {
        let mut max = vec![f32::NEG_INFINITY; 2];
        let mut denom = vec![0.0; 2];
        let mut out: Vec<f32> = Vec::new();
        segment_softmax(&[], &[], &mut max, &mut denom, &mut out, &Pool::new(4));
        assert_eq!(max, vec![f32::NEG_INFINITY; 2]);
        assert_eq!(denom, vec![0.0; 2]);
        let mut seg_dot = vec![0.0; 2];
        let mut da: Vec<f32> = Vec::new();
        segment_softmax_grad(&[], &[], &[], &mut seg_dot, &mut da, &Pool::new(4));
        assert_eq!(seg_dot, vec![0.0; 2]);
    }

    #[test]
    fn single_row_input_round_trips_all_segment_kernels() {
        let a = vec![2.0, -1.0];
        let seg = vec![0u32];
        let mut out = vec![0.0; 2];
        segment_sum(&a, 2, &seg, &mut out, &Pool::new(8));
        assert_eq!(out, a);
        let mut da = vec![0.0; 2];
        segment_sum_grad(&out, 2, &seg, &mut da, &Pool::new(8));
        assert_eq!(da, a);
        let mut max = vec![f32::NEG_INFINITY];
        let mut denom = vec![0.0];
        let mut soft = vec![0.0];
        segment_softmax(&[5.0], &seg, &mut max, &mut denom, &mut soft, &Pool::new(8));
        assert_eq!(soft, vec![1.0]);
        assert_eq!(max, vec![5.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rows_checks_bounds() {
        let a = vec![0.0; 4];
        let mut out = vec![0.0; 2];
        gather_rows(&a, 2, &[7], &mut out, &Pool::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn segment_sum_checks_bounds() {
        let a = vec![0.0; 4];
        let mut out = vec![0.0; 2];
        segment_sum(&a, 2, &[0, 3], &mut out, &Pool::new(1));
    }
}
