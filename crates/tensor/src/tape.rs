use splpg_rng::Rng;

use crate::arena::{ArenaStats, TapeArena};
use crate::segment;
use crate::Tensor;

/// Handle to a value recorded on a [`Tape`].
///
/// `Var`s are indices into the tape's arena; they are `Copy` and only valid
/// for the tape that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Gradients produced by [`Tape::backward`], addressable by [`Var`].
///
/// Hand the struct back to [`Tape::recycle_gradients`] once the wanted
/// gradients have been taken, so the next step reuses its storage.
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if it participated in
    /// the backward pass.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `var`.
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.0).and_then(|g| g.take())
    }
}

/// One recorded operation and how to backpropagate through it.
#[derive(Debug)]
enum Op {
    Leaf,
    MatMul { a: Var, b: Var },
    Add { a: Var, b: Var },
    Sub { a: Var, b: Var },
    Mul { a: Var, b: Var },
    Scale { a: Var, c: f32 },
    AddBias { a: Var, bias: Var },
    Relu { a: Var },
    LeakyRelu { a: Var, slope: f32 },
    Sigmoid { a: Var },
    Tanh { a: Var },
    Dropout { a: Var, mask: Vec<f32> },
    ConcatCols { a: Var, b: Var },
    GatherRows { a: Var, idx: Vec<u32> },
    SegmentSum { a: Var, seg: Vec<u32> },
    ScaleRows { a: Var, factors: Vec<f32> },
    MulColBroadcast { a: Var, col: Var },
    SegmentSoftmax { a: Var, seg: Vec<u32> },
    RowSum { a: Var },
    MeanAll { a: Var },
    SumAll { a: Var },
    BceWithLogits { a: Var, targets: Vec<f32> },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// Arena-based reverse-mode autograd tape.
///
/// Record operations through its methods, then call [`Tape::backward`] on
/// the scalar loss. The tape owns all intermediate values; leaves are
/// snapshots of parameters or inputs.
///
/// Trainers hold **one tape across steps**: [`Tape::reset`] clears the
/// recorded graph while keeping every backing buffer pooled in the
/// tape's arena, so step N+1 reuses step N's memory and the steady-state
/// step performs no heap allocation ([`Tape::arena_stats`] proves it).
/// The aggregation ops (`gather_rows`, `segment_sum`, `segment_softmax`,
/// row-wise elementwise) fan out over the global [`splpg_par`] pool with
/// outputs bit-identical to the scalar kernels at any thread count.
///
/// # Examples
///
/// ```
/// use splpg_tensor::{Tape, Tensor};
/// let mut t = Tape::new();
/// let x = t.leaf(Tensor::from_vec(2, 1, vec![3.0, -1.0]).unwrap());
/// let y = t.relu(x);
/// let loss = t.sum_all(y);
/// let grads = t.backward(loss);
/// assert_eq!(grads.get(x).unwrap().data(), &[1.0, 0.0]);
/// // Reuse the tape for the next step without reallocating:
/// t.recycle_gradients(grads);
/// t.reset();
/// assert!(t.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    arena: TapeArena,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new(), arena: TapeArena::default() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the recorded graph while keeping every backing buffer —
    /// values, op metadata, node table — pooled in the tape's arena for
    /// the next step.
    pub fn reset(&mut self) {
        let Tape { nodes, arena } = self;
        for node in nodes.drain(..) {
            match node.op {
                Op::Dropout { mask, .. } => arena.recycle_f32(mask),
                Op::GatherRows { idx, .. } => arena.recycle_u32(idx),
                Op::SegmentSum { seg, .. } | Op::SegmentSoftmax { seg, .. } => {
                    arena.recycle_u32(seg);
                }
                Op::ScaleRows { factors, .. } => arena.recycle_f32(factors),
                Op::BceWithLogits { targets, .. } => arena.recycle_f32(targets),
                _ => {}
            }
            arena.recycle_tensor(node.value);
        }
    }

    /// Returns a tensor's backing storage to the tape's arena (e.g.
    /// parameter gradients after the optimizer step consumed them).
    pub fn recycle(&mut self, t: Tensor) {
        self.arena.recycle_tensor(t);
    }

    /// Returns a [`Gradients`] table and all gradients still inside it to
    /// the arena, so the next [`Tape::backward`] reuses the storage.
    pub fn recycle_gradients(&mut self, mut g: Gradients) {
        for slot in g.grads.iter_mut() {
            if let Some(t) = slot.take() {
                self.arena.recycle_tensor(t);
            }
        }
        g.grads.clear();
        if g.grads.capacity() > self.arena.grad_slots.capacity() {
            self.arena.grad_slots = g.grads;
        }
    }

    /// Allocation counters for the tape's arena; the per-step delta of
    /// [`ArenaStats::allocations`] is zero once shapes have warmed up.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// Bytes of backing capacity the tape currently holds: live node
    /// values and metadata, pooled free buffers, and the node/gradient
    /// tables. Stable across steps once shapes have warmed up.
    pub fn backing_bytes(&self) -> usize {
        let mut total = self.arena.pooled_bytes();
        total += self.nodes.capacity() * std::mem::size_of::<Node>();
        for node in &self.nodes {
            total += node.value.data_capacity() * 4;
            total += 4 * match &node.op {
                Op::Dropout { mask, .. } => mask.capacity(),
                Op::GatherRows { idx, .. } => idx.capacity(),
                Op::SegmentSum { seg, .. } | Op::SegmentSoftmax { seg, .. } => seg.capacity(),
                Op::ScaleRows { factors, .. } => factors.capacity(),
                Op::BceWithLogits { targets, .. } => targets.capacity(),
                _ => 0,
            };
        }
        total
    }

    /// Current value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` belongs to a different tape.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records an input/parameter leaf, taking ownership of `value`.
    ///
    /// Prefer [`Tape::leaf_copy`] / [`Tape::leaf_with`] inside training
    /// loops: a moved-in tensor was allocated outside the arena, so its
    /// storage joins the pool on [`Tape::reset`] and the pool grows by
    /// one buffer per step instead of reaching a fixed point.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Records a leaf holding a pooled copy of `value` — the zero-realloc
    /// way to feed parameters into the tape every step.
    pub fn leaf_copy(&mut self, value: &Tensor) -> Var {
        let v = self.arena.copy_tensor(value);
        self.push(v, Op::Leaf)
    }

    /// Records a `rows x cols` leaf whose contents are produced by `fill`
    /// into a cleared pooled buffer (e.g. a feature gather writing
    /// straight into the arena).
    ///
    /// # Panics
    ///
    /// Panics if `fill` doesn't leave exactly `rows * cols` elements.
    pub fn leaf_with(
        &mut self,
        rows: usize,
        cols: usize,
        fill: impl FnOnce(&mut Vec<f32>),
    ) -> Var {
        let mut buf = self.arena.take_f32(rows * cols);
        fill(&mut buf);
        assert_eq!(buf.len(), rows * cols, "leaf_with fill length");
        self.push(Tensor::from_raw(rows, cols, buf), Op::Leaf)
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (n, _) = self.value(a).shape();
        let (_, m) = self.value(b).shape();
        let mut out = self.arena.zeroed_f32(n * m);
        self.value(a).matmul_into(self.value(b), &mut out);
        self.push(Tensor::from_raw(n, m, out), Op::MatMul { a, b })
    }

    /// Element-wise `a + b` (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (n, m) = self.binary_shape(a, b);
        let mut out = self.arena.zeroed_f32(n * m);
        segment::binary_map(
            self.value(a).data(),
            self.value(b).data(),
            &mut out,
            |x, y| x + y,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::Add { a, b })
    }

    /// Element-wise `a - b` (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let (n, m) = self.binary_shape(a, b);
        let mut out = self.arena.zeroed_f32(n * m);
        segment::binary_map(
            self.value(a).data(),
            self.value(b).data(),
            &mut out,
            |x, y| x - y,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::Sub { a, b })
    }

    /// Element-wise `a * b` (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (n, m) = self.binary_shape(a, b);
        let mut out = self.arena.zeroed_f32(n * m);
        segment::binary_map(
            self.value(a).data(),
            self.value(b).data(),
            &mut out,
            |x, y| x * y,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::Mul { a, b })
    }

    fn binary_shape(&self, a: Var, b: Var) -> (usize, usize) {
        let shape = self.value(a).shape();
        assert_eq!(shape, self.value(b).shape(), "element-wise shape mismatch");
        shape
    }

    /// Scalar multiple `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let (n, m) = self.value(a).shape();
        let mut out = self.arena.zeroed_f32(n * m);
        segment::unary_map(self.value(a).data(), &mut out, |x| x * c, &splpg_par::global());
        self.push(Tensor::from_raw(n, m, out), Op::Scale { a, c })
    }

    /// Broadcast row addition: `[n, m] + [1, m]`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1, m]`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (n, m) = self.value(a).shape();
        let bshape = self.value(bias).shape();
        assert_eq!(bshape, (1, m), "bias must be [1, {m}], got {bshape:?}");
        let mut out = self.arena.zeroed_f32(n * m);
        segment::add_bias(
            self.value(a).data(),
            self.value(bias).data(),
            &mut out,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::AddBias { a, bias })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let (n, m) = self.value(a).shape();
        let mut out = self.arena.zeroed_f32(n * m);
        segment::unary_map(self.value(a).data(), &mut out, |x| x.max(0.0), &splpg_par::global());
        self.push(Tensor::from_raw(n, m, out), Op::Relu { a })
    }

    /// Leaky ReLU with the given negative slope (GAT uses 0.2).
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let (n, m) = self.value(a).shape();
        let mut out = self.arena.zeroed_f32(n * m);
        segment::unary_map(
            self.value(a).data(),
            &mut out,
            |x| if x > 0.0 { x } else { slope * x },
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::LeakyRelu { a, slope })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let (n, m) = self.value(a).shape();
        let mut out = self.arena.zeroed_f32(n * m);
        segment::unary_map(self.value(a).data(), &mut out, stable_sigmoid, &splpg_par::global());
        self.push(Tensor::from_raw(n, m, out), Op::Sigmoid { a })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let (n, m) = self.value(a).shape();
        let mut out = self.arena.zeroed_f32(n * m);
        segment::unary_map(self.value(a).data(), &mut out, f32::tanh, &splpg_par::global());
        self.push(Tensor::from_raw(n, m, out), Op::Tanh { a })
    }

    /// Inverted dropout with keep-probability scaling. A no-op when
    /// `p <= 0`; during evaluation simply don't call it.
    ///
    /// The mask is drawn sequentially (one RNG call per element, in
    /// element order) so the stream is identical at every thread count;
    /// only the mask application fans out.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 1`.
    pub fn dropout<R: Rng + ?Sized>(&mut self, a: Var, p: f32, rng: &mut R) -> Var {
        assert!(p < 1.0, "dropout probability must be < 1, got {p}");
        if p <= 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let (n, m) = self.value(a).shape();
        let mut mask = self.arena.take_f32(n * m);
        for _ in 0..n * m {
            mask.push(if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 });
        }
        let mut out = self.arena.zeroed_f32(n * m);
        segment::binary_map(
            self.value(a).data(),
            &mask,
            &mut out,
            |x, mk| x * mk,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::Dropout { a, mask })
    }

    /// Column-wise concatenation `[n, m1] ++ [n, m2] -> [n, m1 + m2]`
    /// (GraphSAGE's `concat(h_v, h_N(v))`).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (na, ma) = self.value(a).shape();
        let (nb, mb) = self.value(b).shape();
        assert_eq!(na, nb, "concat_cols row mismatch {na} vs {nb}");
        let mut out = self.arena.zeroed_f32(na * (ma + mb));
        segment::concat_cols(
            self.value(a).data(),
            ma,
            self.value(b).data(),
            mb,
            &mut out,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(na, ma + mb, out), Op::ConcatCols { a, b })
    }

    /// Row gather: output row `i` is `a`'s row `idx[i]`. Rows may repeat
    /// (one gathered row per edge endpoint).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gather_rows(&mut self, a: Var, idx: &[u32]) -> Var {
        let (_, m) = self.value(a).shape();
        let idx_copy = self.arena.copy_u32(idx);
        let mut out = self.arena.zeroed_f32(idx.len() * m);
        segment::gather_rows(self.value(a).data(), m, idx, &mut out, &splpg_par::global());
        self.push(Tensor::from_raw(idx.len(), m, out), Op::GatherRows { a, idx: idx_copy })
    }

    /// Segment sum: output row `s` is the sum of input rows `i` with
    /// `seg[i] == s` (the neighborhood-aggregation primitive, Eq. (1)).
    ///
    /// # Panics
    ///
    /// Panics if `seg.len()` differs from the row count or a segment id is
    /// `>= num_segments`.
    pub fn segment_sum(&mut self, a: Var, seg: &[u32], num_segments: usize) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(seg.len(), n, "segment ids must cover every row");
        let seg_copy = self.arena.copy_u32(seg);
        let mut out = self.arena.zeroed_f32(num_segments * m);
        segment::segment_sum(self.value(a).data(), m, seg, &mut out, &splpg_par::global());
        self.push(Tensor::from_raw(num_segments, m, out), Op::SegmentSum { a, seg: seg_copy })
    }

    /// Multiplies row `i` by the constant `factors[i]` (no gradient flows
    /// to the factors — they encode GCN normalization coefficients or
    /// sparsifier edge weights).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the row count.
    pub fn scale_rows(&mut self, a: Var, factors: &[f32]) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(factors.len(), n, "one factor per row required");
        let fac_copy = self.arena.copy_f32(factors);
        let mut out = self.arena.zeroed_f32(n * m);
        segment::row_scale(self.value(a).data(), m, factors, &mut out, &splpg_par::global());
        self.push(Tensor::from_raw(n, m, out), Op::ScaleRows { a, factors: fac_copy })
    }

    /// Multiplies each row of `a` (`[n, m]`) by the matching entry of the
    /// differentiable column `col` (`[n, 1]`) — attention weighting.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(self.value(col).shape(), (n, 1), "col must be [{n}, 1]");
        let mut out = self.arena.zeroed_f32(n * m);
        segment::row_scale(
            self.value(a).data(),
            m,
            self.value(col).data(),
            &mut out,
            &splpg_par::global(),
        );
        self.push(Tensor::from_raw(n, m, out), Op::MulColBroadcast { a, col })
    }

    /// Numerically-stable softmax over segments of a `[n, 1]` column:
    /// entries sharing a segment id are normalized together (GAT attention
    /// over each destination's incoming edges).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column or `seg.len()` mismatches.
    pub fn segment_softmax(&mut self, a: Var, seg: &[u32], num_segments: usize) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(m, 1, "segment_softmax expects a column tensor");
        assert_eq!(seg.len(), n, "segment ids must cover every row");
        let seg_copy = self.arena.copy_u32(seg);
        let mut max = self.arena.take_f32(num_segments);
        max.resize(num_segments, f32::NEG_INFINITY);
        let mut denom = self.arena.zeroed_f32(num_segments);
        let mut out = self.arena.zeroed_f32(n);
        segment::segment_softmax(
            self.value(a).data(),
            seg,
            &mut max,
            &mut denom,
            &mut out,
            &splpg_par::global(),
        );
        self.arena.recycle_f32(max);
        self.arena.recycle_f32(denom);
        self.push(Tensor::from_raw(n, 1, out), Op::SegmentSoftmax { a, seg: seg_copy })
    }

    /// Row-wise sum `[n, m] -> [n, 1]` (dot-product edge scores).
    pub fn row_sum(&mut self, a: Var) -> Var {
        let (n, m) = self.value(a).shape();
        let mut out = self.arena.zeroed_f32(n);
        segment::row_sums(self.value(a).data(), m, &mut out, &splpg_par::global());
        self.push(Tensor::from_raw(n, 1, out), Op::RowSum { a })
    }

    /// Mean of all elements as a `[1, 1]` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = self.value(a).mean();
        let t = self.arena.filled_tensor(1, 1, v);
        self.push(t, Op::MeanAll { a })
    }

    /// Sum of all elements as a `[1, 1]` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = self.value(a).sum();
        let t = self.arena.filled_tensor(1, 1, v);
        self.push(t, Op::SumAll { a })
    }

    /// Mean binary cross-entropy between logits `a` (`[n, 1]`) and 0/1
    /// `targets`, computed in the numerically-stable fused form
    /// `max(z, 0) - z t + ln(1 + e^{-|z|})`.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `a` is empty.
    pub fn bce_with_logits(&mut self, a: Var, targets: &[f32]) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(m, 1, "logits must be a column");
        assert_eq!(targets.len(), n, "one target per logit");
        assert!(n > 0, "empty logits");
        let z = self.value(a).data();
        let mut total = 0.0f64;
        for (&zi, &ti) in z.iter().zip(targets) {
            let loss = zi.max(0.0) - zi * ti + (1.0 + (-zi.abs()).exp()).ln();
            total += loss as f64;
        }
        let t_copy = self.arena.copy_f32(targets);
        let v = self.arena.filled_tensor(1, 1, (total / n as f64) as f32);
        self.push(v, Op::BceWithLogits { a, targets: t_copy })
    }

    /// Runs reverse-mode differentiation from the scalar `loss` node and
    /// returns per-var gradients (backed by pooled arena storage; return
    /// them via [`Tape::recycle_gradients`]).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `[1, 1]` scalar.
    pub fn backward(&mut self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward expects a scalar loss");
        let mut grads = std::mem::take(&mut self.arena.grad_slots);
        grads.clear();
        grads.resize_with(self.nodes.len(), || None);
        let seed = self.arena.filled_tensor(1, 1, 1.0);
        grads[loss.0] = Some(seed);
        let Tape { nodes, arena } = self;
        for id in (0..=loss.0).rev() {
            let Some(grad) = grads[id].take() else { continue };
            accumulate(nodes, arena, id, &grad, &mut grads);
            grads[id] = Some(grad);
        }
        Gradients { grads }
    }
}

fn add_grad(arena: &mut TapeArena, grads: &mut [Option<Tensor>], var: Var, delta: Tensor) {
    match &mut grads[var.0] {
        Some(g) => {
            g.axpy(1.0, &delta);
            arena.recycle_tensor(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

#[allow(clippy::too_many_lines)]
fn accumulate(
    nodes: &[Node],
    arena: &mut TapeArena,
    id: usize,
    grad: &Tensor,
    grads: &mut [Option<Tensor>],
) {
    let pool = splpg_par::global();
    let val = |v: &Var| &nodes[v.0].value;
    match &nodes[id].op {
        Op::Leaf => {}
        Op::MatMul { a, b } => {
            let (ar, ac) = val(a).shape();
            let mut da = arena.zeroed_f32(ar * ac);
            grad.matmul_nt_into(val(b), &mut da);
            let (br, bc) = val(b).shape();
            let mut db = arena.zeroed_f32(br * bc);
            val(a).matmul_tn_into(grad, &mut db);
            add_grad(arena, grads, *a, Tensor::from_raw(ar, ac, da));
            add_grad(arena, grads, *b, Tensor::from_raw(br, bc, db));
        }
        Op::Add { a, b } => {
            let da = arena.copy_tensor(grad);
            add_grad(arena, grads, *a, da);
            let db = arena.copy_tensor(grad);
            add_grad(arena, grads, *b, db);
        }
        Op::Sub { a, b } => {
            let da = arena.copy_tensor(grad);
            add_grad(arena, grads, *a, da);
            let (n, m) = grad.shape();
            let mut db = arena.zeroed_f32(n * m);
            segment::unary_map(grad.data(), &mut db, |g| -g, &pool);
            add_grad(arena, grads, *b, Tensor::from_raw(n, m, db));
        }
        Op::Mul { a, b } => {
            let (n, m) = grad.shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::binary_map(grad.data(), val(b).data(), &mut da, |g, y| g * y, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
            let mut db = arena.zeroed_f32(n * m);
            segment::binary_map(grad.data(), val(a).data(), &mut db, |g, x| g * x, &pool);
            add_grad(arena, grads, *b, Tensor::from_raw(n, m, db));
        }
        Op::Scale { a, c } => {
            let (n, m) = grad.shape();
            let c = *c;
            let mut da = arena.zeroed_f32(n * m);
            segment::unary_map(grad.data(), &mut da, |g| g * c, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::AddBias { a, bias } => {
            let da = arena.copy_tensor(grad);
            add_grad(arena, grads, *a, da);
            let (gn, gm) = grad.shape();
            let mut dbias = arena.zeroed_f32(gm);
            for r in 0..gn {
                for (o, &g) in dbias.iter_mut().zip(grad.row(r)) {
                    *o += g;
                }
            }
            add_grad(arena, grads, *bias, Tensor::from_raw(1, gm, dbias));
        }
        Op::Relu { a } => {
            let (n, m) = grad.shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::binary_map(
                grad.data(),
                val(a).data(),
                &mut da,
                |g, x| if x <= 0.0 { 0.0 } else { g },
                &pool,
            );
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::LeakyRelu { a, slope } => {
            let (n, m) = grad.shape();
            let slope = *slope;
            let mut da = arena.zeroed_f32(n * m);
            segment::binary_map(
                grad.data(),
                val(a).data(),
                &mut da,
                |g, x| if x <= 0.0 { g * slope } else { g },
                &pool,
            );
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::Sigmoid { a } => {
            let out = &nodes[id].value;
            let (n, m) = grad.shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::binary_map(
                grad.data(),
                out.data(),
                &mut da,
                |g, s| g * (s * (1.0 - s)),
                &pool,
            );
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::Tanh { a } => {
            let out = &nodes[id].value;
            let (n, m) = grad.shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::binary_map(
                grad.data(),
                out.data(),
                &mut da,
                |g, t| g * (1.0 - t * t),
                &pool,
            );
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::Dropout { a, mask } => {
            let (n, m) = grad.shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::binary_map(grad.data(), mask, &mut da, |g, mk| g * mk, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::ConcatCols { a, b } => {
            let (n, ma) = val(a).shape();
            let (_, mb) = val(b).shape();
            let mut da = arena.zeroed_f32(n * ma);
            let mut db = arena.zeroed_f32(n * mb);
            for r in 0..n {
                let g_row = grad.row(r);
                da[r * ma..(r + 1) * ma].copy_from_slice(&g_row[..ma]);
                db[r * mb..(r + 1) * mb].copy_from_slice(&g_row[ma..]);
            }
            add_grad(arena, grads, *a, Tensor::from_raw(n, ma, da));
            add_grad(arena, grads, *b, Tensor::from_raw(n, mb, db));
        }
        Op::GatherRows { a, idx } => {
            let (n, m) = val(a).shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::gather_rows_grad(grad.data(), m, idx, &mut da, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::SegmentSum { a, seg } => {
            let (n, m) = val(a).shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::segment_sum_grad(grad.data(), m, seg, &mut da, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::ScaleRows { a, factors } => {
            let (n, m) = grad.shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::row_scale(grad.data(), m, factors, &mut da, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::MulColBroadcast { a, col } => {
            let (n, m) = val(a).shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::row_scale(grad.data(), m, val(col).data(), &mut da, &pool);
            let mut dcol = arena.zeroed_f32(n);
            segment::row_dot(grad.data(), val(a).data(), m, &mut dcol, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
            add_grad(arena, grads, *col, Tensor::from_raw(n, 1, dcol));
        }
        Op::SegmentSoftmax { a, seg } => {
            // dx_i = y_i (g_i - sum_{j in segment} y_j g_j)
            let y = nodes[id].value.data();
            let n = y.len();
            let num_segments = seg.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
            let mut seg_dot = arena.zeroed_f32(num_segments);
            let mut da = arena.zeroed_f32(n);
            segment::segment_softmax_grad(y, grad.data(), seg, &mut seg_dot, &mut da, &pool);
            arena.recycle_f32(seg_dot);
            add_grad(arena, grads, *a, Tensor::from_raw(n, 1, da));
        }
        Op::RowSum { a } => {
            let (n, m) = val(a).shape();
            let mut da = arena.zeroed_f32(n * m);
            segment::rows_from_col(grad.data(), m, &mut da, &pool);
            add_grad(arena, grads, *a, Tensor::from_raw(n, m, da));
        }
        Op::MeanAll { a } => {
            let (n, m) = val(a).shape();
            let g = grad.get(0, 0) / (n * m) as f32;
            let da = arena.filled_tensor(n, m, g);
            add_grad(arena, grads, *a, da);
        }
        Op::SumAll { a } => {
            let (n, m) = val(a).shape();
            let g = grad.get(0, 0);
            let da = arena.filled_tensor(n, m, g);
            add_grad(arena, grads, *a, da);
        }
        Op::BceWithLogits { a, targets } => {
            let z = val(a).data();
            let n = z.len() as f32;
            let g = grad.get(0, 0);
            let mut da = arena.take_f32(z.len());
            for (&zi, &ti) in z.iter().zip(targets) {
                da.push(g * (stable_sigmoid(zi) - ti) / n);
            }
            add_grad(arena, grads, *a, Tensor::from_raw(z.len(), 1, da));
        }
    }
}

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;

    fn t(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn matmul_backward_known() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(1, 2, vec![2.0, 3.0]));
        let b = tape.leaf(t(2, 1, vec![5.0, 7.0]));
        let y = tape.matmul(a, b); // 2*5 + 3*7 = 31
        assert_eq!(tape.value(y).get(0, 0), 31.0);
        let g = tape.backward(y);
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn add_bias_backward_sums_columns() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(3, 2, vec![0.0; 6]));
        let b = tape.leaf(t(1, 2, vec![1.0, 2.0]));
        let y = tape.add_bias(a, b);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(b).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn gather_rows_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = tape.gather_rows(a, &[2, 0, 2]);
        assert_eq!(tape.value(y).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        // Row 2 gathered twice => grad 2, row 0 once, row 1 never.
        assert_eq!(g.get(a).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn segment_sum_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(3, 1, vec![1.0, 10.0, 100.0]));
        let y = tape.segment_sum(a, &[1, 0, 1], 2);
        assert_eq!(tape.value(y).data(), &[10.0, 101.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_softmax_normalizes_per_segment() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(4, 1, vec![1.0, 1.0, 2.0, 0.0]));
        let y = tape.segment_softmax(a, &[0, 0, 1, 1], 2);
        let v = tape.value(y).data();
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!((v[2] + v[3] - 1.0).abs() < 1e-6);
        assert!(v[2] > v[3]);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let mut tape = Tape::new();
        let z = tape.leaf(t(2, 1, vec![0.0, 2.0]));
        let loss = tape.bce_with_logits(z, &[1.0, 0.0]);
        // loss = mean( ln 2 , 2 + ln(1 + e^-2) )
        let expect =
            (std::f32::consts::LN_2 + (2.0 + (1.0f32 + (-2.0f32).exp()).ln())) / 2.0;
        assert!((tape.value(loss).get(0, 0) - expect).abs() < 1e-5);
        let g = tape.backward(loss);
        let gd = g.get(z).unwrap().data().to_vec();
        // d/dz = (sigma(z) - t)/n
        assert!((gd[0] - (0.5 - 1.0) / 2.0).abs() < 1e-6);
        assert!((gd[1] - (stable_sigmoid(2.0) - 0.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn dropout_scales_by_keep_probability() {
        use splpg_rng::SeedableRng;
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(100, 10));
        let y = tape.dropout(a, 0.5, &mut rng);
        // E[output] = input; check the mean is near 1.
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.15, "dropout mean {mean}");
        // Entries are either 0 or 2.
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0 || v == 2.0));
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        use splpg_rng::SeedableRng;
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(2, 2));
        let y = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(y, a);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(2, 1, vec![1.0, 2.0]));
        let b = tape.leaf(t(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let y = tape.concat_cols(a, b);
        assert_eq!(tape.value(y).data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(a).unwrap().shape(), (2, 1));
        assert_eq!(g.get(b).unwrap().shape(), (2, 2));
    }

    #[test]
    fn reuse_of_var_accumulates_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(1, 1, vec![3.0]));
        let y = tape.mul(a, a); // y = a^2, dy/da = 2a = 6
        let g = tape.backward(y);
        assert_eq!(g.get(a).unwrap().get(0, 0), 6.0);
    }

    #[test]
    fn scale_rows_has_no_factor_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(2, 2, vec![1.0; 4]));
        let y = tape.scale_rows(a, &[2.0, 3.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(2, 1, vec![1.0, 2.0]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(a);
        }));
        assert!(result.is_err());
    }

    /// One training-like step: forward chain over every op family,
    /// backward, gradient harvest, recycle. Returns the loss.
    fn fake_step(tape: &mut Tape, x: &Tensor, w: &Tensor, seed: u64) -> f32 {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(seed);
        tape.reset();
        let xv = tape.leaf_copy(x);
        let wv = tape.leaf_copy(w);
        let idx: Vec<u32> = (0..16).map(|i| (i * 7 % x.rows()) as u32).collect();
        let seg: Vec<u32> = (0..16).map(|i| (i % 5) as u32).collect();
        let gathered = tape.gather_rows(xv, &idx);
        let scaled = tape.scale_rows(gathered, &[0.5; 16]);
        let agg = tape.segment_sum(scaled, &seg, 5);
        let h = tape.matmul(agg, wv);
        let act = tape.relu(h);
        let dropped = tape.dropout(act, 0.3, &mut rng);
        let scores = tape.row_sum(dropped);
        let att_in = tape.scale(scores, 0.1);
        let att = tape.segment_softmax(att_in, &[0, 0, 1, 1, 1], 2);
        let weighted = tape.mul_col_broadcast(dropped, att);
        let logits = tape.row_sum(weighted);
        let loss = tape.bce_with_logits(logits, &[1.0, 0.0, 1.0, 0.0, 1.0]);
        let out = tape.value(loss).get(0, 0);
        let mut grads = tape.backward(loss);
        let gw = grads.take(wv).expect("weight gradient");
        tape.recycle(gw);
        tape.recycle_gradients(grads);
        out
    }

    #[test]
    fn backing_capacity_stable_from_step_two() {
        use splpg_rng::Rng;
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(9);
        let x = Tensor::from_fn(24, 6, |_, _| rng.gen_range(-1.0f32..1.0));
        let w = Tensor::from_fn(6, 6, |_, _| rng.gen_range(-1.0f32..1.0));
        let mut tape = Tape::new();
        let mut bytes = Vec::new();
        let mut allocs = Vec::new();
        for step in 0..6 {
            fake_step(&mut tape, &x, &w, step);
            bytes.push(tape.backing_bytes());
            allocs.push(tape.arena_stats().allocations());
        }
        // Identical shapes every step: backing capacity is a fixed point
        // from step 2 onward, and no step after warm-up allocates.
        assert_eq!(&bytes[1..], &vec![bytes[1]; bytes.len() - 1][..], "capacity plateau {bytes:?}");
        for w in allocs[1..].windows(2) {
            assert_eq!(w[0], w[1], "steady-state step allocated: {allocs:?}");
        }
    }

    #[test]
    fn reused_tape_reproduces_fresh_tape_losses() {
        use splpg_rng::Rng;
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(10);
        let x = Tensor::from_fn(24, 6, |_, _| rng.gen_range(-1.0f32..1.0));
        let w = Tensor::from_fn(6, 6, |_, _| rng.gen_range(-1.0f32..1.0));
        let mut reused = Tape::new();
        for step in 0..4 {
            let a = fake_step(&mut reused, &x, &w, step);
            let mut fresh = Tape::new();
            let b = fake_step(&mut fresh, &x, &w, step);
            assert_eq!(a.to_bits(), b.to_bits(), "step {step}: stale state leaked");
        }
    }
}
