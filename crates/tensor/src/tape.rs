use splpg_rng::Rng;

use crate::Tensor;

/// Handle to a value recorded on a [`Tape`].
///
/// `Var`s are indices into the tape's arena; they are `Copy` and only valid
/// for the tape that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// Gradients produced by [`Tape::backward`], addressable by [`Var`].
#[derive(Debug)]
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `var`, if it participated in
    /// the backward pass.
    pub fn get(&self, var: Var) -> Option<&Tensor> {
        self.grads.get(var.0).and_then(|g| g.as_ref())
    }

    /// Takes ownership of the gradient for `var`.
    pub fn take(&mut self, var: Var) -> Option<Tensor> {
        self.grads.get_mut(var.0).and_then(|g| g.take())
    }
}

/// One recorded operation and how to backpropagate through it.
#[derive(Debug)]
enum Op {
    Leaf,
    MatMul { a: Var, b: Var },
    Add { a: Var, b: Var },
    Sub { a: Var, b: Var },
    Mul { a: Var, b: Var },
    Scale { a: Var, c: f32 },
    AddBias { a: Var, bias: Var },
    Relu { a: Var },
    LeakyRelu { a: Var, slope: f32 },
    Sigmoid { a: Var },
    Tanh { a: Var },
    Dropout { a: Var, mask: Vec<f32> },
    ConcatCols { a: Var, b: Var },
    GatherRows { a: Var, idx: Vec<u32> },
    SegmentSum { a: Var, seg: Vec<u32> },
    ScaleRows { a: Var, factors: Vec<f32> },
    MulColBroadcast { a: Var, col: Var },
    SegmentSoftmax { a: Var, seg: Vec<u32> },
    RowSum { a: Var },
    MeanAll { a: Var },
    SumAll { a: Var },
    BceWithLogits { a: Var, targets: Vec<f32> },
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
}

/// Arena-based reverse-mode autograd tape.
///
/// Create one tape per forward pass (mini-batch), record operations through
/// its methods, then call [`Tape::backward`] on the scalar loss. The tape
/// owns all intermediate values; leaves are snapshots of parameters or
/// inputs.
///
/// # Examples
///
/// ```
/// use splpg_tensor::{Tape, Tensor};
/// let mut t = Tape::new();
/// let x = t.leaf(Tensor::from_vec(2, 1, vec![3.0, -1.0]).unwrap());
/// let y = t.relu(x);
/// let loss = t.sum_all(y);
/// let grads = t.backward(loss);
/// assert_eq!(grads.get(x).unwrap().data(), &[1.0, 0.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` belongs to a different tape.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Records an input/parameter leaf.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// `a @ b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul { a, b })
    }

    /// Element-wise `a + b` (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add { a, b })
    }

    /// Element-wise `a - b` (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub { a, b })
    }

    /// Element-wise `a * b` (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul { a, b })
    }

    /// Scalar multiple `c * a`.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = self.value(a).scale(c);
        self.push(v, Op::Scale { a, c })
    }

    /// Broadcast row addition: `[n, m] + [1, m]`.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `[1, m]`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let (n, m) = self.value(a).shape();
        let bshape = self.value(bias).shape();
        assert_eq!(bshape, (1, m), "bias must be [1, {m}], got {bshape:?}");
        let mut v = self.value(a).clone();
        let b = self.value(bias).data().to_vec();
        for r in 0..n {
            for (x, &bb) in v.row_mut(r).iter_mut().zip(&b) {
                *x += bb;
            }
        }
        self.push(v, Op::AddBias { a, bias })
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(v, Op::Relu { a })
    }

    /// Leaky ReLU with the given negative slope (GAT uses 0.2).
    pub fn leaky_relu(&mut self, a: Var, slope: f32) -> Var {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { slope * x });
        self.push(v, Op::LeakyRelu { a, slope })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(stable_sigmoid);
        self.push(v, Op::Sigmoid { a })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f32::tanh);
        self.push(v, Op::Tanh { a })
    }

    /// Inverted dropout with keep-probability scaling. A no-op when
    /// `p <= 0`; during evaluation simply don't call it.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 1`.
    pub fn dropout<R: Rng + ?Sized>(&mut self, a: Var, p: f32, rng: &mut R) -> Var {
        assert!(p < 1.0, "dropout probability must be < 1, got {p}");
        if p <= 0.0 {
            return a;
        }
        let keep = 1.0 - p;
        let mask: Vec<f32> = self
            .value(a)
            .data()
            .iter()
            .map(|_| if rng.gen::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let src = self.value(a).clone();
        let mut v = src;
        for (x, &m) in v.data_mut().iter_mut().zip(&mask) {
            *x *= m;
        }
        self.push(v, Op::Dropout { a, mask })
    }

    /// Column-wise concatenation `[n, m1] ++ [n, m2] -> [n, m1 + m2]`
    /// (GraphSAGE's `concat(h_v, h_N(v))`).
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let (na, ma) = self.value(a).shape();
        let (nb, mb) = self.value(b).shape();
        assert_eq!(na, nb, "concat_cols row mismatch {na} vs {nb}");
        let mut v = Tensor::zeros(na, ma + mb);
        for r in 0..na {
            v.row_mut(r)[..ma].copy_from_slice(self.value(a).row(r));
        }
        for r in 0..nb {
            let brow = self.value(b).row(r).to_vec();
            v.row_mut(r)[ma..].copy_from_slice(&brow);
        }
        self.push(v, Op::ConcatCols { a, b })
    }

    /// Row gather: output row `i` is `a`'s row `idx[i]`. Rows may repeat
    /// (one gathered row per edge endpoint).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn gather_rows(&mut self, a: Var, idx: &[u32]) -> Var {
        let (n, m) = self.value(a).shape();
        let mut v = Tensor::zeros(idx.len(), m);
        for (i, &src) in idx.iter().enumerate() {
            assert!((src as usize) < n, "gather index {src} out of range {n}");
            let row = self.value(a).row(src as usize).to_vec();
            v.row_mut(i).copy_from_slice(&row);
        }
        self.push(v, Op::GatherRows { a, idx: idx.to_vec() })
    }

    /// Segment sum: output row `s` is the sum of input rows `i` with
    /// `seg[i] == s` (the neighborhood-aggregation primitive, Eq. (1)).
    ///
    /// # Panics
    ///
    /// Panics if `seg.len()` differs from the row count or a segment id is
    /// `>= num_segments`.
    pub fn segment_sum(&mut self, a: Var, seg: &[u32], num_segments: usize) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(seg.len(), n, "segment ids must cover every row");
        let mut v = Tensor::zeros(num_segments, m);
        for (i, &s) in seg.iter().enumerate() {
            assert!((s as usize) < num_segments, "segment id {s} out of range");
            let row = self.value(a).row(i).to_vec();
            for (o, &x) in v.row_mut(s as usize).iter_mut().zip(&row) {
                *o += x;
            }
        }
        self.push(v, Op::SegmentSum { a, seg: seg.to_vec() })
    }

    /// Multiplies row `i` by the constant `factors[i]` (no gradient flows
    /// to the factors — they encode GCN normalization coefficients or
    /// sparsifier edge weights).
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the row count.
    pub fn scale_rows(&mut self, a: Var, factors: &[f32]) -> Var {
        let (n, _m) = self.value(a).shape();
        assert_eq!(factors.len(), n, "one factor per row required");
        let mut v = self.value(a).clone();
        for (r, &f) in factors.iter().enumerate() {
            for x in v.row_mut(r) {
                *x *= f;
            }
        }
        self.push(v, Op::ScaleRows { a, factors: factors.to_vec() })
    }

    /// Multiplies each row of `a` (`[n, m]`) by the matching entry of the
    /// differentiable column `col` (`[n, 1]`) — attention weighting.
    ///
    /// # Panics
    ///
    /// Panics if shapes are incompatible.
    pub fn mul_col_broadcast(&mut self, a: Var, col: Var) -> Var {
        let (n, _m) = self.value(a).shape();
        assert_eq!(self.value(col).shape(), (n, 1), "col must be [{n}, 1]");
        let colv = self.value(col).data().to_vec();
        let mut v = self.value(a).clone();
        for (r, &c) in colv.iter().enumerate() {
            for x in v.row_mut(r) {
                *x *= c;
            }
        }
        self.push(v, Op::MulColBroadcast { a, col })
    }

    /// Numerically-stable softmax over segments of a `[n, 1]` column:
    /// entries sharing a segment id are normalized together (GAT attention
    /// over each destination's incoming edges).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not a column or `seg.len()` mismatches.
    pub fn segment_softmax(&mut self, a: Var, seg: &[u32], num_segments: usize) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(m, 1, "segment_softmax expects a column tensor");
        assert_eq!(seg.len(), n, "segment ids must cover every row");
        let x = self.value(a).data();
        let mut max = vec![f32::NEG_INFINITY; num_segments];
        for (i, &s) in seg.iter().enumerate() {
            max[s as usize] = max[s as usize].max(x[i]);
        }
        let mut denom = vec![0.0f32; num_segments];
        let mut out = vec![0.0f32; n];
        for (i, &s) in seg.iter().enumerate() {
            let e = (x[i] - max[s as usize]).exp();
            out[i] = e;
            denom[s as usize] += e;
        }
        for (i, &s) in seg.iter().enumerate() {
            out[i] /= denom[s as usize].max(f32::MIN_POSITIVE);
        }
        let v = Tensor::from_vec(n, 1, out).expect("shape by construction");
        self.push(v, Op::SegmentSoftmax { a, seg: seg.to_vec() })
    }

    /// Row-wise sum `[n, m] -> [n, 1]` (dot-product edge scores).
    pub fn row_sum(&mut self, a: Var) -> Var {
        let v = self.value(a).row_sums();
        self.push(v, Op::RowSum { a })
    }

    /// Mean of all elements as a `[1, 1]` scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).mean()]).expect("scalar");
        self.push(v, Op::MeanAll { a })
    }

    /// Sum of all elements as a `[1, 1]` scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::from_vec(1, 1, vec![self.value(a).sum()]).expect("scalar");
        self.push(v, Op::SumAll { a })
    }

    /// Mean binary cross-entropy between logits `a` (`[n, 1]`) and 0/1
    /// `targets`, computed in the numerically-stable fused form
    /// `max(z, 0) - z t + ln(1 + e^{-|z|})`.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or `a` is empty.
    pub fn bce_with_logits(&mut self, a: Var, targets: &[f32]) -> Var {
        let (n, m) = self.value(a).shape();
        assert_eq!(m, 1, "logits must be a column");
        assert_eq!(targets.len(), n, "one target per logit");
        assert!(n > 0, "empty logits");
        let z = self.value(a).data();
        let mut total = 0.0f64;
        for (&zi, &ti) in z.iter().zip(targets) {
            let loss = zi.max(0.0) - zi * ti + (1.0 + (-zi.abs()).exp()).ln();
            total += loss as f64;
        }
        let v = Tensor::from_vec(1, 1, vec![(total / n as f64) as f32]).expect("scalar");
        self.push(v, Op::BceWithLogits { a, targets: targets.to_vec() })
    }

    /// Runs reverse-mode differentiation from the scalar `loss` node and
    /// returns per-var gradients.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a `[1, 1]` scalar.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.value(loss).shape(), (1, 1), "backward expects a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::ones(1, 1));
        for id in (0..=loss.0).rev() {
            let Some(grad) = grads[id].take() else { continue };
            self.accumulate(id, &grad, &mut grads);
            grads[id] = Some(grad);
        }
        Gradients { grads }
    }

    fn add_grad(grads: &mut [Option<Tensor>], var: Var, delta: Tensor) {
        match &mut grads[var.0] {
            Some(g) => g.axpy(1.0, &delta),
            slot @ None => *slot = Some(delta),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn accumulate(&self, id: usize, grad: &Tensor, grads: &mut [Option<Tensor>]) {
        match &self.nodes[id].op {
            Op::Leaf => {}
            Op::MatMul { a, b } => {
                let da = grad.matmul_nt(self.value(*b));
                let db = self.value(*a).matmul_tn(grad);
                Self::add_grad(grads, *a, da);
                Self::add_grad(grads, *b, db);
            }
            Op::Add { a, b } => {
                Self::add_grad(grads, *a, grad.clone());
                Self::add_grad(grads, *b, grad.clone());
            }
            Op::Sub { a, b } => {
                Self::add_grad(grads, *a, grad.clone());
                Self::add_grad(grads, *b, grad.scale(-1.0));
            }
            Op::Mul { a, b } => {
                Self::add_grad(grads, *a, grad.mul(self.value(*b)));
                Self::add_grad(grads, *b, grad.mul(self.value(*a)));
            }
            Op::Scale { a, c } => {
                Self::add_grad(grads, *a, grad.scale(*c));
            }
            Op::AddBias { a, bias } => {
                Self::add_grad(grads, *a, grad.clone());
                Self::add_grad(grads, *bias, grad.col_sums());
            }
            Op::Relu { a } => {
                let mut d = grad.clone();
                for (g, &x) in d.data_mut().iter_mut().zip(self.value(*a).data()) {
                    if x <= 0.0 {
                        *g = 0.0;
                    }
                }
                Self::add_grad(grads, *a, d);
            }
            Op::LeakyRelu { a, slope } => {
                let mut d = grad.clone();
                for (g, &x) in d.data_mut().iter_mut().zip(self.value(*a).data()) {
                    if x <= 0.0 {
                        *g *= slope;
                    }
                }
                Self::add_grad(grads, *a, d);
            }
            Op::Sigmoid { a } => {
                let out = &self.nodes[id].value;
                let mut d = grad.clone();
                for (g, &s) in d.data_mut().iter_mut().zip(out.data()) {
                    *g *= s * (1.0 - s);
                }
                Self::add_grad(grads, *a, d);
            }
            Op::Tanh { a } => {
                let out = &self.nodes[id].value;
                let mut d = grad.clone();
                for (g, &t) in d.data_mut().iter_mut().zip(out.data()) {
                    *g *= 1.0 - t * t;
                }
                Self::add_grad(grads, *a, d);
            }
            Op::Dropout { a, mask } => {
                let mut d = grad.clone();
                for (g, &m) in d.data_mut().iter_mut().zip(mask) {
                    *g *= m;
                }
                Self::add_grad(grads, *a, d);
            }
            Op::ConcatCols { a, b } => {
                let (n, ma) = self.value(*a).shape();
                let (_, mb) = self.value(*b).shape();
                let mut da = Tensor::zeros(n, ma);
                let mut db = Tensor::zeros(n, mb);
                for r in 0..n {
                    da.row_mut(r).copy_from_slice(&grad.row(r)[..ma]);
                    db.row_mut(r).copy_from_slice(&grad.row(r)[ma..]);
                }
                Self::add_grad(grads, *a, da);
                Self::add_grad(grads, *b, db);
            }
            Op::GatherRows { a, idx } => {
                let (n, m) = self.value(*a).shape();
                let mut da = Tensor::zeros(n, m);
                for (i, &src) in idx.iter().enumerate() {
                    let gr = grad.row(i).to_vec();
                    for (o, &g) in da.row_mut(src as usize).iter_mut().zip(&gr) {
                        *o += g;
                    }
                }
                Self::add_grad(grads, *a, da);
            }
            Op::SegmentSum { a, seg } => {
                let (n, m) = self.value(*a).shape();
                let mut da = Tensor::zeros(n, m);
                for (i, &s) in seg.iter().enumerate() {
                    da.row_mut(i).copy_from_slice(grad.row(s as usize));
                }
                Self::add_grad(grads, *a, da);
            }
            Op::ScaleRows { a, factors } => {
                let mut d = grad.clone();
                for (r, &f) in factors.iter().enumerate() {
                    for g in d.row_mut(r) {
                        *g *= f;
                    }
                }
                Self::add_grad(grads, *a, d);
            }
            Op::MulColBroadcast { a, col } => {
                let (n, _m) = self.value(*a).shape();
                let colv = self.value(*col).data();
                let mut da = grad.clone();
                for (r, &c) in colv.iter().enumerate() {
                    for g in da.row_mut(r) {
                        *g *= c;
                    }
                }
                let mut dcol = Tensor::zeros(n, 1);
                for r in 0..n {
                    let s: f32 =
                        grad.row(r).iter().zip(self.value(*a).row(r)).map(|(&g, &x)| g * x).sum();
                    dcol.set(r, 0, s);
                }
                Self::add_grad(grads, *a, da);
                Self::add_grad(grads, *col, dcol);
            }
            Op::SegmentSoftmax { a, seg } => {
                // dx_i = y_i (g_i - sum_{j in segment} y_j g_j)
                let y = self.nodes[id].value.data();
                let g = grad.data();
                let num_segments =
                    seg.iter().map(|&s| s as usize + 1).max().unwrap_or(0);
                let mut seg_dot = vec![0.0f32; num_segments];
                for (i, &s) in seg.iter().enumerate() {
                    seg_dot[s as usize] += y[i] * g[i];
                }
                let mut da = Tensor::zeros(y.len(), 1);
                for (i, &s) in seg.iter().enumerate() {
                    da.set(i, 0, y[i] * (g[i] - seg_dot[s as usize]));
                }
                Self::add_grad(grads, *a, da);
            }
            Op::RowSum { a } => {
                let (n, m) = self.value(*a).shape();
                let mut da = Tensor::zeros(n, m);
                for r in 0..n {
                    let g = grad.get(r, 0);
                    for x in da.row_mut(r) {
                        *x = g;
                    }
                }
                Self::add_grad(grads, *a, da);
            }
            Op::MeanAll { a } => {
                let (n, m) = self.value(*a).shape();
                let g = grad.get(0, 0) / (n * m) as f32;
                Self::add_grad(grads, *a, Tensor::from_fn(n, m, |_, _| g));
            }
            Op::SumAll { a } => {
                let (n, m) = self.value(*a).shape();
                let g = grad.get(0, 0);
                Self::add_grad(grads, *a, Tensor::from_fn(n, m, |_, _| g));
            }
            Op::BceWithLogits { a, targets } => {
                let z = self.value(*a).data();
                let n = z.len() as f32;
                let g = grad.get(0, 0);
                let mut da = Tensor::zeros(z.len(), 1);
                for (i, (&zi, &ti)) in z.iter().zip(targets).enumerate() {
                    da.set(i, 0, g * (stable_sigmoid(zi) - ti) / n);
                }
                Self::add_grad(grads, *a, da);
            }
        }
    }
}

fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, data: Vec<f32>) -> Tensor {
        Tensor::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn matmul_backward_known() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(1, 2, vec![2.0, 3.0]));
        let b = tape.leaf(t(2, 1, vec![5.0, 7.0]));
        let y = tape.matmul(a, b); // 2*5 + 3*7 = 31
        assert_eq!(tape.value(y).get(0, 0), 31.0);
        let g = tape.backward(y);
        assert_eq!(g.get(a).unwrap().data(), &[5.0, 7.0]);
        assert_eq!(g.get(b).unwrap().data(), &[2.0, 3.0]);
    }

    #[test]
    fn add_bias_backward_sums_columns() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(3, 2, vec![0.0; 6]));
        let b = tape.leaf(t(1, 2, vec![1.0, 2.0]));
        let y = tape.add_bias(a, b);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(b).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn gather_rows_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let y = tape.gather_rows(a, &[2, 0, 2]);
        assert_eq!(tape.value(y).data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        // Row 2 gathered twice => grad 2, row 0 once, row 1 never.
        assert_eq!(g.get(a).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn segment_sum_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(3, 1, vec![1.0, 10.0, 100.0]));
        let y = tape.segment_sum(a, &[1, 0, 1], 2);
        assert_eq!(tape.value(y).data(), &[10.0, 101.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_softmax_normalizes_per_segment() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(4, 1, vec![1.0, 1.0, 2.0, 0.0]));
        let y = tape.segment_softmax(a, &[0, 0, 1, 1], 2);
        let v = tape.value(y).data();
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!((v[2] + v[3] - 1.0).abs() < 1e-6);
        assert!(v[2] > v[3]);
    }

    #[test]
    fn bce_matches_manual_computation() {
        let mut tape = Tape::new();
        let z = tape.leaf(t(2, 1, vec![0.0, 2.0]));
        let loss = tape.bce_with_logits(z, &[1.0, 0.0]);
        // loss = mean( ln 2 , 2 + ln(1 + e^-2) )
        let expect =
            (std::f32::consts::LN_2 + (2.0 + (1.0f32 + (-2.0f32).exp()).ln())) / 2.0;
        assert!((tape.value(loss).get(0, 0) - expect).abs() < 1e-5);
        let g = tape.backward(loss);
        let gd = g.get(z).unwrap().data().to_vec();
        // d/dz = (sigma(z) - t)/n
        assert!((gd[0] - (0.5 - 1.0) / 2.0).abs() < 1e-6);
        assert!((gd[1] - (stable_sigmoid(2.0) - 0.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn dropout_scales_by_keep_probability() {
        use splpg_rng::SeedableRng;
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(100, 10));
        let y = tape.dropout(a, 0.5, &mut rng);
        // E[output] = input; check the mean is near 1.
        let mean = tape.value(y).mean();
        assert!((mean - 1.0).abs() < 0.15, "dropout mean {mean}");
        // Entries are either 0 or 2.
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0 || v == 2.0));
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        use splpg_rng::SeedableRng;
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(2, 2));
        let y = tape.dropout(a, 0.0, &mut rng);
        assert_eq!(y, a);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(2, 1, vec![1.0, 2.0]));
        let b = tape.leaf(t(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let y = tape.concat_cols(a, b);
        assert_eq!(tape.value(y).data(), &[1.0, 3.0, 4.0, 2.0, 5.0, 6.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(a).unwrap().shape(), (2, 1));
        assert_eq!(g.get(b).unwrap().shape(), (2, 2));
    }

    #[test]
    fn reuse_of_var_accumulates_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(1, 1, vec![3.0]));
        let y = tape.mul(a, a); // y = a^2, dy/da = 2a = 6
        let g = tape.backward(y);
        assert_eq!(g.get(a).unwrap().get(0, 0), 6.0);
    }

    #[test]
    fn scale_rows_has_no_factor_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(2, 2, vec![1.0; 4]));
        let y = tape.scale_rows(a, &[2.0, 3.0]);
        let s = tape.sum_all(y);
        let g = tape.backward(s);
        assert_eq!(g.get(a).unwrap().data(), &[2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn backward_requires_scalar() {
        let mut tape = Tape::new();
        let a = tape.leaf(t(2, 1, vec![1.0, 2.0]));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            tape.backward(a);
        }));
        assert!(result.is_err());
    }
}
