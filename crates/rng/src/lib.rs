//! Dependency-free deterministic random numbers for the SpLPG workspace.
//!
//! The container this reproduction builds in has no network access, so the
//! workspace cannot pull the `rand` crate. This module provides the small
//! slice of its API the workspace actually uses — seeded generators,
//! `gen`/`gen_range`/`gen_bool`, and slice shuffling — on top of two
//! classic, well-studied generators:
//!
//! * **SplitMix64** ([`SplitMix64`]) expands a single `u64` seed into the
//!   256-bit state of the main generator (and derives independent streams
//!   for parallel work);
//! * **xoshiro256++** ([`Xoshiro256pp`], aliased as [`rngs::StdRng`]) is
//!   the workhorse generator: 256-bit state, period `2^256 - 1`, passes
//!   BigCrush.
//!
//! The API mirrors `rand` 0.8 closely enough that call sites port with an
//! import swap: [`Rng`] is blanket-implemented for every [`RngCore`]
//! (including `&mut dyn RngCore` trait objects), [`SeedableRng`] provides
//! `seed_from_u64`, and [`seq::SliceRandom`] provides `shuffle`/`choose`.
//!
//! Determinism is the load-bearing property: every generator is a pure
//! function of its seed, and [`derive_stream`] gives parallel code a way to
//! assign each work item its own statistically-independent generator so
//! results do not depend on thread count or scheduling.
//!
//! # Examples
//!
//! ```
//! use splpg_rng::{Rng, SeedableRng};
//! use splpg_rng::seq::SliceRandom;
//!
//! let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen();
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.gen_range(0..10usize);
//! assert!(i < 10);
//! let mut v = vec![1, 2, 3, 4, 5];
//! v.shuffle(&mut rng);
//! assert_eq!(v.len(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Golden-ratio increment used by SplitMix64 and stream derivation.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64: a tiny, fast generator used to expand seeds.
///
/// Every distinct `u64` seed yields a full-period sequence; successive
/// outputs are used to initialize [`Xoshiro256pp`] state (the construction
/// recommended by the xoshiro authors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// xoshiro256++: the workspace's standard generator.
///
/// 256-bit state, period `2^256 - 1`. Seeded via SplitMix64 so that any
/// `u64` seed (including 0) produces a well-mixed state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn from_splitmix(sm: &mut SplitMix64) -> Self {
        Xoshiro256pp { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }
}

/// Object-safe core of a random generator: raw integer output.
///
/// Mirrors `rand`'s `RngCore` so `Option<&mut dyn RngCore>` call sites (the
/// models' dropout hooks) port unchanged.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Construction from a `u64` seed, mirroring `rand`'s `SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        Xoshiro256pp::from_splitmix(&mut SplitMix64::new(seed))
    }
}

/// Derives the `stream`-th independent generator of a seeded family.
///
/// Parallel code gives each work item (seed node, partition, output row)
/// its own stream so the drawn values depend only on `(seed, stream)` —
/// never on which thread ran the item or in what order. Streams are spaced
/// by re-seeding SplitMix64 with a mixed combination, so distinct `stream`
/// values yield statistically independent sequences.
pub fn derive_stream(seed: u64, stream: u64) -> Xoshiro256pp {
    // Mix the stream index through one SplitMix64 round before combining so
    // that consecutive indices land in distant states.
    let mut mixer = SplitMix64::new(stream.wrapping_mul(GOLDEN_GAMMA) ^ seed.rotate_left(17));
    Xoshiro256pp::from_splitmix(&mut SplitMix64::new(seed ^ mixer.next_u64()))
}

/// Values drawable uniformly from a generator via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges drawable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer draw in `[0, span)` via 128-bit multiply-shift.
///
/// The modulo bias of the multiply-shift construction is at most
/// `span / 2^64`, far below anything observable in this workspace's spans
/// (node counts, fan-outs), and it keeps the draw a fixed single call to
/// the generator — important for reproducibility across refactors.
fn draw_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(draw_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(draw_below(rng, span + 1) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
range_float!(f32, f64);

/// Convenience draws on top of [`RngCore`], mirroring `rand::Rng`.
///
/// Blanket-implemented for every `RngCore` (sized or not), so it works on
/// concrete generators and on `&mut dyn RngCore` alike.
pub trait Rng: RngCore {
    /// Uniform value of type `T` (floats in `[0, 1)`, full range for
    /// integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and choosing, mirroring `rand::seq::SliceRandom`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle (uniform over permutations).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly-chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Named generator aliases, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard generator (xoshiro256++). The name matches
    /// `rand::rngs::StdRng` so seeded call sites port with an import swap.
    pub type StdRng = super::Xoshiro256pp;
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 implementation.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64(), "deterministic");
        assert_ne!(first, sm.next_u64(), "advances");
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_seeds() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(3..10usize);
            assert!((3..10).contains(&v));
            seen[v - 3] = true;
            let w = rng.gen_range(-2..=2i32);
            assert!((-2..=2).contains(&w));
            let f = rng.gen_range(-1.5..=1.5f32);
            assert!((-1.5..=1.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[(x / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_rng_core_objects_work() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let dy: &mut dyn RngCore = &mut rng;
        let x: f32 = dy.gen();
        assert!((0.0..1.0).contains(&x));
        assert!(dy.gen_range(0..5u32) < 5);
    }

    #[test]
    fn derived_streams_independent_and_deterministic() {
        let a: Vec<u64> = {
            let mut r = derive_stream(1, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = derive_stream(1, 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = derive_stream(1, 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_of_unit_draws_near_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
