//! Synthetic datasets matched to the paper's Table I.
//!
//! The nine public datasets the paper evaluates (Citeseer, Cora, Actor,
//! Chameleon, Pubmed, Co-CS, Co-Physics, OGB-Collab, OGB-PPA) are not
//! redistributable here, so this crate generates synthetic stand-ins with
//! the same node/edge/feature counts and the two properties every finding
//! in the paper depends on:
//!
//! 1. **community structure with degree skew** — a degree-corrected
//!    planted-partition model, so METIS-style partitioning finds
//!    low-cut partitions (making local negative sampling pathological,
//!    Section III-B) while random partitioning destroys locality;
//! 2. **feature homophily** — community-correlated Gaussian features, so
//!    GNN link prediction is actually learnable and accuracy differences
//!    between training strategies are visible.
//!
//! Generation is deterministic per seed. `Scale` profiles shrink node and
//! feature counts proportionally so the full experiment grid runs in
//! CPU-minutes; `Scale::full()` reproduces Table I's sizes exactly.
//!
//! # Examples
//!
//! ```
//! use splpg_datasets::{DatasetSpec, Scale};
//!
//! let spec = DatasetSpec::cora();
//! let data = spec.generate(Scale::tiny(), 42).unwrap();
//! assert!(data.graph.num_nodes() > 100);
//! assert_eq!(data.features.num_rows(), data.graph.num_nodes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod spec;

pub use generator::{generate_community_graph, CommunityGraphParams};
pub use spec::{Dataset, DatasetSpec, Scale};

/// Errors from dataset generation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DatasetError {
    /// Parameters describe an impossible graph.
    InvalidParams(String),
    /// Underlying graph construction failed.
    Graph(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::InvalidParams(msg) => write!(f, "invalid dataset parameters: {msg}"),
            DatasetError::Graph(msg) => write!(f, "graph construction failed: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}
