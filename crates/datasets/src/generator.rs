use splpg_rng::rngs::StdRng;
use splpg_rng::Rng;
use splpg_graph::{FeatureMatrix, Graph, GraphBuilder, NodeId};

use crate::DatasetError;

/// Parameters of the degree-corrected planted-partition generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityGraphParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Target number of distinct undirected edges.
    pub edges: usize,
    /// Number of planted communities.
    pub communities: usize,
    /// Probability that an edge stays inside its community (homophily of
    /// the *structure*; 0.9 gives METIS-friendly graphs).
    pub intra_fraction: f64,
    /// Degree-skew exponent: node propensities follow `rank^{-skew}`
    /// (0 = uniform, 0.5–0.9 = heavy-tailed like citation graphs).
    pub degree_skew: f64,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Feature signal-to-noise: 0 = pure noise, 1 = pure community
    /// centroid.
    pub feature_signal: f32,
}

impl Default for CommunityGraphParams {
    fn default() -> Self {
        CommunityGraphParams {
            nodes: 1000,
            edges: 5000,
            communities: 20,
            intra_fraction: 0.9,
            degree_skew: 0.7,
            feature_dim: 64,
            feature_signal: 0.7,
        }
    }
}

impl CommunityGraphParams {
    fn validate(&self) -> Result<(), DatasetError> {
        if self.nodes < 2 {
            return Err(DatasetError::InvalidParams("need at least 2 nodes".to_string()));
        }
        if self.communities == 0 || self.communities > self.nodes {
            return Err(DatasetError::InvalidParams(format!(
                "communities {} out of range for {} nodes",
                self.communities, self.nodes
            )));
        }
        let max_edges = self.nodes as u64 * (self.nodes as u64 - 1) / 2;
        if self.edges as u64 > max_edges / 2 {
            return Err(DatasetError::InvalidParams(format!(
                "{} edges is too dense for {} nodes",
                self.edges, self.nodes
            )));
        }
        if !(0.0..=1.0).contains(&self.intra_fraction) {
            return Err(DatasetError::InvalidParams("intra_fraction must be in [0,1]".into()));
        }
        Ok(())
    }
}

/// Generates a degree-corrected planted-partition graph with
/// community-correlated features. Returns the graph, features, and the
/// ground-truth community of each node.
///
/// # Errors
///
/// [`DatasetError::InvalidParams`] on impossible parameter combinations.
pub fn generate_community_graph(
    params: &CommunityGraphParams,
    rng: &mut StdRng,
) -> Result<(Graph, FeatureMatrix, Vec<u32>), DatasetError> {
    params.validate()?;
    let n = params.nodes;
    let c = params.communities;

    // Community assignment: contiguous equal-size blocks (randomizing the
    // id order adds nothing — partitioners don't see ids).
    let community: Vec<u32> = (0..n).map(|i| (i * c / n) as u32).collect();
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); c];
    for (i, &com) in community.iter().enumerate() {
        members[com as usize].push(i as NodeId);
    }

    // Degree propensities: Zipf-like weights shuffled within community.
    let weight: Vec<f64> = (0..n)
        .map(|i| {
            let rank = (i % members[community[i] as usize].len().max(1)) + 1;
            (rank as f64).powf(-params.degree_skew)
        })
        .collect();
    // Per-community cumulative weights for O(log m) sampling.
    let tables: Vec<WeightedPicker> = members
        .iter()
        .map(|ms| WeightedPicker::new(ms.iter().map(|&v| weight[v as usize]).collect(), ms))
        .collect();
    let global = WeightedPicker::new(weight.clone(), &(0..n as NodeId).collect::<Vec<_>>());

    let mut b = GraphBuilder::with_capacity(n, params.edges);
    let budget = 60 * params.edges + 10_000;
    let mut attempts = 0usize;
    while b.num_edges() < params.edges {
        attempts += 1;
        if attempts > budget {
            return Err(DatasetError::Graph(format!(
                "edge generation stalled at {} of {} edges",
                b.num_edges(),
                params.edges
            )));
        }
        let (u, v) = if rng.gen_bool(params.intra_fraction) {
            // Intra-community edge: community chosen by size.
            let com = community[rng.gen_range(0..n)] as usize;
            (tables[com].pick(rng), tables[com].pick(rng))
        } else {
            (global.pick(rng), global.pick(rng))
        };
        if u == v {
            continue;
        }
        let _ = b.add_edge(u, v);
    }
    let graph = b.build();

    // Community centroids: random unit-ish directions.
    let f = params.feature_dim;
    let centroids: Vec<Vec<f32>> = (0..c)
        .map(|_| (0..f).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect())
        .collect();
    let signal = params.feature_signal;
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|i| {
            let centroid = &centroids[community[i] as usize];
            (0..f)
                .map(|d| signal * centroid[d] + (1.0 - signal) * (rng.gen::<f32>() * 2.0 - 1.0))
                .collect()
        })
        .collect();
    let features =
        FeatureMatrix::from_rows(rows).map_err(|e| DatasetError::Graph(e.to_string()))?;
    Ok((graph, features, community))
}

/// Cumulative-weight sampler over a fixed node set.
#[derive(Debug)]
struct WeightedPicker {
    cumulative: Vec<f64>,
    nodes: Vec<NodeId>,
}

impl WeightedPicker {
    fn new(weights: Vec<f64>, nodes: &[NodeId]) -> Self {
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w;
            cumulative.push(acc);
        }
        WeightedPicker { cumulative, nodes: nodes.to_vec() }
    }

    fn pick(&self, rng: &mut StdRng) -> NodeId {
        let total = *self
            .cumulative
            .last()
            .expect("invariant: picker is constructed with at least one weight");
        let x = rng.gen::<f64>() * total;
        let idx = self.cumulative.partition_point(|&cw| cw < x);
        self.nodes[idx.min(self.nodes.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn generates_requested_sizes() {
        let params = CommunityGraphParams { nodes: 500, edges: 2000, ..Default::default() };
        let (g, f, com) = generate_community_graph(&params, &mut rng()).unwrap();
        assert_eq!(g.num_nodes(), 500);
        assert_eq!(g.num_edges(), 2000);
        assert_eq!(f.num_rows(), 500);
        assert_eq!(f.dim(), 64);
        assert_eq!(com.len(), 500);
        g.validate().unwrap();
    }

    #[test]
    fn communities_are_balanced() {
        let params = CommunityGraphParams {
            nodes: 400,
            edges: 1200,
            communities: 8,
            ..Default::default()
        };
        let (_, _, com) = generate_community_graph(&params, &mut rng()).unwrap();
        let mut counts = vec![0usize; 8];
        for &c in &com {
            counts[c as usize] += 1;
        }
        assert!(counts.iter().all(|&x| x == 50), "{counts:?}");
    }

    #[test]
    fn edges_mostly_intra_community() {
        let params = CommunityGraphParams {
            nodes: 600,
            edges: 3000,
            communities: 6,
            intra_fraction: 0.95,
            ..Default::default()
        };
        let (g, _, com) = generate_community_graph(&params, &mut rng()).unwrap();
        let intra = g
            .edges()
            .iter()
            .filter(|e| com[e.src as usize] == com[e.dst as usize])
            .count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.85, "intra fraction {frac}");
    }

    #[test]
    fn degrees_are_skewed() {
        let params = CommunityGraphParams {
            nodes: 800,
            edges: 4000,
            degree_skew: 0.8,
            ..Default::default()
        };
        let (g, _, _) = generate_community_graph(&params, &mut rng()).unwrap();
        let mean = g.mean_degree();
        let max = g.max_degree() as f64;
        assert!(max > 4.0 * mean, "max {max} vs mean {mean}: not heavy-tailed");
    }

    #[test]
    fn features_cluster_by_community() {
        let params = CommunityGraphParams {
            nodes: 200,
            edges: 600,
            communities: 4,
            feature_signal: 0.9,
            feature_dim: 16,
            ..Default::default()
        };
        let (_, f, com) = generate_community_graph(&params, &mut rng()).unwrap();
        // Same-community cosine similarity should exceed cross-community.
        let cos = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let mut same = 0.0f64;
        let mut cross = 0.0f64;
        let mut ns = 0;
        let mut nc = 0;
        for i in (0..200).step_by(5) {
            for j in (1..200).step_by(7) {
                if i == j {
                    continue;
                }
                let c = cos(f.row(i as u32), f.row(j as u32)) as f64;
                if com[i] == com[j] {
                    same += c;
                    ns += 1;
                } else {
                    cross += c;
                    nc += 1;
                }
            }
        }
        assert!(same / ns as f64 > cross / nc as f64 + 0.3);
    }

    #[test]
    fn rejects_impossible_params() {
        let too_dense =
            CommunityGraphParams { nodes: 10, edges: 40, ..Default::default() };
        assert!(generate_community_graph(&too_dense, &mut rng()).is_err());
        let no_nodes = CommunityGraphParams { nodes: 1, ..Default::default() };
        assert!(generate_community_graph(&no_nodes, &mut rng()).is_err());
        let bad_frac = CommunityGraphParams {
            nodes: 100,
            edges: 100,
            intra_fraction: 1.5,
            ..Default::default()
        };
        assert!(generate_community_graph(&bad_frac, &mut rng()).is_err());
    }

    #[test]
    fn deterministic_per_seed() {
        let params = CommunityGraphParams { nodes: 100, edges: 300, ..Default::default() };
        let (g1, f1, _) = generate_community_graph(&params, &mut rng()).unwrap();
        let (g2, f2, _) = generate_community_graph(&params, &mut rng()).unwrap();
        assert_eq!(g1, g2);
        assert_eq!(f1, f2);
    }
}
