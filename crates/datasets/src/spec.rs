use splpg_graph::{EdgeSplit, FeatureMatrix, Graph, SplitFractions};

use crate::generator::{generate_community_graph, CommunityGraphParams};
use crate::DatasetError;

/// Size profile applied to a [`DatasetSpec`] before generation.
///
/// `factor` scales node and edge counts; `feature_cap` truncates feature
/// dimensionality (Co-Physics has 8,415 features — at full width the
/// feature matrix alone is >1 GB, far beyond what CPU experiments need to
/// show the paper's *relative* behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier on node and edge counts (1.0 = Table I sizes).
    pub factor: f64,
    /// Maximum feature dimensionality (`usize::MAX` = Table I widths).
    pub feature_cap: usize,
}

impl Scale {
    /// Table I sizes, unmodified.
    pub fn full() -> Self {
        Scale { factor: 1.0, feature_cap: usize::MAX }
    }

    /// Default experiment profile: 20% of nodes/edges, features <= 128.
    pub fn small() -> Self {
        Scale { factor: 0.2, feature_cap: 128 }
    }

    /// Smoke-test profile: 10% of nodes/edges, features <= 32.
    pub fn tiny() -> Self {
        Scale { factor: 0.1, feature_cap: 32 }
    }

    /// Custom profile.
    pub fn new(factor: f64, feature_cap: usize) -> Self {
        Scale { factor, feature_cap }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

/// Static description of one of the paper's nine datasets (Table I) plus
/// the per-dataset hyperparameters of Section V-A.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Table I node count.
    pub nodes: usize,
    /// Table I edge count.
    pub edges: usize,
    /// Table I feature dimensionality.
    pub features: usize,
    /// Planted communities used by the synthetic stand-in (heuristic:
    /// roughly `sqrt(nodes)/2`, floor 4).
    pub communities: usize,
    /// Paper batch size (256 for DGL datasets, 10240 Collab, 51200 PPA).
    pub batch_size: usize,
}

impl DatasetSpec {
    /// Citeseer: 3,327 nodes / 9,228 edges / 3,703 features.
    pub fn citeseer() -> Self {
        Self::new("Citeseer", 3_327, 9_228, 3_703, 256)
    }

    /// Cora: 2,708 / 10,556 / 1,433.
    pub fn cora() -> Self {
        Self::new("Cora", 2_708, 10_556, 1_433, 256)
    }

    /// Actor: 7,600 / 53,411 / 932.
    pub fn actor() -> Self {
        Self::new("Actor", 7_600, 53_411, 932, 256)
    }

    /// Chameleon: 2,227 / 62,792 / 2,325.
    pub fn chameleon() -> Self {
        Self::new("Chameleon", 2_227, 62_792, 2_325, 256)
    }

    /// Pubmed: 19,717 / 88,651 / 500.
    pub fn pubmed() -> Self {
        Self::new("Pubmed", 19_717, 88_651, 500, 256)
    }

    /// Co-CS: 18,333 / 163,788 / 6,805.
    pub fn co_cs() -> Self {
        Self::new("Co-CS", 18_333, 163_788, 6_805, 256)
    }

    /// Co-Physics: 34,493 / 495,924 / 8,415.
    pub fn co_physics() -> Self {
        Self::new("Co-Physics", 34_493, 495_924, 8_415, 256)
    }

    /// OGB-Collab: 235,868 / 1,285,465 / 128.
    pub fn collab() -> Self {
        Self::new("Collab", 235_868, 1_285_465, 128, 10_240)
    }

    /// OGB-PPA: 576,289 / 30,326,273 / 58.
    pub fn ppa() -> Self {
        Self::new("PPA", 576_289, 30_326_273, 58, 51_200)
    }

    fn new(
        name: &'static str,
        nodes: usize,
        edges: usize,
        features: usize,
        batch_size: usize,
    ) -> Self {
        let communities = (((nodes as f64).sqrt() / 2.0) as usize).max(4);
        DatasetSpec { name, nodes, edges, features, communities, batch_size }
    }

    /// All nine datasets in Table I order.
    pub fn table1() -> Vec<DatasetSpec> {
        vec![
            Self::citeseer(),
            Self::cora(),
            Self::actor(),
            Self::chameleon(),
            Self::pubmed(),
            Self::co_cs(),
            Self::co_physics(),
            Self::collab(),
            Self::ppa(),
        ]
    }

    /// The small/medium datasets used for accuracy experiments in the
    /// scaled-down default profile (the first seven, from DGL).
    pub fn dgl_seven() -> Vec<DatasetSpec> {
        Self::table1().into_iter().take(7).collect()
    }

    /// Generates the synthetic stand-in at the given scale, including the
    /// paper's 80/10/10 split with 3x evaluation negatives.
    ///
    /// # Errors
    ///
    /// Propagates generation and split failures.
    pub fn generate(&self, scale: Scale, seed: u64) -> Result<Dataset, DatasetError> {
        let nodes = ((self.nodes as f64 * scale.factor) as usize).max(64);
        // Keep density bounded so tiny profiles of dense graphs (Chameleon,
        // PPA) stay splittable.
        let max_edges = nodes * (nodes - 1) / 4;
        let edges = ((self.edges as f64 * scale.factor) as usize)
            .max(2 * nodes)
            .min(max_edges);
        let feature_dim = self.features.min(scale.feature_cap);
        let params = CommunityGraphParams {
            nodes,
            edges,
            communities: self.communities.min(nodes / 8).max(2),
            intra_fraction: 0.92,
            degree_skew: 0.7,
            feature_dim,
            // Calibrated so link prediction is learnable from features +
            // structure but features alone do not saturate it — the regime
            // where the paper's accuracy gaps between training strategies
            // are visible (see EXPERIMENTS.md).
            feature_signal: 0.5,
        };
        let mut rng = splpg_rng::derive_stream(seed, fxhash(self.name));
        let (graph, features, communities) = generate_community_graph(&params, &mut rng)?;
        let split =
            EdgeSplit::random(&graph, SplitFractions::paper_default(), 3, &mut rng)
                .map_err(|e| DatasetError::Graph(e.to_string()))?;
        Ok(Dataset { name: self.name.to_string(), graph, features, split, communities })
    }
}

/// A generated dataset: graph + features + link-prediction split.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name.
    pub name: String,
    /// The full graph (message passing uses `split.train_graph`).
    pub graph: Graph,
    /// Node features.
    pub features: FeatureMatrix,
    /// Train/valid/test edge split with evaluation negatives.
    pub split: EdgeSplit,
    /// Ground-truth planted community per node (for diagnostics).
    pub communities: Vec<u32>,
}

impl Dataset {
    /// Convenience: the training message-passing graph.
    ///
    /// # Panics
    ///
    /// Never panics for datasets produced by [`DatasetSpec::generate`].
    pub fn train_graph(&self) -> Graph {
        self.split
            .train_graph(self.graph.num_nodes())
            .expect("invariant: split edges were drawn from this graph's node range")
    }
}

/// Tiny deterministic string hash to decorrelate per-dataset seeds.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_counts() {
        let specs = DatasetSpec::table1();
        assert_eq!(specs.len(), 9);
        assert_eq!(specs[0].nodes, 3_327);
        assert_eq!(specs[4].name, "Pubmed");
        assert_eq!(specs[8].edges, 30_326_273);
        assert_eq!(specs[7].batch_size, 10_240);
    }

    #[test]
    fn tiny_generation_works_for_all_dgl_datasets() {
        for spec in DatasetSpec::dgl_seven() {
            let d = spec.generate(Scale::tiny(), 3).unwrap();
            assert!(d.graph.num_nodes() >= 64, "{} too small", d.name);
            assert_eq!(d.features.num_rows(), d.graph.num_nodes());
            assert!(d.split.train.len() > d.split.test.len());
            d.graph.validate().unwrap();
        }
    }

    #[test]
    fn ogb_datasets_generate_at_tiny_scale() {
        for spec in [DatasetSpec::collab(), DatasetSpec::ppa()] {
            let scaled = Scale::new(0.005, 32);
            let d = spec.generate(scaled, 3).unwrap();
            assert!(d.graph.num_nodes() > 500, "{}", d.name);
        }
    }

    #[test]
    fn full_scale_keeps_table1_counts() {
        // Generate the smallest dataset at full scale and verify exact
        // counts.
        let d = DatasetSpec::cora().generate(Scale::full(), 5).unwrap();
        assert_eq!(d.graph.num_nodes(), 2_708);
        assert_eq!(d.graph.num_edges(), 10_556);
        assert_eq!(d.features.dim(), 1_433);
    }

    #[test]
    fn different_datasets_different_graphs() {
        let a = DatasetSpec::citeseer().generate(Scale::tiny(), 7).unwrap();
        let b = DatasetSpec::cora().generate(Scale::tiny(), 7).unwrap();
        assert_ne!(a.graph.num_edges(), b.graph.num_edges());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetSpec::cora().generate(Scale::tiny(), 9).unwrap();
        let b = DatasetSpec::cora().generate(Scale::tiny(), 9).unwrap();
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.split.train, b.split.train);
    }

    #[test]
    fn train_graph_excludes_heldout_edges() {
        let d = DatasetSpec::cora().generate(Scale::tiny(), 1).unwrap();
        let tg = d.train_graph();
        assert_eq!(tg.num_edges(), d.split.train.len());
    }
}
