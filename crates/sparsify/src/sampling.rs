use splpg_rng::Rng;

/// Walker alias table for O(1) sampling from a discrete distribution.
///
/// The sparsifier draws `L = alpha |E|` edges with replacement; building the
/// alias table costs O(|E|) once and each draw is O(1), which is what keeps
/// Table II's running times at "a few seconds for small graphs and a few
/// minutes for large ones".
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_sparsify::AliasTable;
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
/// let draws: Vec<usize> = (0..1000).map(|_| table.sample(&mut rng)).collect();
/// let ones = draws.iter().filter(|&&d| d == 1).count();
/// assert!(ones > 600 && ones < 900); // ~750 expected
/// ```
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
    /// Normalized weights (the exact sampling distribution).
    probabilities: Vec<f64>,
}

impl AliasTable {
    /// Builds an alias table from unnormalized non-negative weights.
    ///
    /// Returns `None` when `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return None;
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return None;
        }
        let n = weights.len();
        let probabilities: Vec<f64> = weights.iter().map(|&w| w / total).collect();
        let mut scaled: Vec<f64> = probabilities.iter().map(|&p| p * n as f64).collect();
        let mut prob = vec![0.0; n];
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while let Some(s) = small.pop() {
            match large.pop() {
                Some(l) => {
                    prob[s] = scaled[s];
                    alias[s] = l;
                    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
                    if scaled[l] < 1.0 {
                        small.push(l);
                    } else {
                        large.push(l);
                    }
                }
                // Numerical leftovers: treat as certain.
                None => prob[s] = 1.0,
            }
        }
        while let Some(l) = large.pop() {
            prob[l] = 1.0;
        }
        Some(AliasTable { prob, alias, probabilities })
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Normalized probability of outcome `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn probability(&self, i: usize) -> f64 {
        self.probabilities[i]
    }

    /// Draws one outcome in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

/// Draws `count` indices with replacement from the distribution given by
/// `weights` (unnormalized). Returns an empty vector if the weights are
/// degenerate (empty / zero-sum / invalid).
pub fn sample_weighted_with_replacement<R: Rng + ?Sized>(
    weights: &[f64],
    count: usize,
    rng: &mut R,
) -> Vec<usize> {
    match AliasTable::new(weights) {
        Some(table) => (0..count).map(|_| table.sample(rng)).collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;

    #[test]
    fn rejects_degenerate_weights() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[-1.0, 2.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN, 1.0]).is_none());
    }

    #[test]
    fn uniform_weights_sample_uniformly() {
        let table = AliasTable::new(&[2.0, 2.0, 2.0, 2.0]).unwrap();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[table.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c} far from 10000");
        }
    }

    #[test]
    fn skewed_weights_respected() {
        let table = AliasTable::new(&[1.0, 9.0]).unwrap();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(6);
        let hits1 = (0..50_000).filter(|_| table.sample(&mut rng) == 1).count();
        let frac = hits1 as f64 / 50_000.0;
        assert!((frac - 0.9).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn probabilities_normalized() {
        let table = AliasTable::new(&[1.0, 3.0]).unwrap();
        assert!((table.probability(0) - 0.25).abs() < 1e-12);
        assert!((table.probability(1) - 0.75).abs() < 1e-12);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    fn with_replacement_count() {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
        let draws = sample_weighted_with_replacement(&[1.0, 1.0], 17, &mut rng);
        assert_eq!(draws.len(), 17);
        assert!(draws.iter().all(|&d| d < 2));
    }

    #[test]
    fn degenerate_with_replacement_empty() {
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(8);
        assert!(sample_weighted_with_replacement(&[], 5, &mut rng).is_empty());
    }

    #[test]
    fn single_outcome_always_sampled() {
        let table = AliasTable::new(&[0.5]).unwrap();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }
}
