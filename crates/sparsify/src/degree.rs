use splpg_rng::Rng;
use splpg_graph::{Graph, GraphBuilder};

use crate::sampling::AliasTable;
use crate::{SparsifyConfig, SparsifyError, Sparsifier};

/// The paper's effective-resistance sparsifier with the degree-based
/// approximation of Theorem 2 (Algorithm 1, lines 4–14).
///
/// For every edge `(u, v)` the sampling score is `1/d_u + 1/d_v`, which
/// bounds the true effective resistance within a factor `[1/2, 1/gamma]`
/// (Lovász). `L` edges are drawn with replacement (probability proportional
/// to score), each retained edge gets weight `1/(L p_(u,v))`, and weights
/// are summed when an edge is drawn multiple times. All nodes are kept.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_sparsify::{DegreeSparsifier, SparsifyConfig, Sparsifier};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
/// let s = DegreeSparsifier::new(SparsifyConfig::with_samples(2)).sparsify(&g, &mut rng)?;
/// assert_eq!(s.num_nodes(), 4);
/// assert!(s.num_edges() <= 2);
/// assert!(s.is_weighted());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct DegreeSparsifier {
    config: SparsifyConfig,
}

impl DegreeSparsifier {
    /// Creates a sparsifier with the given level configuration.
    pub fn new(config: SparsifyConfig) -> Self {
        DegreeSparsifier { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SparsifyConfig {
        &self.config
    }

    /// The degree-based sampling scores `1/d_u + 1/d_v` for every canonical
    /// edge, in edge-list order. Exposed so callers (and the validation
    /// tests) can inspect the distribution (C-INTERMEDIATE).
    pub fn scores(graph: &Graph) -> Vec<f64> {
        graph
            .edges()
            .iter()
            .map(|e| {
                let du = graph.degree(e.src) as f64;
                let dv = graph.degree(e.dst) as f64;
                1.0 / du + 1.0 / dv
            })
            .collect()
    }
}

impl Sparsifier for DegreeSparsifier {
    fn sparsify<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rng: &mut R,
    ) -> Result<Graph, SparsifyError> {
        let m = graph.num_edges();
        if m == 0 {
            return Ok(Graph::empty(graph.num_nodes()));
        }
        let l = self.config.resolve_samples(m)?.max(1);
        let scores = Self::scores(graph);
        let table = AliasTable::new(&scores).ok_or_else(|| {
            SparsifyError::InvalidConfig("degenerate edge score distribution".to_string())
        })?;
        let mut b = GraphBuilder::with_capacity(graph.num_nodes(), l.min(m));
        let edges = graph.edges();
        for _ in 0..l {
            let idx = table.sample(rng);
            let e = edges[idx];
            let p = table.probability(idx);
            let w = 1.0 / (l as f64 * p);
            b.add_weighted_edge(e.src, e.dst, w as f32)
                .expect("edges come from a valid graph");
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::NodeId;

    fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(seed)
    }

    fn ring_with_chords(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                vec![
                    (i as NodeId, ((i + 1) % n) as NodeId),
                    (i as NodeId, ((i + 5) % n) as NodeId),
                ]
            })
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn keeps_all_nodes() {
        let g = ring_with_chords(100);
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.1))
            .sparsify(&g, &mut rng(1))
            .unwrap();
        assert_eq!(s.num_nodes(), g.num_nodes());
    }

    #[test]
    fn removes_roughly_the_right_fraction() {
        // alpha = 0.15 keeps at most 15% of edges (with replacement, fewer
        // distinct survive).
        let g = ring_with_chords(400);
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15))
            .sparsify(&g, &mut rng(2))
            .unwrap();
        let kept = s.num_edges() as f64 / g.num_edges() as f64;
        assert!(kept <= 0.15 + 1e-9, "kept {kept}");
        assert!(kept >= 0.08, "kept {kept} unexpectedly few");
    }

    #[test]
    fn sparse_edges_subset_of_original() {
        let g = ring_with_chords(60);
        let s = DegreeSparsifier::default().sparsify(&g, &mut rng(3)).unwrap();
        for e in s.edges() {
            assert!(g.has_edge(e.src, e.dst), "edge {e:?} not in original");
        }
    }

    #[test]
    fn weights_are_inverse_probability() {
        // With exactly 1 sample, the chosen edge weight must be 1/p.
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let sparsifier = DegreeSparsifier::new(SparsifyConfig::with_samples(1));
        let s = sparsifier.sparsify(&g, &mut rng(4)).unwrap();
        assert_eq!(s.num_edges(), 1);
        let e = s.edges()[0];
        // Both edges have identical score (1/1 + 1/2), so p = 0.5, w = 2.
        assert!((s.edge_weight(e.src, e.dst).unwrap() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn expected_total_weight_matches_original() {
        // E[sum of weights] = |E| for an unweighted graph: each draw
        // contributes exactly 1/(L p) with probability p over edges.
        let g = ring_with_chords(100);
        let mut total = 0.0;
        let runs = 40;
        for seed in 0..runs {
            let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.2))
                .sparsify(&g, &mut rng(seed))
                .unwrap();
            total += s.total_weight();
        }
        let mean = total / runs as f64;
        let expect = g.num_edges() as f64;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean weight {mean} vs expected {expect}"
        );
    }

    #[test]
    fn empty_graph_passthrough() {
        let g = Graph::empty(10);
        let s = DegreeSparsifier::default().sparsify(&g, &mut rng(5)).unwrap();
        assert_eq!(s.num_nodes(), 10);
        assert_eq!(s.num_edges(), 0);
    }

    #[test]
    fn scores_match_degree_formula() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let scores = DegreeSparsifier::scores(&g);
        // Edge (0,1): 1/1 + 1/2 = 1.5; edge (1,2): 1/2 + 1/1 = 1.5.
        assert_eq!(scores, vec![1.5, 1.5]);
    }

    #[test]
    fn low_degree_edges_preferentially_kept() {
        // Two hubs joined by an edge (score 2/21, "unimportant") plus a
        // pendant edge (score 1.5, "important"): the pendant must survive
        // sparsification far more often than the hub-hub edge.
        let mut edges = vec![(0u32, 1u32)]; // hub-hub
        for i in 0..20u32 {
            edges.push((0, 2 + i));
            edges.push((1, 22 + i));
        }
        edges.push((41, 42)); // pendant: deg(41)=2, deg(42)=1 -> score 1.5
        let g = Graph::from_edges(43, &edges).unwrap();
        let (mut pendant_kept, mut hub_kept) = (0, 0);
        for seed in 0..60 {
            let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.3))
                .sparsify(&g, &mut rng(seed))
                .unwrap();
            pendant_kept += s.has_edge(41, 42) as usize;
            hub_kept += s.has_edge(0, 1) as usize;
        }
        assert!(
            pendant_kept > 2 * hub_kept + 5,
            "pendant {pendant_kept} vs hub {hub_kept}"
        );
    }
}
