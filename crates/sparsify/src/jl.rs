use splpg_rng::Rng;
use splpg_graph::{Graph, GraphBuilder};
use splpg_linalg::{CgOptions, ResistanceEstimator};

use crate::sampling::AliasTable;
use crate::{SparsifyConfig, SparsifyError, Sparsifier};

/// Spielman–Srivastava sparsifier driven by the Johnson–Lindenstrauss
/// resistance sketch: `k` Laplacian solves estimate *all* edge resistances
/// at once, then edges are sampled proportionally to the estimates.
///
/// Sits between [`crate::ExactSparsifier`] (one solve per distinct
/// endpoint) and [`crate::DegreeSparsifier`] (no solves, the paper's
/// choice): the `ablation_sparsifiers` bench compares all three. The
/// `k` solves run through the blocked multi-RHS engine, and
/// disconnected inputs are supported (per-component solves; edge
/// estimates are always intra-component).
#[derive(Debug, Clone)]
pub struct JlSparsifier {
    config: SparsifyConfig,
    projections: usize,
}

impl JlSparsifier {
    /// Creates a JL sparsifier using `projections` random projections
    /// (Laplacian solves).
    ///
    /// # Panics
    ///
    /// Panics if `projections == 0`.
    pub fn new(config: SparsifyConfig, projections: usize) -> Self {
        assert!(projections > 0, "at least one projection required");
        JlSparsifier { config, projections }
    }

    /// Number of random projections used.
    pub fn projections(&self) -> usize {
        self.projections
    }
}

impl Sparsifier for JlSparsifier {
    fn sparsify<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rng: &mut R,
    ) -> Result<Graph, SparsifyError> {
        let m = graph.num_edges();
        if m == 0 {
            return Ok(Graph::empty(graph.num_nodes()));
        }
        let l = self.config.resolve_samples(m)?.max(1);
        let estimator =
            ResistanceEstimator::build(graph, self.projections, CgOptions::default(), rng)
                .map_err(|e| SparsifyError::Resistance(e.to_string()))?;
        let resistances = estimator.edge_resistances(graph);
        let table = AliasTable::new(&resistances).ok_or_else(|| {
            SparsifyError::Resistance("degenerate resistance estimates".to_string())
        })?;
        let edges = graph.edges();
        let mut b = GraphBuilder::with_capacity(graph.num_nodes(), l.min(m));
        for _ in 0..l {
            let idx = table.sample(rng);
            let e = edges[idx];
            let w = 1.0 / (l as f64 * table.probability(idx));
            b.add_weighted_edge(e.src, e.dst, w as f32).expect("edges from a valid graph");
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::NodeId;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(29)
    }

    fn dense_ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                vec![(i as NodeId, ((i + 1) % n) as NodeId), (i as NodeId, ((i + 3) % n) as NodeId)]
            })
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn keeps_nodes_and_respects_budget() {
        let g = dense_ring(30);
        let s = JlSparsifier::new(SparsifyConfig::with_alpha(0.3), 64)
            .sparsify(&g, &mut rng())
            .unwrap();
        assert_eq!(s.num_nodes(), 30);
        assert!(s.num_edges() <= (0.3 * g.num_edges() as f64).round() as usize);
        for e in s.edges() {
            assert!(g.has_edge(e.src, e.dst));
        }
    }

    #[test]
    fn sampling_distribution_close_to_exact() {
        // JL-based sampling probabilities should correlate with the exact
        // sparsifier's: compare total weight preservation.
        let g = dense_ring(24);
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(seed);
            let s = JlSparsifier::new(SparsifyConfig::with_alpha(0.4), 128)
                .sparsify(&g, &mut r)
                .unwrap();
            total += s.total_weight();
        }
        let mean = total / runs as f64;
        let expect = g.num_edges() as f64;
        assert!((mean - expect).abs() / expect < 0.1, "mean {mean} vs {expect}");
    }

    #[test]
    fn disconnected_graph_supported() {
        // Partition-local graphs are never connected; the JL path must
        // still produce a valid sparsifier from per-component solves.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let s = JlSparsifier::new(SparsifyConfig::with_samples(4), 16)
            .sparsify(&g, &mut rng())
            .unwrap();
        assert_eq!(s.num_nodes(), 4);
        for e in s.edges() {
            assert!(g.has_edge(e.src, e.dst));
        }
    }

    #[test]
    #[should_panic(expected = "at least one projection")]
    fn zero_projections_panics() {
        let _ = JlSparsifier::new(SparsifyConfig::default(), 0);
    }
}
