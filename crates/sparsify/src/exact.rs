use splpg_rng::Rng;
use splpg_graph::{Graph, GraphBuilder};
use splpg_linalg::{CgOptions, EngineOptions, SolverEngine};

use crate::sampling::AliasTable;
use crate::{SparsifyConfig, SparsifyError, Sparsifier};

/// Spielman–Srivastava sparsifier using *exact* effective resistances
/// (Eq. (3) of the paper), computed through the Jacobi-preconditioned
/// multi-RHS solver engine with **per-node solve reuse**: one solve per
/// distinct edge endpoint (`<= n`) instead of one per edge (`m`), each
/// resistance recovered as `R(u,v) = x_u[u] - x_u[v] - x_v[u] + x_v[v]`.
///
/// It exists to validate [`crate::DegreeSparsifier`] (the ablation bench
/// `sparsify_exact_vs_approx` compares the two) and to demonstrate the
/// spectral guarantee of Theorem 1 in tests.
///
/// Disconnected inputs are fine (solves project per connected
/// component; every edge's endpoints trivially share a component) — the
/// shape `dist::setup` feeds it, since partition-local subgraphs keep
/// all global node ids.
#[derive(Debug, Clone, Default)]
pub struct ExactSparsifier {
    config: SparsifyConfig,
}

impl ExactSparsifier {
    /// CG tolerance for the exact path: 1e-8, matching the per-edge
    /// reference's `CgOptions::default()` so the two paths are directly
    /// comparable; the four-term per-node recovery still lands within
    /// ~1e-8 relative error of that reference (see `sparsify_bench`).
    const TOLERANCE: f64 = 1e-8;

    /// Creates an exact-resistance sparsifier.
    pub fn new(config: SparsifyConfig) -> Self {
        ExactSparsifier { config }
    }

    /// Solver options the exact path uses (shared with the
    /// `sparsify_bench` gate so it measures the same configuration).
    pub fn engine_options() -> EngineOptions {
        EngineOptions::with_cg(CgOptions { tolerance: Self::TOLERANCE, ..CgOptions::default() })
    }

    /// Exact effective resistances for every canonical edge, in edge-list
    /// order, via one blocked multi-RHS solve sweep per
    /// [`EngineOptions::block_width`] distinct endpoints.
    ///
    /// # Errors
    ///
    /// [`SparsifyError::Resistance`] if CG fails to converge or breaks
    /// down.
    pub fn resistances(graph: &Graph) -> Result<Vec<f64>, SparsifyError> {
        let pairs: Vec<_> = graph.edges().iter().map(|e| (e.src, e.dst)).collect();
        let mut engine = SolverEngine::new(graph, Self::engine_options());
        engine
            .edge_resistances(&pairs)
            .map_err(|err| SparsifyError::Resistance(err.to_string()))
    }
}

impl Sparsifier for ExactSparsifier {
    fn sparsify<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rng: &mut R,
    ) -> Result<Graph, SparsifyError> {
        let m = graph.num_edges();
        if m == 0 {
            return Ok(Graph::empty(graph.num_nodes()));
        }
        let l = self.config.resolve_samples(m)?.max(1);
        let resistances = Self::resistances(graph)?;
        let table = AliasTable::new(&resistances).ok_or_else(|| {
            SparsifyError::Resistance("degenerate resistance distribution".to_string())
        })?;
        let mut b = GraphBuilder::with_capacity(graph.num_nodes(), l.min(m));
        let edges = graph.edges();
        for _ in 0..l {
            let idx = table.sample(rng);
            let e = edges[idx];
            let p = table.probability(idx);
            let w = 1.0 / (l as f64 * p);
            b.add_weighted_edge(e.src, e.dst, w as f32)
                .expect("edges come from a valid graph");
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::NodeId;
    use splpg_linalg::quadratic_form;

    fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(seed)
    }

    fn dense_ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                vec![
                    (i as NodeId, ((i + 1) % n) as NodeId),
                    (i as NodeId, ((i + 2) % n) as NodeId),
                    (i as NodeId, ((i + 3) % n) as NodeId),
                ]
            })
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn resistance_distribution_valid() {
        let g = dense_ring(20);
        let r = ExactSparsifier::resistances(&g).unwrap();
        assert_eq!(r.len(), g.num_edges());
        assert!(r.iter().all(|&x| x > 0.0 && x <= 1.0 + 1e-9));
    }

    #[test]
    fn disconnected_graph_supported() {
        // Partition-local graphs are never connected; per-component
        // solves make every edge's resistance well-defined anyway.
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let r = ExactSparsifier::resistances(&g).unwrap();
        assert_eq!(r.len(), 2);
        for ri in r {
            assert!((ri - 1.0).abs() < 1e-6, "isolated edge resistance {ri}");
        }
    }

    #[test]
    fn theorem1_quadratic_form_preserved() {
        // With a generous sample budget the sparsifier must approximately
        // preserve x^T L x (Theorem 1) for random test vectors.
        let g = dense_ring(30);
        // Oversample: L = 8 |E| keeps the estimate tight.
        let s = ExactSparsifier::new(SparsifyConfig::with_samples(8 * g.num_edges()))
            .sparsify(&g, &mut rng(1))
            .unwrap();
        let mut r = rng(2);
        for _ in 0..5 {
            let x: Vec<f64> = (0..g.num_nodes()).map(|_| r.gen::<f64>() - 0.5).collect();
            let qf = quadratic_form(&g, &x).unwrap();
            let qf_s = quadratic_form(&s, &x).unwrap();
            let rel = (qf_s - qf).abs() / qf.max(1e-12);
            assert!(rel < 0.35, "quadratic form off by {rel}");
        }
    }

    #[test]
    fn approx_scores_bound_exact_resistances() {
        // Theorem 2 bracket: base/2 <= r <= base/gamma for every edge.
        let g = dense_ring(16);
        let r = ExactSparsifier::resistances(&g).unwrap();
        let scores = crate::DegreeSparsifier::scores(&g);
        let gamma =
            splpg_linalg::lambda2_normalized(&g, splpg_linalg::PowerIterOptions::default())
                .unwrap();
        for (ri, base) in r.iter().zip(&scores) {
            assert!(*ri >= base / 2.0 - 1e-9, "lower bound violated");
            assert!(*ri <= base / gamma + 1e-9, "upper bound violated");
        }
    }

    #[test]
    fn keeps_all_nodes_and_subset_edges() {
        let g = dense_ring(24);
        let s = ExactSparsifier::new(SparsifyConfig::with_alpha(0.3))
            .sparsify(&g, &mut rng(3))
            .unwrap();
        assert_eq!(s.num_nodes(), g.num_nodes());
        for e in s.edges() {
            assert!(g.has_edge(e.src, e.dst));
        }
    }
}
