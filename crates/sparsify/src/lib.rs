//! Effective-resistance graph sparsification (Algorithm 1, lines 4–14 of
//! the SpLPG paper).
//!
//! SpLPG sparsifies every partitioned subgraph so that workers can share
//! *cheap* copies of remote partitions for drawing global negative samples.
//! The sampler follows Spielman–Srivastava (Theorem 1): sample `L` edges
//! with replacement with probability proportional to effective resistance,
//! assign weight `1/(L p)` to each sampled edge and sum weights when an edge
//! is drawn more than once. Exact effective resistances are expensive
//! (pseudo-inverse of the Laplacian), so the paper uses the Lovász bound of
//! Theorem 2 — `r_(u,v)` is within `[1/2, 1/gamma]` of `1/d_u + 1/d_v` — and
//! samples proportionally to that degree-based score.
//!
//! Two samplers are provided:
//!
//! * [`DegreeSparsifier`] — the paper's approximation (`p ∝ 1/d_u + 1/d_v`);
//! * [`ExactSparsifier`] — samples proportionally to the *exact* effective
//!   resistance computed with conjugate gradient (small graphs only; used
//!   to validate the approximation).
//!
//! # Examples
//!
//! ```
//! use splpg_rng::SeedableRng;
//! use splpg_graph::Graph;
//! use splpg_sparsify::{DegreeSparsifier, SparsifyConfig, Sparsifier};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let edges: Vec<(u32, u32)> = (0..200).flat_map(|i| {
//!     [(i, (i + 1) % 200), (i, (i + 7) % 200)]
//! }).collect();
//! let g = Graph::from_edges(200, &edges)?;
//! let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
//! // alpha = 0.15: the paper's default, removing ~85% of edges.
//! let sparse = DegreeSparsifier::new(SparsifyConfig::with_alpha(0.15))
//!     .sparsify(&g, &mut rng)?;
//! assert!(sparse.num_edges() < g.num_edges() / 4);
//! assert_eq!(sparse.num_nodes(), g.num_nodes()); // all nodes retained
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod degree;
mod exact;
mod jl;
mod sampling;

pub use baselines::{SpanningForestSparsifier, UniformSparsifier};
pub use degree::DegreeSparsifier;
pub use exact::ExactSparsifier;
pub use jl::JlSparsifier;
pub use sampling::{sample_weighted_with_replacement, AliasTable};

use splpg_rng::Rng;
use splpg_graph::Graph;

/// Errors from sparsification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparsifyError {
    /// The configuration is invalid (e.g. non-positive alpha).
    InvalidConfig(String),
    /// The exact sparsifier failed to compute effective resistances.
    Resistance(String),
}

impl std::fmt::Display for SparsifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparsifyError::InvalidConfig(msg) => write!(f, "invalid sparsify config: {msg}"),
            SparsifyError::Resistance(msg) => {
                write!(f, "effective resistance computation failed: {msg}")
            }
        }
    }
}

impl std::error::Error for SparsifyError {}

/// Sparsification level configuration.
///
/// The paper parameterizes the number of samples as `L = alpha * |E|` so the
/// level is consistent across datasets; `alpha = 0.15` (the default) removes
/// roughly 85% of edges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparsifyConfig {
    /// Number of with-replacement samples as a fraction of `|E|`.
    pub alpha: f64,
    /// Optional absolute override for `L` (takes precedence over `alpha`).
    pub num_samples: Option<usize>,
}

impl SparsifyConfig {
    /// Config sampling `alpha * |E|` edges.
    pub fn with_alpha(alpha: f64) -> Self {
        SparsifyConfig { alpha, num_samples: None }
    }

    /// Config sampling exactly `num_samples` edges.
    pub fn with_samples(num_samples: usize) -> Self {
        SparsifyConfig { alpha: 0.0, num_samples: Some(num_samples) }
    }

    /// Resolves the sample budget `L^i` for a graph with `num_edges` edges.
    ///
    /// # Errors
    ///
    /// [`SparsifyError::InvalidConfig`] if neither a positive `alpha` nor an
    /// explicit sample count is supplied.
    pub fn resolve_samples(&self, num_edges: usize) -> Result<usize, SparsifyError> {
        match self.num_samples {
            Some(l) => Ok(l),
            None if self.alpha > 0.0 => Ok(((num_edges as f64) * self.alpha).round() as usize),
            None => Err(SparsifyError::InvalidConfig(format!(
                "alpha must be positive, got {}",
                self.alpha
            ))),
        }
    }
}

impl Default for SparsifyConfig {
    /// The paper's default, `alpha = 0.15`.
    fn default() -> Self {
        SparsifyConfig::with_alpha(0.15)
    }
}

/// A graph sparsification algorithm.
///
/// Implementations keep **all nodes** and return a weighted graph whose
/// edges are a (multi)sample of the input's.
pub trait Sparsifier {
    /// Produces the sparsified graph.
    ///
    /// # Errors
    ///
    /// Implementation-specific; see [`DegreeSparsifier`] and
    /// [`ExactSparsifier`].
    fn sparsify<R: Rng + ?Sized>(&self, graph: &Graph, rng: &mut R)
        -> Result<Graph, SparsifyError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_resolves_alpha() {
        let c = SparsifyConfig::with_alpha(0.15);
        assert_eq!(c.resolve_samples(1000).unwrap(), 150);
    }

    #[test]
    fn config_explicit_samples_take_precedence() {
        let c = SparsifyConfig::with_samples(42);
        assert_eq!(c.resolve_samples(1000).unwrap(), 42);
    }

    #[test]
    fn config_rejects_nonpositive_alpha() {
        assert!(SparsifyConfig::with_alpha(0.0).resolve_samples(10).is_err());
        assert!(SparsifyConfig::with_alpha(-1.0).resolve_samples(10).is_err());
    }

    #[test]
    fn default_is_paper_alpha() {
        assert_eq!(SparsifyConfig::default().alpha, 0.15);
    }
}
