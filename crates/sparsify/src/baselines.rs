//! Baseline sparsifiers for ablation against the effective-resistance
//! sampler.
//!
//! The paper motivates its sparsifier with the Spielman–Srivastava
//! guarantee; these alternatives quantify what that choice buys:
//!
//! * [`UniformSparsifier`] — edges sampled uniformly (no importance);
//! * [`SpanningForestSparsifier`] — keeps a BFS spanning forest (so the
//!   sparsified graph preserves connectivity exactly, which uniform and
//!   ER sampling do not guarantee) and spends the remaining budget
//!   uniformly on non-forest edges.
//!
//! The `ablation_sparsifiers` bench and `splpg-dist` experiments can swap
//! these into SpLPG's pipeline through the common [`Sparsifier`] trait.

use splpg_rng::seq::SliceRandom;
use splpg_rng::Rng;
use splpg_graph::{Graph, GraphBuilder, NodeId};

use crate::{SparsifyConfig, SparsifyError, Sparsifier};

/// Uniform-random edge sampler with replacement: every edge has equal
/// probability `1/|E|`, weights `|E| / L` per draw (the importance-sampling
/// weight specialized to the uniform distribution, summed on repeats).
#[derive(Debug, Clone, Default)]
pub struct UniformSparsifier {
    config: SparsifyConfig,
}

impl UniformSparsifier {
    /// Creates a uniform sparsifier.
    pub fn new(config: SparsifyConfig) -> Self {
        UniformSparsifier { config }
    }
}

impl Sparsifier for UniformSparsifier {
    fn sparsify<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rng: &mut R,
    ) -> Result<Graph, SparsifyError> {
        let m = graph.num_edges();
        if m == 0 {
            return Ok(Graph::empty(graph.num_nodes()));
        }
        let l = self.config.resolve_samples(m)?.max(1);
        let w = m as f32 / l as f32;
        let edges = graph.edges();
        let mut b = GraphBuilder::with_capacity(graph.num_nodes(), l.min(m));
        for _ in 0..l {
            let e = edges[rng.gen_range(0..m)];
            b.add_weighted_edge(e.src, e.dst, w).expect("edges from a valid graph");
        }
        Ok(b.build())
    }
}

/// Connectivity-preserving sparsifier: a BFS spanning forest is always
/// kept (weight 1), and the remaining budget is spent on a uniform sample
/// of the non-forest edges.
///
/// Guarantees that sparsification never disconnects a connected partition
/// — the failure mode that makes negative-destination neighborhoods empty
/// under aggressive ER/uniform sampling.
#[derive(Debug, Clone, Default)]
pub struct SpanningForestSparsifier {
    config: SparsifyConfig,
}

impl SpanningForestSparsifier {
    /// Creates a spanning-forest sparsifier.
    pub fn new(config: SparsifyConfig) -> Self {
        SpanningForestSparsifier { config }
    }

    /// The BFS spanning forest of `graph` as canonical edges.
    pub fn forest_edges(graph: &Graph) -> Vec<(NodeId, NodeId)> {
        let n = graph.num_nodes();
        let mut visited = vec![false; n];
        let mut forest = Vec::with_capacity(n.saturating_sub(1));
        let mut queue = std::collections::VecDeque::new();
        for start in 0..n {
            if visited[start] {
                continue;
            }
            visited[start] = true;
            queue.push_back(start as NodeId);
            while let Some(v) = queue.pop_front() {
                for &u in graph.neighbors(v) {
                    if !visited[u as usize] {
                        visited[u as usize] = true;
                        forest.push((v, u));
                        queue.push_back(u);
                    }
                }
            }
        }
        forest
    }
}

impl Sparsifier for SpanningForestSparsifier {
    fn sparsify<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        rng: &mut R,
    ) -> Result<Graph, SparsifyError> {
        let m = graph.num_edges();
        if m == 0 {
            return Ok(Graph::empty(graph.num_nodes()));
        }
        let l = self.config.resolve_samples(m)?.max(1);
        let forest = Self::forest_edges(graph);
        let mut b = GraphBuilder::with_capacity(graph.num_nodes(), l.max(forest.len()));
        for &(u, v) in &forest {
            b.add_weighted_edge(u, v, 1.0).expect("forest edges valid");
        }
        // Remaining budget on non-forest edges, sampled without
        // replacement for simplicity (weights 1: this baseline trades the
        // spectral guarantee for connectivity).
        let budget = l.saturating_sub(forest.len());
        if budget > 0 {
            let mut rest: Vec<_> = graph
                .edges()
                .iter()
                .filter(|e| !b.contains_edge(e.src, e.dst))
                .collect();
            rest.shuffle(rng);
            for e in rest.into_iter().take(budget) {
                b.add_weighted_edge(e.src, e.dst, 1.0).expect("edges valid");
            }
        }
        Ok(b.build())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::connected_components;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(17)
    }

    fn dense_ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                vec![(i as NodeId, ((i + 1) % n) as NodeId), (i as NodeId, ((i + 4) % n) as NodeId)]
            })
            .collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn uniform_keeps_all_nodes_and_subsets_edges() {
        let g = dense_ring(60);
        let s = UniformSparsifier::new(SparsifyConfig::with_alpha(0.2))
            .sparsify(&g, &mut rng())
            .unwrap();
        assert_eq!(s.num_nodes(), g.num_nodes());
        assert!(s.num_edges() <= (0.2 * g.num_edges() as f64).round() as usize);
        for e in s.edges() {
            assert!(g.has_edge(e.src, e.dst));
        }
    }

    #[test]
    fn uniform_expected_weight_preserved() {
        let g = dense_ring(40);
        let mut total = 0.0;
        for seed in 0..30 {
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(seed);
            let s = UniformSparsifier::new(SparsifyConfig::with_alpha(0.25))
                .sparsify(&g, &mut r)
                .unwrap();
            total += s.total_weight();
        }
        let mean = total / 30.0;
        let expect = g.num_edges() as f64;
        assert!((mean - expect).abs() / expect < 0.05, "mean {mean} vs {expect}");
    }

    #[test]
    fn forest_spans_connected_graph() {
        let g = dense_ring(30);
        let forest = SpanningForestSparsifier::forest_edges(&g);
        assert_eq!(forest.len(), 29);
    }

    #[test]
    fn forest_handles_disconnected_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let forest = SpanningForestSparsifier::forest_edges(&g);
        // 3-node component (2 edges) + 2-node component (1 edge).
        assert_eq!(forest.len(), 3);
    }

    #[test]
    fn spanning_forest_sparsifier_preserves_connectivity() {
        let g = dense_ring(50);
        // Very aggressive budget: bare forest.
        let s = SpanningForestSparsifier::new(SparsifyConfig::with_samples(10))
            .sparsify(&g, &mut rng())
            .unwrap();
        let (_, comps) = connected_components(&s);
        assert_eq!(comps, 1, "forest sparsifier must keep the graph connected");
        // ER sampling at the same budget essentially always disconnects it.
        let er = crate::DegreeSparsifier::new(SparsifyConfig::with_samples(10))
            .sparsify(&g, &mut rng())
            .unwrap();
        let (_, er_comps) = connected_components(&er);
        assert!(er_comps > 1);
    }

    #[test]
    fn spanning_forest_budget_grows_edges() {
        let g = dense_ring(50);
        let small = SpanningForestSparsifier::new(SparsifyConfig::with_samples(49))
            .sparsify(&g, &mut rng())
            .unwrap();
        let big = SpanningForestSparsifier::new(SparsifyConfig::with_samples(80))
            .sparsify(&g, &mut rng())
            .unwrap();
        assert!(big.num_edges() > small.num_edges());
        assert!(big.num_edges() <= 80);
    }
}
