//! Property-style tests on sparsifier invariants, run as seeded loops.

use splpg_graph::{Graph, NodeId};
use splpg_rng::{Rng, SeedableRng};
use splpg_sparsify::{AliasTable, DegreeSparsifier, SparsifyConfig, Sparsifier};

const CASES: u64 = 48;

fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(seed)
}

/// A random simple graph with 4..50 nodes and 1..5n edges.
fn rand_graph(r: &mut splpg_rng::rngs::StdRng) -> Graph {
    let n = r.gen_range(4usize..50);
    let m = r.gen_range(1..5 * n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    while edges.len() < m {
        let u = r.gen_range(0..n as NodeId);
        let v = r.gen_range(0..n as NodeId);
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

#[test]
fn sparsified_nodes_preserved() {
    for case in 0..CASES {
        let mut r = rng(case);
        let g = rand_graph(&mut r);
        let alpha = r.gen_range(0.05f64..0.9);
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(alpha))
            .sparsify(&g, &mut r)
            .unwrap();
        assert_eq!(s.num_nodes(), g.num_nodes(), "case {case}");
        s.validate().unwrap();
    }
}

#[test]
fn sparsified_edges_are_subset() {
    for case in 0..CASES {
        let mut r = rng(1000 + case);
        let g = rand_graph(&mut r);
        let s = DegreeSparsifier::default().sparsify(&g, &mut r).unwrap();
        for e in s.edges() {
            assert!(g.has_edge(e.src, e.dst), "case {case}");
        }
    }
}

#[test]
fn edge_budget_respected() {
    for case in 0..CASES {
        let mut r = rng(2000 + case);
        let g = rand_graph(&mut r);
        let l = r.gen_range(1usize..40);
        let s = DegreeSparsifier::new(SparsifyConfig::with_samples(l))
            .sparsify(&g, &mut r)
            .unwrap();
        // At most L distinct edges can be drawn in L with-replacement draws.
        assert!(s.num_edges() <= l, "case {case}");
    }
}

#[test]
fn all_weights_positive() {
    for case in 0..CASES {
        let mut r = rng(3000 + case);
        let g = rand_graph(&mut r);
        let s = DegreeSparsifier::default().sparsify(&g, &mut r).unwrap();
        for e in s.edges() {
            let w = s.edge_weight(e.src, e.dst).unwrap();
            assert!(w > 0.0 && w.is_finite(), "case {case}");
        }
    }
}

#[test]
fn alias_table_probabilities_sum_to_one() {
    for case in 0..CASES {
        let mut r = rng(4000 + case);
        let len = r.gen_range(1usize..64);
        let ws: Vec<f64> = (0..len).map(|_| r.gen_range(0.01f64..100.0)).collect();
        let t = AliasTable::new(&ws).unwrap();
        let sum: f64 = (0..t.len()).map(|i| t.probability(i)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "case {case}: sum {sum}");
    }
}

#[test]
fn alias_table_samples_in_range() {
    for case in 0..CASES {
        let mut r = rng(5000 + case);
        let len = r.gen_range(2usize..32);
        // Mix zero and positive weights; keep at least one positive.
        let mut ws: Vec<f64> = (0..len)
            .map(|_| if r.gen_bool(0.25) { 0.0 } else { r.gen_range(0.01f64..10.0) })
            .collect();
        if ws.iter().sum::<f64>() == 0.0 {
            ws[0] = 1.0;
        }
        let t = AliasTable::new(&ws).unwrap();
        for _ in 0..200 {
            let i = t.sample(&mut r);
            assert!(i < ws.len(), "case {case}");
            // Zero-weight outcomes must never be drawn.
            assert!(ws[i] > 0.0, "case {case}: sampled zero-weight outcome {i}");
        }
    }
}
