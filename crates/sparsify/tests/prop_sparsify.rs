//! Property-based tests on sparsifier invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use splpg_graph::{Graph, NodeId};
use splpg_sparsify::{AliasTable, DegreeSparsifier, SparsifyConfig, Sparsifier};

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (4usize..50).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId).prop_filter("no loops", |(u, v)| u != v),
            1..5 * n,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparsified_nodes_preserved((n, edges) in arb_graph(), seed in 0u64..1000, alpha in 0.05f64..0.9) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = DegreeSparsifier::new(SparsifyConfig::with_alpha(alpha))
            .sparsify(&g, &mut rng)
            .unwrap();
        prop_assert_eq!(s.num_nodes(), g.num_nodes());
        s.validate().unwrap();
    }

    #[test]
    fn sparsified_edges_are_subset((n, edges) in arb_graph(), seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = DegreeSparsifier::default().sparsify(&g, &mut rng).unwrap();
        for e in s.edges() {
            prop_assert!(g.has_edge(e.src, e.dst));
        }
    }

    #[test]
    fn edge_budget_respected((n, edges) in arb_graph(), seed in 0u64..1000, l in 1usize..40) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = DegreeSparsifier::new(SparsifyConfig::with_samples(l))
            .sparsify(&g, &mut rng)
            .unwrap();
        // At most L distinct edges can be drawn in L with-replacement draws.
        prop_assert!(s.num_edges() <= l);
    }

    #[test]
    fn all_weights_positive((n, edges) in arb_graph(), seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let s = DegreeSparsifier::default().sparsify(&g, &mut rng).unwrap();
        for e in s.edges() {
            let w = s.edge_weight(e.src, e.dst).unwrap();
            prop_assert!(w > 0.0 && w.is_finite());
        }
    }

    #[test]
    fn alias_table_probabilities_sum_to_one(ws in proptest::collection::vec(0.01f64..100.0, 1..64)) {
        let t = AliasTable::new(&ws).unwrap();
        let sum: f64 = (0..t.len()).map(|i| t.probability(i)).sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn alias_table_samples_in_range(ws in proptest::collection::vec(0.0f64..10.0, 2..32), seed in 0u64..1000) {
        prop_assume!(ws.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&ws).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let i = t.sample(&mut rng);
            prop_assert!(i < ws.len());
            // Zero-weight outcomes must never be drawn.
            prop_assert!(ws[i] > 0.0, "sampled zero-weight outcome {}", i);
        }
    }
}
