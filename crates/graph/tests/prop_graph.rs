//! Property-based tests on the CSR graph invariants.

use proptest::prelude::*;
use splpg_graph::{read_graph, write_graph, Graph, GraphBuilder, InducedSubgraph, NodeId};

/// Strategy: a random simple graph as (num_nodes, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId).prop_filter("no loops", |(u, v)| u != v),
            0..120,
        );
        (Just(n), edges)
    })
}

proptest! {
    #[test]
    fn built_graph_always_validates((n, edges) in arb_graph()) {
        let g = Graph::from_edges(n, &edges).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn handshake_lemma((n, edges) in arb_graph()) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let degree_sum: usize = (0..n as NodeId).map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges());
    }

    #[test]
    fn has_edge_matches_edge_list((n, edges) in arb_graph()) {
        let g = Graph::from_edges(n, &edges).unwrap();
        for e in g.edges() {
            prop_assert!(g.has_edge(e.src, e.dst));
            prop_assert!(g.has_edge(e.dst, e.src));
        }
    }

    #[test]
    fn serialization_round_trips((n, edges) in arb_graph()) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn induced_subgraph_edges_subset((n, edges) in arb_graph(), pick in proptest::collection::vec(any::<prop::sample::Index>(), 1..10)) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let nodes: Vec<NodeId> = pick.iter().map(|i| i.index(n) as NodeId).collect();
        let sub = InducedSubgraph::extract(&g, &nodes);
        sub.graph.validate().unwrap();
        for e in sub.graph.edges() {
            let gu = sub.mapping.to_global(e.src);
            let gv = sub.mapping.to_global(e.dst);
            prop_assert!(g.has_edge(gu, gv));
        }
    }

    #[test]
    fn halo_preserves_core_degrees((n, edges) in arb_graph(), pick in proptest::collection::vec(any::<prop::sample::Index>(), 1..8)) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut core: Vec<NodeId> = pick.iter().map(|i| i.index(n) as NodeId).collect();
        core.sort_unstable();
        core.dedup();
        let sub = InducedSubgraph::extract_with_halo(&g, &core);
        sub.graph.validate().unwrap();
        for &c in &core {
            let local = sub.mapping.to_local(c).unwrap();
            prop_assert_eq!(sub.graph.degree(local), g.degree(c),
                "core node {} lost neighbors", c);
        }
    }

    #[test]
    fn weighted_duplicate_accumulation(
        n in 2usize..20,
        reps in 1usize..6,
        w in 0.01f32..10.0,
    ) {
        let mut b = GraphBuilder::new(n);
        for _ in 0..reps {
            b.add_weighted_edge(0, 1, w).unwrap();
        }
        let g = b.build();
        let got = g.edge_weight(0, 1).unwrap();
        prop_assert!((got - w * reps as f32).abs() < 1e-4 * reps as f32);
    }
}
