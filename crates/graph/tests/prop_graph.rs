//! Property-style tests on the CSR graph invariants, run as seeded loops.
//!
//! Each case draws a random simple graph from a generator seeded by the
//! loop index, so failures reproduce exactly from the printed case number.

use splpg_graph::{read_graph, write_graph, Graph, GraphBuilder, InducedSubgraph, NodeId};
use splpg_rng::{Rng, SeedableRng};

const CASES: u64 = 64;

fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(seed)
}

/// A random simple graph as (num_nodes, edge list): 2..40 nodes, up to 120
/// candidate edges with self-loops filtered out.
fn rand_graph(r: &mut splpg_rng::rngs::StdRng) -> (usize, Vec<(NodeId, NodeId)>) {
    let n = r.gen_range(2usize..40);
    let m = r.gen_range(0usize..120);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = r.gen_range(0..n as NodeId);
        let v = r.gen_range(0..n as NodeId);
        if u != v {
            edges.push((u, v));
        }
    }
    (n, edges)
}

#[test]
fn built_graph_always_validates() {
    for case in 0..CASES {
        let (n, edges) = rand_graph(&mut rng(case));
        let g = Graph::from_edges(n, &edges).unwrap();
        g.validate().unwrap();
    }
}

#[test]
fn handshake_lemma() {
    for case in 0..CASES {
        let (n, edges) = rand_graph(&mut rng(1000 + case));
        let g = Graph::from_edges(n, &edges).unwrap();
        let degree_sum: usize = (0..n as NodeId).map(|v| g.degree(v)).sum();
        assert_eq!(degree_sum, 2 * g.num_edges(), "case {case}");
    }
}

#[test]
fn has_edge_matches_edge_list() {
    for case in 0..CASES {
        let (n, edges) = rand_graph(&mut rng(2000 + case));
        let g = Graph::from_edges(n, &edges).unwrap();
        for e in g.edges() {
            assert!(g.has_edge(e.src, e.dst), "case {case}");
            assert!(g.has_edge(e.dst, e.src), "case {case}");
        }
    }
}

#[test]
fn serialization_round_trips() {
    for case in 0..CASES {
        let (n, edges) = rand_graph(&mut rng(3000 + case));
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, g2, "case {case}");
    }
}

#[test]
fn induced_subgraph_edges_subset() {
    for case in 0..CASES {
        let mut r = rng(4000 + case);
        let (n, edges) = rand_graph(&mut r);
        let g = Graph::from_edges(n, &edges).unwrap();
        let picks = r.gen_range(1usize..10);
        let nodes: Vec<NodeId> = (0..picks).map(|_| r.gen_range(0..n) as NodeId).collect();
        let sub = InducedSubgraph::extract(&g, &nodes);
        sub.graph.validate().unwrap();
        for e in sub.graph.edges() {
            let gu = sub.mapping.to_global(e.src);
            let gv = sub.mapping.to_global(e.dst);
            assert!(g.has_edge(gu, gv), "case {case}");
        }
    }
}

#[test]
fn halo_preserves_core_degrees() {
    for case in 0..CASES {
        let mut r = rng(5000 + case);
        let (n, edges) = rand_graph(&mut r);
        let g = Graph::from_edges(n, &edges).unwrap();
        let picks = r.gen_range(1usize..8);
        let mut core: Vec<NodeId> = (0..picks).map(|_| r.gen_range(0..n) as NodeId).collect();
        core.sort_unstable();
        core.dedup();
        let sub = InducedSubgraph::extract_with_halo(&g, &core);
        sub.graph.validate().unwrap();
        for &c in &core {
            let local = sub.mapping.to_local(c).unwrap();
            assert_eq!(
                sub.graph.degree(local),
                g.degree(c),
                "case {case}: core node {c} lost neighbors"
            );
        }
    }
}

#[test]
fn weighted_duplicate_accumulation() {
    for case in 0..CASES {
        let mut r = rng(6000 + case);
        let n = r.gen_range(2usize..20);
        let reps = r.gen_range(1usize..6);
        let w = r.gen_range(0.01f32..10.0);
        let mut b = GraphBuilder::new(n);
        for _ in 0..reps {
            b.add_weighted_edge(0, 1, w).unwrap();
        }
        let g = b.build();
        let got = g.edge_weight(0, 1).unwrap();
        assert!(
            (got - w * reps as f32).abs() < 1e-4 * reps as f32,
            "case {case}: got {got}, want {}",
            w * reps as f32
        );
    }
}
