use std::collections::BTreeMap;

use crate::{Graph, GraphBuilder, NodeId};

/// Bidirectional mapping between the node ids of a subgraph (local) and the
/// parent graph (global).
///
/// # Examples
///
/// ```
/// use splpg_graph::NodeMapping;
/// let m = NodeMapping::from_globals(vec![10, 4, 7]);
/// assert_eq!(m.to_global(0), 10);
/// assert_eq!(m.to_local(7), Some(2));
/// assert_eq!(m.to_local(3), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeMapping {
    globals: Vec<NodeId>,
    locals: BTreeMap<NodeId, NodeId>,
}

impl NodeMapping {
    /// Builds a mapping where local id `i` corresponds to `globals[i]`.
    pub fn from_globals(globals: Vec<NodeId>) -> Self {
        let locals = globals
            .iter()
            .enumerate()
            .map(|(i, &g)| (g, i as NodeId))
            .collect();
        NodeMapping { globals, locals }
    }

    /// Number of mapped nodes.
    pub fn len(&self) -> usize {
        self.globals.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.globals.is_empty()
    }

    /// Global id of local node `local`.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn to_global(&self, local: NodeId) -> NodeId {
        self.globals[local as usize]
    }

    /// Local id of global node `global`, if mapped.
    pub fn to_local(&self, global: NodeId) -> Option<NodeId> {
        self.locals.get(&global).copied()
    }

    /// The ordered global id list (local id = index).
    pub fn globals(&self) -> &[NodeId] {
        &self.globals
    }
}

/// A node-induced subgraph together with its [`NodeMapping`].
///
/// Used by the partitioners: `RandomTMA` forms partitions as node-induced
/// subgraphs, and `extract` with `keep_halo` retains cross-partition edges
/// so that "the full-neighbor list of each node is fully preserved in a
/// partitioned subgraph" (paper, Section IV-B).
#[derive(Debug, Clone)]
pub struct InducedSubgraph {
    /// The extracted subgraph in local ids.
    pub graph: Graph,
    /// Local/global id mapping.
    pub mapping: NodeMapping,
    /// For halo extraction: local ids of nodes that belong to the core set
    /// (non-halo). Without halo, this is all nodes.
    pub core: Vec<NodeId>,
}

impl InducedSubgraph {
    /// Extracts the subgraph induced by `nodes` (edges with both endpoints
    /// in the set). `nodes` may be unsorted; duplicates are collapsed.
    pub fn extract(parent: &Graph, nodes: &[NodeId]) -> Self {
        let mut globals: Vec<NodeId> = nodes.to_vec();
        globals.sort_unstable();
        globals.dedup();
        let mapping = NodeMapping::from_globals(globals);
        let mut b = GraphBuilder::new(mapping.len());
        for local in 0..mapping.len() as NodeId {
            let g = mapping.to_global(local);
            for &nb in parent.neighbors(g) {
                if let Some(local_nb) = mapping.to_local(nb) {
                    if local < local_nb {
                        let w = parent.edge_weight(g, nb).unwrap_or(1.0);
                        if parent.is_weighted() {
                            b.add_weighted_edge(local, local_nb, w)
                                .expect("validated locals");
                        } else {
                            b.add_edge(local, local_nb).expect("validated locals");
                        }
                    }
                }
            }
        }
        let core = (0..mapping.len() as NodeId).collect();
        InducedSubgraph { graph: b.build(), mapping, core }
    }

    /// Extracts the subgraph on `core` nodes *plus their one-hop halo*: every
    /// neighbor of a core node is included as a halo node, and every edge
    /// incident to a core node is kept. Halo-halo edges are dropped, matching
    /// the paper's strategy of preserving full-neighbor lists of owned nodes
    /// without replicating the rest of the graph.
    pub fn extract_with_halo(parent: &Graph, core_nodes: &[NodeId]) -> Self {
        let mut core_sorted: Vec<NodeId> = core_nodes.to_vec();
        core_sorted.sort_unstable();
        core_sorted.dedup();
        // `core_sorted` is sorted and deduplicated: membership via binary
        // search, no hash container needed.
        let in_core = |n: NodeId| core_sorted.binary_search(&n).is_ok();
        let mut globals = core_sorted.clone();
        for &c in &core_sorted {
            for &nb in parent.neighbors(c) {
                if !in_core(nb) {
                    globals.push(nb);
                }
            }
        }
        // Core nodes first (stable local ids 0..core.len()), then halo sorted.
        let core_len = core_sorted.len();
        globals[core_len..].sort_unstable();
        globals.dedup(); // halo duplicates are adjacent after sort; core ids unique & disjoint
        let mapping = NodeMapping::from_globals(globals);
        let mut b = GraphBuilder::new(mapping.len());
        for (local_idx, &g) in core_sorted.iter().enumerate() {
            let local = local_idx as NodeId;
            for &nb in parent.neighbors(g) {
                let local_nb = mapping.to_local(nb).expect("halo includes all neighbors");
                // Add each core-core edge once; core-halo edges keyed by core side.
                if in_core(nb) && local > local_nb {
                    continue;
                }
                let w = parent.edge_weight(g, nb).unwrap_or(1.0);
                if parent.is_weighted() {
                    b.add_weighted_edge(local, local_nb, w).expect("validated locals");
                } else {
                    b.add_edge(local, local_nb).expect("validated locals");
                }
            }
        }
        let core = (0..core_len as NodeId).collect();
        InducedSubgraph { graph: b.build(), mapping, core }
    }

    /// Number of core (owned) nodes.
    pub fn num_core(&self) -> usize {
        self.core.len()
    }

    /// Whether local node `v` is a core (owned) node rather than halo.
    pub fn is_core(&self, v: NodeId) -> bool {
        (v as usize) < self.core.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parent() -> Graph {
        // Triangle 0-1-2 plus pendant 3 on node 2 and edge 3-4.
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn induced_keeps_internal_edges_only() {
        let g = parent();
        let sub = InducedSubgraph::extract(&g, &[0, 1, 2]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 3); // the triangle
        assert_eq!(sub.mapping.to_global(0), 0);
    }

    #[test]
    fn induced_drops_cross_edges() {
        let g = parent();
        let sub = InducedSubgraph::extract(&g, &[3, 0, 1]);
        // Only edge 0-1 has both endpoints inside.
        assert_eq!(sub.graph.num_edges(), 1);
    }

    #[test]
    fn induced_dedups_nodes() {
        let g = parent();
        let sub = InducedSubgraph::extract(&g, &[1, 1, 0]);
        assert_eq!(sub.graph.num_nodes(), 2);
    }

    #[test]
    fn halo_preserves_full_neighbor_lists() {
        let g = parent();
        let sub = InducedSubgraph::extract_with_halo(&g, &[2, 3]);
        // Core {2,3}; halo must include 0, 1 (nbrs of 2) and 4 (nbr of 3).
        assert_eq!(sub.num_core(), 2);
        assert_eq!(sub.graph.num_nodes(), 5);
        // Full degree of core nodes is preserved.
        let local2 = sub.mapping.to_local(2).unwrap();
        let local3 = sub.mapping.to_local(3).unwrap();
        assert_eq!(sub.graph.degree(local2), g.degree(2));
        assert_eq!(sub.graph.degree(local3), g.degree(3));
        assert!(sub.is_core(local2));
    }

    #[test]
    fn halo_drops_halo_halo_edges() {
        let g = parent();
        // Core {3}: halo {2, 4}. Edge 2-4 doesn't exist; edges 0-2,1-2 are
        // halo-halo relative to core and must be dropped.
        let sub = InducedSubgraph::extract_with_halo(&g, &[3]);
        assert_eq!(sub.graph.num_nodes(), 3);
        assert_eq!(sub.graph.num_edges(), 2); // 3-2 and 3-4 only
        let local0 = sub.mapping.to_local(0);
        assert_eq!(local0, None); // 0 not adjacent to core
    }

    #[test]
    fn mapping_round_trips() {
        let m = NodeMapping::from_globals(vec![9, 5, 6]);
        for local in 0..3 as NodeId {
            assert_eq!(m.to_local(m.to_global(local)), Some(local));
        }
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }
}
