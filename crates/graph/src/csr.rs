use crate::{Edge, NodeId};

/// An undirected graph in compressed-sparse-row form.
///
/// Both directions of every undirected edge are stored, so a node's full
/// neighbor list is a contiguous, sorted slice. Graphs may carry per-edge
/// weights (produced by the effective-resistance sparsifier, where a sampled
/// edge receives weight `1/(L p)`); unweighted graphs treat every edge as
/// weight `1.0`.
///
/// Construct via [`crate::GraphBuilder`] (which sorts, deduplicates and
/// validates) or [`Graph::from_edges`] for convenience.
///
/// # Examples
///
/// ```
/// use splpg_graph::Graph;
/// # fn main() -> Result<(), splpg_graph::GraphError> {
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)])?;
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(4, 3));
/// assert!(!g.has_edge(0, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    /// CSR row offsets; `offsets[v]..offsets[v + 1]` indexes `neighbors`.
    offsets: Vec<usize>,
    /// Concatenated, per-node-sorted neighbor lists (both edge directions).
    neighbors: Vec<NodeId>,
    /// Optional per-directed-slot weights, parallel to `neighbors`.
    weights: Option<Vec<f32>>,
    /// Canonical undirected edge list (`src <= dst`), sorted.
    edges: Vec<Edge>,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<usize>,
        neighbors: Vec<NodeId>,
        weights: Option<Vec<f32>>,
        edges: Vec<Edge>,
    ) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), neighbors.len());
        if let Some(w) = &weights {
            debug_assert_eq!(w.len(), neighbors.len());
        }
        Graph { offsets, neighbors, weights, edges }
    }

    /// Builds an unweighted graph from an edge list.
    ///
    /// Duplicate edges and reversed duplicates are collapsed.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::NodeOutOfRange`] if an endpoint is `>=
    /// num_nodes` and [`crate::GraphError::SelfLoop`] on self-loops.
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, crate::GraphError> {
        let mut b = crate::GraphBuilder::new(num_nodes);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds an empty graph (no edges) on `num_nodes` nodes.
    pub fn empty(num_nodes: usize) -> Self {
        Graph {
            offsets: vec![0; num_nodes + 1],
            neighbors: Vec::new(),
            weights: None,
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `v` (number of distinct neighbors).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// The sorted neighbor slice of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Per-neighbor edge weights of `v`, parallel to [`Graph::neighbors`].
    /// Returns `None` for unweighted graphs (all weights implicitly `1.0`).
    pub fn neighbor_weights(&self, v: NodeId) -> Option<&[f32]> {
        let v = v as usize;
        self.weights
            .as_ref()
            .map(|w| &w[self.offsets[v]..self.offsets[v + 1]])
    }

    /// Whether the graph carries explicit edge weights.
    pub fn is_weighted(&self) -> bool {
        self.weights.is_some()
    }

    /// Weight of edge `(u, v)`, `None` if the edge is absent. Unweighted
    /// edges report `1.0`.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f32> {
        let nbrs = self.neighbors(u);
        let idx = nbrs.binary_search(&v).ok()?;
        Some(match &self.weights {
            Some(w) => w[self.offsets[u as usize] + idx],
            None => 1.0,
        })
    }

    /// Whether an undirected edge `(u, v)` exists. O(log deg(u)).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.num_nodes() || (v as usize) >= self.num_nodes() {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// The canonical (deduplicated, `src <= dst`, sorted) undirected edge
    /// list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes() as NodeId
    }

    /// Sum of all edge weights (edge count for unweighted graphs).
    pub fn total_weight(&self) -> f64 {
        match &self.weights {
            // Each undirected edge appears twice in the directed slots.
            Some(w) => w.iter().map(|&x| x as f64).sum::<f64>() / 2.0,
            None => self.num_edges() as f64,
        }
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Mean degree (`2|E| / |V|`), 0.0 for an empty graph.
    pub fn mean_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Estimated resident memory of the structure in bytes. Used by the
    /// communication-cost model to price structure transfers.
    pub fn structure_bytes(&self) -> u64 {
        let mut bytes = (self.offsets.len() * std::mem::size_of::<usize>()) as u64;
        bytes += (self.neighbors.len() * std::mem::size_of::<NodeId>()) as u64;
        if let Some(w) = &self.weights {
            bytes += (w.len() * std::mem::size_of::<f32>()) as u64;
        }
        bytes
    }

    /// Validates internal invariants; used by tests and debug assertions.
    ///
    /// Checks: offsets monotone, neighbor ids in range, neighbor lists sorted
    /// and duplicate-free, adjacency symmetric, and the canonical edge list
    /// consistent with the adjacency.
    pub fn validate(&self) -> Result<(), crate::GraphError> {
        let n = self.num_nodes();
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(crate::GraphError::InvalidFormat(format!(
                    "offsets not monotone at node {v}"
                )));
            }
            let nbrs = self.neighbors(v as NodeId);
            for w in nbrs.windows(2) {
                if w[0] >= w[1] {
                    return Err(crate::GraphError::InvalidFormat(format!(
                        "neighbor list of node {v} not strictly sorted"
                    )));
                }
            }
            for &u in nbrs {
                if (u as usize) >= n {
                    return Err(crate::GraphError::NodeOutOfRange { node: u, num_nodes: n });
                }
                if self.neighbors(u).binary_search(&(v as NodeId)).is_err() {
                    return Err(crate::GraphError::InvalidFormat(format!(
                        "asymmetric adjacency: {v} -> {u} present but {u} -> {v} missing"
                    )));
                }
            }
        }
        let directed: usize = (0..n).map(|v| self.degree(v as NodeId)).sum();
        if directed != 2 * self.edges.len() {
            return Err(crate::GraphError::InvalidFormat(format!(
                "directed slot count {directed} != 2 * edge count {}",
                self.edges.len()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = path4();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.mean_degree(), 1.5);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = Graph::from_edges(4, &[(3, 0), (0, 1), (2, 0)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3]);
        assert_eq!(g.degree(0), 3);
        for v in [1u32, 2, 3] {
            assert_eq!(g.neighbors(v), &[0]);
        }
        g.validate().unwrap();
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = path4();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.mean_degree(), 0.0);
        g.validate().unwrap();
    }

    #[test]
    fn unweighted_edge_weight_is_one() {
        let g = path4();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(0, 2), None);
        assert!(!g.is_weighted());
        assert_eq!(g.total_weight(), 3.0);
    }

    #[test]
    fn canonical_edges_sorted() {
        let g = Graph::from_edges(4, &[(3, 2), (1, 0), (2, 1)]).unwrap();
        let e: Vec<(NodeId, NodeId)> = g.edges().iter().map(|e| (e.src, e.dst)).collect();
        assert_eq!(e, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn structure_bytes_positive() {
        let g = path4();
        assert!(g.structure_bytes() > 0);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = Graph::from_edges(2, &[(0, 5)]).unwrap_err();
        assert!(matches!(err, crate::GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn self_loop_rejected() {
        let err = Graph::from_edges(2, &[(1, 1)]).unwrap_err();
        assert!(matches!(err, crate::GraphError::SelfLoop { node: 1 }));
    }
}
