//! Compact binary serialization for graphs and feature matrices.
//!
//! A hand-rolled, length-prefixed little-endian layout is used instead of a
//! serde dependency to keep the public dependency surface minimal
//! (C-STABLE). The format is versioned by a magic header.
//!
//! Layout (`SPLG` graphs): magic, version `u32`, `num_nodes u64`,
//! `num_edges u64`, `weighted u8`, then `num_edges` records of
//! `(src u32, dst u32[, weight f32])`. Features (`SPLF`): magic, version,
//! `rows u64`, `dim u64`, then `rows * dim` `f32`s.

use std::io::{Read, Write};

use crate::{FeatureMatrix, Graph, GraphBuilder, GraphError};

const GRAPH_MAGIC: &[u8; 4] = b"SPLG";
const FEAT_MAGIC: &[u8; 4] = b"SPLF";
const VERSION: u32 = 1;

fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), GraphError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), GraphError> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, GraphError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, GraphError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

/// Serializes `graph` to `writer` in the `SPLG` binary format.
///
/// A `&mut` reference may be passed as the writer.
///
/// # Errors
///
/// Propagates underlying I/O failures as [`GraphError::Io`].
pub fn write_graph<W: Write>(mut writer: W, graph: &Graph) -> Result<(), GraphError> {
    writer.write_all(GRAPH_MAGIC)?;
    write_u32(&mut writer, VERSION)?;
    write_u64(&mut writer, graph.num_nodes() as u64)?;
    write_u64(&mut writer, graph.num_edges() as u64)?;
    writer.write_all(&[graph.is_weighted() as u8])?;
    for e in graph.edges() {
        write_u32(&mut writer, e.src)?;
        write_u32(&mut writer, e.dst)?;
        if graph.is_weighted() {
            let w = graph
                .edge_weight(e.src, e.dst)
                .expect("invariant: every edge in graph.edges() has a stored weight");
            writer.write_all(&w.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Deserializes a graph previously written by [`write_graph`].
///
/// A `&mut` reference may be passed as the reader.
///
/// # Errors
///
/// [`GraphError::InvalidFormat`] on bad magic/version or malformed records;
/// [`GraphError::Io`] on underlying read failures.
pub fn read_graph<R: Read>(mut reader: R) -> Result<Graph, GraphError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != GRAPH_MAGIC {
        return Err(GraphError::InvalidFormat("bad graph magic".to_string()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(GraphError::InvalidFormat(format!("unsupported version {version}")));
    }
    let num_nodes = read_u64(&mut reader)? as usize;
    let num_edges = read_u64(&mut reader)? as usize;
    let mut flag = [0u8; 1];
    reader.read_exact(&mut flag)?;
    let weighted = flag[0] != 0;
    let mut b = GraphBuilder::with_capacity(num_nodes, num_edges);
    for _ in 0..num_edges {
        let src = read_u32(&mut reader)?;
        let dst = read_u32(&mut reader)?;
        if weighted {
            let w = read_f32(&mut reader)?;
            b.add_weighted_edge(src, dst, w)?;
        } else {
            b.add_edge(src, dst)?;
        }
    }
    Ok(b.build())
}

/// Serializes `features` to `writer` in the `SPLF` binary format.
///
/// # Errors
///
/// Propagates underlying I/O failures as [`GraphError::Io`].
pub fn write_features<W: Write>(
    mut writer: W,
    features: &FeatureMatrix,
) -> Result<(), GraphError> {
    writer.write_all(FEAT_MAGIC)?;
    write_u32(&mut writer, VERSION)?;
    write_u64(&mut writer, features.num_rows() as u64)?;
    write_u64(&mut writer, features.dim() as u64)?;
    for &v in features.as_slice() {
        writer.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a feature matrix previously written by [`write_features`].
///
/// # Errors
///
/// [`GraphError::InvalidFormat`] on bad magic/version; [`GraphError::Io`] on
/// underlying read failures.
pub fn read_features<R: Read>(mut reader: R) -> Result<FeatureMatrix, GraphError> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic)?;
    if &magic != FEAT_MAGIC {
        return Err(GraphError::InvalidFormat("bad feature magic".to_string()));
    }
    let version = read_u32(&mut reader)?;
    if version != VERSION {
        return Err(GraphError::InvalidFormat(format!("unsupported version {version}")));
    }
    let rows = read_u64(&mut reader)? as usize;
    let dim = read_u64(&mut reader)? as usize;
    let mut data = Vec::with_capacity(rows * dim);
    for _ in 0..rows * dim {
        data.push(read_f32(&mut reader)?);
    }
    FeatureMatrix::from_flat(rows, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_round_trip_unweighted() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (4, 5), (1, 4)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn graph_round_trip_weighted() {
        let mut b = GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 0.25).unwrap();
        b.add_weighted_edge(1, 2, 4.0).unwrap();
        let g = b.build();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        let g2 = read_graph(buf.as_slice()).unwrap();
        assert_eq!(g2.edge_weight(0, 1), Some(0.25));
        assert_eq!(g2.edge_weight(1, 2), Some(4.0));
    }

    #[test]
    fn features_round_trip() {
        let x = FeatureMatrix::from_rows(vec![vec![1.0, -2.0], vec![0.5, 3.25]]).unwrap();
        let mut buf = Vec::new();
        write_features(&mut buf, &x).unwrap();
        let x2 = read_features(buf.as_slice()).unwrap();
        assert_eq!(x, x2);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"NOPE____________".to_vec();
        assert!(matches!(read_graph(buf.as_slice()), Err(GraphError::InvalidFormat(_))));
        assert!(matches!(read_features(buf.as_slice()), Err(GraphError::InvalidFormat(_))));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut buf = Vec::new();
        write_graph(&mut buf, &g).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(read_graph(buf.as_slice()), Err(GraphError::Io(_))));
    }
}
