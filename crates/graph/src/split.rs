use splpg_rng::seq::SliceRandom;
use splpg_rng::Rng;

use crate::{Edge, Graph, GraphError, NodeId};

/// Fractions used to split edges into train/validation/test sets.
///
/// The paper uses 80% / 10% / 10% for the DGL datasets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitFractions {
    /// Fraction of edges used for training.
    pub train: f64,
    /// Fraction held out for validation.
    pub valid: f64,
    /// Fraction held out for testing (the remainder).
    pub test: f64,
}

impl SplitFractions {
    /// The paper's 80/10/10 protocol.
    pub fn paper_default() -> Self {
        SplitFractions { train: 0.8, valid: 0.1, test: 0.1 }
    }

    /// Validates that the fractions are positive and sum to 1 (±1e-9).
    pub fn is_valid(&self) -> bool {
        self.train > 0.0
            && self.valid >= 0.0
            && self.test >= 0.0
            && (self.train + self.valid + self.test - 1.0).abs() < 1e-9
    }
}

impl Default for SplitFractions {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A link-prediction edge split.
///
/// Positive edges are divided into train/valid/test; held-out (valid/test)
/// edges are *removed* from the message-passing graph, exactly as in the
/// standard link-prediction protocol the paper follows. Evaluation negative
/// samples are drawn globally uniform, 3x the positive count (paper Section
/// V-A), and are guaranteed not to be edges of the full graph.
///
/// # Examples
///
/// ```
/// use splpg_graph::{EdgeSplit, Graph, SplitFractions};
/// use splpg_rng::SeedableRng;
/// # fn main() -> Result<(), splpg_graph::GraphError> {
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5),(0,2),(1,3),(2,4),(3,5),(0,5)])?;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
/// let split = EdgeSplit::random(&g, SplitFractions::paper_default(), 3, &mut rng)?;
/// assert_eq!(split.train.len() + split.valid.len() + split.test.len(), 10);
/// assert_eq!(split.valid_neg.len(), 3 * split.valid.len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EdgeSplit {
    /// Training positive edges (also the message-passing graph's edges).
    pub train: Vec<Edge>,
    /// Validation positive edges (held out).
    pub valid: Vec<Edge>,
    /// Test positive edges (held out).
    pub test: Vec<Edge>,
    /// Validation negative samples (global-uniform non-edges).
    pub valid_neg: Vec<Edge>,
    /// Test negative samples (global-uniform non-edges).
    pub test_neg: Vec<Edge>,
}

impl EdgeSplit {
    /// Randomly splits the edges of `graph` and draws evaluation negatives.
    ///
    /// `neg_ratio` is the number of negative evaluation samples per held-out
    /// positive (the paper uses 3).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidFormat`] if the fractions are invalid or
    /// the graph is too dense/small for the requested number of negatives.
    pub fn random<R: Rng + ?Sized>(
        graph: &Graph,
        fractions: SplitFractions,
        neg_ratio: usize,
        rng: &mut R,
    ) -> Result<Self, GraphError> {
        if !fractions.is_valid() {
            return Err(GraphError::InvalidFormat(format!(
                "invalid split fractions {fractions:?}"
            )));
        }
        let mut edges: Vec<Edge> = graph.edges().to_vec();
        edges.shuffle(rng);
        let m = edges.len();
        let n_train = ((m as f64) * fractions.train).round() as usize;
        let n_valid = ((m as f64) * fractions.valid).round() as usize;
        let n_train = n_train.min(m);
        let n_valid = n_valid.min(m - n_train);
        let train = edges[..n_train].to_vec();
        let valid = edges[n_train..n_train + n_valid].to_vec();
        let test = edges[n_train + n_valid..].to_vec();

        let valid_neg = sample_global_negatives(graph, valid.len() * neg_ratio, rng)?;
        let test_neg = sample_global_negatives(graph, test.len() * neg_ratio, rng)?;
        Ok(EdgeSplit { train, valid, test, valid_neg, test_neg })
    }

    /// Builds the message-passing graph containing only training edges.
    pub fn train_graph(&self, num_nodes: usize) -> Result<Graph, GraphError> {
        let pairs: Vec<(NodeId, NodeId)> =
            self.train.iter().map(|e| (e.src, e.dst)).collect();
        Graph::from_edges(num_nodes, &pairs)
    }

    /// Total positive edge count across all splits.
    pub fn num_edges(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

/// Draws `count` distinct global-uniform negative samples: node pairs that
/// are not edges of `graph` and not self-loops ("global uniform approach",
/// paper Section II-B, used for testing).
///
/// # Errors
///
/// Returns [`GraphError::InvalidFormat`] if the graph has fewer than `count`
/// non-edges or sampling fails to make progress (pathologically dense
/// graphs).
pub fn sample_global_negatives<R: Rng + ?Sized>(
    graph: &Graph,
    count: usize,
    rng: &mut R,
) -> Result<Vec<Edge>, GraphError> {
    let n = graph.num_nodes() as u64;
    let possible = n * n.saturating_sub(1) / 2 - graph.num_edges() as u64;
    if (count as u64) > possible {
        return Err(GraphError::InvalidFormat(format!(
            "requested {count} negatives but only {possible} non-edges exist"
        )));
    }
    // BTreeSet, not HashSet: the collected Vec below inherits the set's
    // iteration order, and hash order varies per *process* — negatives
    // must come out identical across fresh runs with the same seed.
    let mut out = std::collections::BTreeSet::new();
    let mut attempts = 0u64;
    let max_attempts = 100 * (count as u64 + 10);
    while out.len() < count {
        attempts += 1;
        if attempts > max_attempts {
            return Err(GraphError::InvalidFormat(
                "negative sampling failed to make progress".to_string(),
            ));
        }
        let u = rng.gen_range(0..graph.num_nodes()) as NodeId;
        let v = rng.gen_range(0..graph.num_nodes()) as NodeId;
        if u == v || graph.has_edge(u, v) {
            continue;
        }
        out.insert(Edge::new(u, v));
    }
    Ok(out.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;

    fn ring(n: usize) -> Graph {
        let edges: Vec<(NodeId, NodeId)> =
            (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn split_partitions_all_edges() {
        let g = ring(50);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
        let s = EdgeSplit::random(&g, SplitFractions::paper_default(), 3, &mut rng).unwrap();
        assert_eq!(s.num_edges(), 50);
        assert_eq!(s.train.len(), 40);
        assert_eq!(s.valid.len(), 5);
        assert_eq!(s.test.len(), 5);
    }

    #[test]
    fn splits_are_disjoint() {
        let g = ring(30);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(2);
        let s = EdgeSplit::random(&g, SplitFractions::paper_default(), 1, &mut rng).unwrap();
        let train: std::collections::HashSet<_> = s.train.iter().collect();
        assert!(s.valid.iter().all(|e| !train.contains(e)));
        assert!(s.test.iter().all(|e| !train.contains(e)));
    }

    #[test]
    fn negatives_are_non_edges() {
        let g = ring(40);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
        let s = EdgeSplit::random(&g, SplitFractions::paper_default(), 3, &mut rng).unwrap();
        for e in s.test_neg.iter().chain(s.valid_neg.iter()) {
            assert!(!g.has_edge(e.src, e.dst));
            assert!(!e.is_loop());
        }
        assert_eq!(s.test_neg.len(), 3 * s.test.len());
    }

    #[test]
    fn train_graph_has_only_train_edges() {
        let g = ring(20);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(4);
        let s = EdgeSplit::random(&g, SplitFractions::paper_default(), 1, &mut rng).unwrap();
        let tg = s.train_graph(20).unwrap();
        assert_eq!(tg.num_edges(), s.train.len());
        for e in &s.test {
            assert!(!tg.has_edge(e.src, e.dst));
        }
    }

    #[test]
    fn invalid_fractions_rejected() {
        let g = ring(10);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
        let bad = SplitFractions { train: 0.5, valid: 0.1, test: 0.1 };
        assert!(EdgeSplit::random(&g, bad, 1, &mut rng).is_err());
    }

    #[test]
    fn too_many_negatives_rejected() {
        // K4: complete graph, zero non-edges.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(6);
        assert!(sample_global_negatives(&g, 1, &mut rng).is_err());
    }

    #[test]
    fn negatives_distinct() {
        let g = ring(15);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
        let neg = sample_global_negatives(&g, 20, &mut rng).unwrap();
        let set: std::collections::HashSet<_> = neg.iter().collect();
        assert_eq!(set.len(), 20);
    }
}
