//! Structural statistics used for dataset diagnostics and experiment
//! reporting.
//!
//! The distributed-training pathologies the paper studies are functions of
//! structure: degree skew decides what the effective-resistance scores look
//! like, clustering decides how much METIS can localize, and coreness
//! decides how much of the graph survives sparsification. These helpers
//! quantify all three for the synthetic stand-in datasets.

use std::collections::BTreeMap;

use crate::{Graph, NodeId};

/// Degree-distribution summary.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Degree variance.
    pub variance: f64,
    /// Histogram as (degree, count), sorted by degree.
    pub histogram: Vec<(usize, usize)>,
}

/// Computes the degree distribution of `graph`.
///
/// # Examples
///
/// ```
/// use splpg_graph::{degree_stats, Graph};
/// # fn main() -> Result<(), splpg_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)])?;
/// let s = degree_stats(&g);
/// assert_eq!(s.max, 3);
/// assert_eq!(s.mean, 1.5);
/// # Ok(())
/// # }
/// ```
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.num_nodes();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0,
            variance: 0.0,
            histogram: Vec::new(),
        };
    }
    let mut degrees: Vec<usize> = (0..n as NodeId).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let variance =
        degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / n as f64;
    let mut hist: BTreeMap<usize, usize> = BTreeMap::new();
    for &d in &degrees {
        *hist.entry(d).or_insert(0) += 1;
    }
    // BTreeMap iterates in key order: the histogram comes out sorted.
    let histogram: Vec<(usize, usize)> = hist.into_iter().collect();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean,
        median: degrees[n / 2],
        variance,
        histogram,
    }
}

/// Local clustering coefficient of node `v`: the fraction of its neighbor
/// pairs that are themselves connected. Nodes of degree < 2 have
/// coefficient 0.
///
/// # Panics
///
/// Panics if `v` is out of range.
pub fn local_clustering(graph: &Graph, v: NodeId) -> f64 {
    let nbrs = graph.neighbors(v);
    let d = nbrs.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if graph.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    2.0 * closed as f64 / (d * (d - 1)) as f64
}

/// Mean local clustering coefficient over all nodes (0.0 for an empty
/// graph). O(sum of deg²) — fine at the experiment scales; sample nodes
/// yourself for very large graphs.
pub fn average_clustering(graph: &Graph) -> f64 {
    let n = graph.num_nodes();
    if n == 0 {
        return 0.0;
    }
    (0..n as NodeId).map(|v| local_clustering(graph, v)).sum::<f64>() / n as f64
}

/// K-core decomposition: returns each node's core number (the largest `k`
/// such that the node belongs to a subgraph of minimum degree `k`), via
/// the standard peeling algorithm in O(|E|).
pub fn core_numbers(graph: &Graph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut degree: Vec<usize> = (0..n as NodeId).map(|v| graph.degree(v)).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    // Bucket sort nodes by degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0 as NodeId; n];
    {
        let mut cursor = bins.clone();
        for v in 0..n {
            let d = degree[v];
            pos[v] = cursor[d];
            order[cursor[d]] = v as NodeId;
            cursor[d] += 1;
        }
    }
    let mut core = degree.clone();
    for i in 0..n {
        let v = order[i];
        for &u in graph.neighbors(v) {
            let u = u as usize;
            if degree[u] > degree[v as usize] {
                // Move u one bucket down: swap with the first node of its
                // current bucket.
                let du = degree[u];
                let pu = pos[u];
                let pw = bins[du];
                let w = order[pw];
                if u != w as usize {
                    order.swap(pu, pw);
                    pos[u] = pw;
                    pos[w as usize] = pu;
                }
                bins[du] += 1;
                degree[u] -= 1;
            }
        }
        core[v as usize] = degree[v as usize];
    }
    core
}

/// Complete structural summary (handy for experiment logs).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Degree statistics.
    pub degrees: DegreeStats,
    /// Mean local clustering coefficient.
    pub clustering: f64,
    /// Maximum core number (degeneracy).
    pub degeneracy: usize,
    /// Connected-component count.
    pub components: usize,
}

/// Computes a [`GraphSummary`].
pub fn summarize(graph: &Graph) -> GraphSummary {
    let (_, components) = crate::connected_components(graph);
    let core = core_numbers(graph);
    GraphSummary {
        nodes: graph.num_nodes(),
        edges: graph.num_edges(),
        degrees: degree_stats(graph),
        clustering: average_clustering(graph),
        degeneracy: core.into_iter().max().unwrap_or(0),
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // Triangle 0-1-2 with tail 2-3-4.
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)]).unwrap()
    }

    #[test]
    fn degree_stats_basics() {
        let g = triangle_plus_tail();
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.histogram, vec![(1, 1), (2, 3), (3, 1)]);
    }

    #[test]
    fn empty_graph_stats() {
        let g = Graph::empty(0);
        let s = degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(average_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_of_triangle_nodes() {
        let g = triangle_plus_tail();
        assert_eq!(local_clustering(&g, 0), 1.0); // both nbrs connected
        assert_eq!(local_clustering(&g, 4), 0.0); // degree 1
        // Node 2: neighbors {0, 1, 3}; only (0,1) closed of 3 pairs.
        assert!((local_clustering(&g, 2) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_clustering_range() {
        let g = triangle_plus_tail();
        let c = average_clustering(&g);
        assert!(c > 0.0 && c < 1.0);
        // Complete graph has clustering exactly 1.
        let k4 = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(average_clustering(&k4), 1.0);
    }

    #[test]
    fn core_numbers_on_known_graph() {
        let g = triangle_plus_tail();
        let core = core_numbers(&g);
        // Triangle nodes form a 2-core; tail nodes peel at 1.
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 1);
        assert_eq!(core[4], 1);
    }

    #[test]
    fn core_numbers_complete_graph() {
        let k5: Vec<(NodeId, NodeId)> =
            (0..5).flat_map(|i| ((i + 1)..5).map(move |j| (i, j))).collect();
        let g = Graph::from_edges(5, &k5).unwrap();
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
    }

    #[test]
    fn summary_is_consistent() {
        let g = triangle_plus_tail();
        let s = summarize(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 5);
        assert_eq!(s.degeneracy, 2);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn isolated_nodes_counted_as_components() {
        let g = Graph::from_edges(4, &[(0, 1)]).unwrap();
        let s = summarize(&g);
        assert_eq!(s.components, 3);
        assert_eq!(s.degeneracy, 1);
    }
}
