use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
///
/// # Examples
///
/// ```
/// use splpg_graph::{bfs_distances, Graph};
/// # fn main() -> Result<(), splpg_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2)])?;
/// let d = bfs_distances(&g, 0);
/// assert_eq!(&d[..3], &[0, 1, 2]);
/// assert_eq!(d[3], usize::MAX);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &u in graph.neighbors(v) {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dv + 1;
                queue.push_back(u);
            }
        }
    }
    dist
}

/// Connected-component labels (0-based, in order of discovery) and the
/// number of components.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut stack = Vec::new();
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        label[start] = next;
        stack.push(start as NodeId);
        while let Some(v) = stack.pop() {
            for &u in graph.neighbors(v) {
                if label[u as usize] == usize::MAX {
                    label[u as usize] = next;
                    stack.push(u);
                }
            }
        }
        next += 1;
    }
    (label, next)
}

/// Summary statistics of a k-hop neighborhood expansion — what the
/// communication-cost model uses to price fetching a remote computational
/// graph (nodes carry features, edges carry structure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KhopStats {
    /// Distinct nodes reached within `k` hops, *including* the seed.
    pub nodes: usize,
    /// Directed adjacency slots traversed while expanding.
    pub edges: usize,
}

/// Collects the set of nodes within `k` hops of `seed` (full-neighbor
/// expansion, no fanout cap) together with expansion statistics.
///
/// Returned node list is sorted; the seed is always included.
///
/// # Panics
///
/// Panics if `seed` is out of range.
pub fn khop_neighborhood(graph: &Graph, seed: NodeId, k: usize) -> (Vec<NodeId>, KhopStats) {
    let mut visited = vec![false; graph.num_nodes()];
    let mut frontier = vec![seed];
    visited[seed as usize] = true;
    let mut all = vec![seed];
    let mut edges = 0usize;
    for _ in 0..k {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in graph.neighbors(v) {
                edges += 1;
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    next.push(u);
                    all.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    all.sort_unstable();
    let stats = KhopStats { nodes: all.len(), edges };
    (all, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // 0-1-2-3 path plus isolated 4; 5-6 separate component.
        Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (5, 6)]).unwrap()
    }

    #[test]
    fn bfs_handles_disconnected() {
        let g = sample();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], 3);
        assert_eq!(d[4], usize::MAX);
        assert_eq!(d[5], usize::MAX);
    }

    #[test]
    fn components_count() {
        let g = sample();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[4]);
        assert_eq!(labels[5], labels[6]);
    }

    #[test]
    fn khop_zero_is_seed_only() {
        let g = sample();
        let (nodes, stats) = khop_neighborhood(&g, 1, 0);
        assert_eq!(nodes, vec![1]);
        assert_eq!(stats, KhopStats { nodes: 1, edges: 0 });
    }

    #[test]
    fn khop_expands_by_hops() {
        let g = sample();
        let (n1, _) = khop_neighborhood(&g, 0, 1);
        assert_eq!(n1, vec![0, 1]);
        let (n2, _) = khop_neighborhood(&g, 0, 2);
        assert_eq!(n2, vec![0, 1, 2]);
        let (n3, s3) = khop_neighborhood(&g, 0, 3);
        assert_eq!(n3, vec![0, 1, 2, 3]);
        assert_eq!(s3.nodes, 4);
    }

    #[test]
    fn khop_saturates() {
        let g = sample();
        let (n, _) = khop_neighborhood(&g, 0, 100);
        assert_eq!(n, vec![0, 1, 2, 3]);
    }
}
