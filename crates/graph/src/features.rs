use crate::{GraphError, NodeId};

/// Dense row-major node-feature matrix (`|V| x f`, `f32`).
///
/// Mirrors the `X` matrix of the paper: row `v` is the initial feature
/// vector `x_v`. Feature rows are what the distributed engine prices when a
/// worker fetches a remote node (4 bytes per `f32`).
///
/// # Examples
///
/// ```
/// use splpg_graph::FeatureMatrix;
/// let x = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(x.num_rows(), 2);
/// assert_eq!(x.dim(), 2);
/// assert_eq!(x.row(1), &[3.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureMatrix {
    data: Vec<f32>,
    num_rows: usize,
    dim: usize,
}

impl FeatureMatrix {
    /// An all-zeros matrix.
    pub fn zeros(num_rows: usize, dim: usize) -> Self {
        FeatureMatrix { data: vec![0.0; num_rows * dim], num_rows, dim }
    }

    /// Builds from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// [`GraphError::DimensionMismatch`] when `data.len() != num_rows * dim`.
    pub fn from_flat(num_rows: usize, dim: usize, data: Vec<f32>) -> Result<Self, GraphError> {
        if data.len() != num_rows * dim {
            return Err(GraphError::DimensionMismatch {
                expected: num_rows * dim,
                actual: data.len(),
            });
        }
        Ok(FeatureMatrix { data, num_rows, dim })
    }

    /// Builds from per-node rows.
    ///
    /// # Errors
    ///
    /// [`GraphError::DimensionMismatch`] when rows have unequal lengths.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self, GraphError> {
        let num_rows = rows.len();
        let dim = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(num_rows * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(GraphError::DimensionMismatch { expected: dim, actual: row.len() });
            }
            data.extend_from_slice(row);
        }
        Ok(FeatureMatrix { data, num_rows, dim })
    }

    /// Number of rows (nodes).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Feature dimensionality `f`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Feature row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_rows`.
    pub fn row(&self, v: NodeId) -> &[f32] {
        let v = v as usize;
        &self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// Mutable feature row of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_rows`.
    pub fn row_mut(&mut self, v: NodeId) -> &mut [f32] {
        let v = v as usize;
        &mut self.data[v * self.dim..(v + 1) * self.dim]
    }

    /// The flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Gathers the rows for `nodes` into a new dense matrix, in order.
    /// This is the operation a worker performs when materialising the input
    /// features of a sampled computational graph.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range.
    pub fn gather(&self, nodes: &[NodeId]) -> FeatureMatrix {
        let mut data = Vec::with_capacity(nodes.len() * self.dim);
        self.gather_into(nodes, &mut data);
        FeatureMatrix { data, num_rows: nodes.len(), dim: self.dim }
    }

    /// Appends the rows for `nodes` (in order) to `out` — the allocation-free
    /// variant of [`FeatureMatrix::gather`] for callers that reuse a buffer
    /// across batches.
    ///
    /// # Panics
    ///
    /// Panics if any node id is out of range.
    pub fn gather_into(&self, nodes: &[NodeId], out: &mut Vec<f32>) {
        out.reserve(nodes.len() * self.dim);
        for &v in nodes {
            out.extend_from_slice(self.row(v));
        }
    }

    /// Bytes occupied by `count` feature rows (the communication price of
    /// transferring that many rows).
    pub fn row_bytes(&self) -> u64 {
        (self.dim * std::mem::size_of::<f32>()) as u64
    }

    /// Total bytes of the matrix.
    pub fn total_bytes(&self) -> u64 {
        (self.data.len() * std::mem::size_of::<f32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape() {
        let x = FeatureMatrix::zeros(3, 4);
        assert_eq!(x.num_rows(), 3);
        assert_eq!(x.dim(), 4);
        assert!(x.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_flat_validates_len() {
        assert!(FeatureMatrix::from_flat(2, 3, vec![0.0; 5]).is_err());
        assert!(FeatureMatrix::from_flat(2, 3, vec![0.0; 6]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = FeatureMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, GraphError::DimensionMismatch { .. }));
    }

    #[test]
    fn gather_orders_rows() {
        let x = FeatureMatrix::from_rows(vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 2.0],
        ])
        .unwrap();
        let g = x.gather(&[2, 0]);
        assert_eq!(g.row(0), &[2.0, 2.0]);
        assert_eq!(g.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn row_mut_updates() {
        let mut x = FeatureMatrix::zeros(2, 2);
        x.row_mut(1)[0] = 7.0;
        assert_eq!(x.row(1), &[7.0, 0.0]);
    }

    #[test]
    fn byte_accounting() {
        let x = FeatureMatrix::zeros(5, 8);
        assert_eq!(x.row_bytes(), 32);
        assert_eq!(x.total_bytes(), 5 * 32);
    }
}
