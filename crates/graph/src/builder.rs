use std::collections::BTreeMap;

use crate::{Edge, Graph, GraphError, NodeId};

/// Incremental builder for [`Graph`].
///
/// Collects undirected edges (optionally weighted), validates endpoints,
/// collapses duplicates (summing weights, as the effective-resistance
/// sparsifier requires when the same edge is drawn more than once) and
/// produces a CSR [`Graph`] with sorted neighbor lists.
///
/// # Examples
///
/// ```
/// use splpg_graph::GraphBuilder;
/// # fn main() -> Result<(), splpg_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_weighted_edge(0, 1, 0.5)?;
/// b.add_weighted_edge(1, 0, 0.25)?; // duplicate: weights sum
/// b.add_weighted_edge(1, 2, 2.0)?;
/// let g = b.build();
/// assert_eq!(g.edge_weight(0, 1), Some(0.75));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: usize,
    /// Canonical edge -> accumulated weight, ordered so that [`build`]
    /// emits edges in canonical order without a separate sort (and so the
    /// builder never depends on per-process hash order).
    ///
    /// [`build`]: GraphBuilder::build
    edges: BTreeMap<Edge, f64>,
    weighted: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `num_nodes` nodes and no edges.
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder { num_nodes, edges: BTreeMap::new(), weighted: false }
    }

    /// Creates a builder sized for `edges` undirected edges. (The ordered
    /// edge map needs no pre-allocation; the hint is accepted for API
    /// stability.)
    pub fn with_capacity(num_nodes: usize, _edges: usize) -> Self {
        GraphBuilder { num_nodes, edges: BTreeMap::new(), weighted: false }
    }

    /// Number of nodes the built graph will have.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct undirected edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    fn check(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if (u as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange { node: u, num_nodes: self.num_nodes });
        }
        if (v as usize) >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange { node: v, num_nodes: self.num_nodes });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        Ok(())
    }

    /// Adds an unweighted undirected edge. Duplicates are ignored.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] for endpoints `>= num_nodes`;
    /// [`GraphError::SelfLoop`] when `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        self.check(u, v)?;
        self.edges.entry(Edge::new(u, v)).or_insert(1.0);
        Ok(self)
    }

    /// Adds a weighted undirected edge; re-adding an existing edge sums the
    /// weights (Algorithm 1, line 12 of the paper).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_edge`].
    pub fn add_weighted_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        weight: f32,
    ) -> Result<&mut Self, GraphError> {
        self.check(u, v)?;
        self.weighted = true;
        *self.edges.entry(Edge::new(u, v)).or_insert(0.0) += weight as f64;
        Ok(self)
    }

    /// Whether the canonical edge has already been added.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains_key(&Edge::new(u, v))
    }

    /// Finalizes the builder into a CSR [`Graph`].
    pub fn build(&self) -> Graph {
        let n = self.num_nodes;
        // BTreeMap iterates in canonical (src, dst) order already.
        let edge_list: Vec<(Edge, f64)> =
            self.edges.iter().map(|(&e, &w)| (e, w)).collect();

        let mut degree = vec![0usize; n];
        for (e, _) in &edge_list {
            degree[e.src as usize] += 1;
            degree[e.dst as usize] += 1;
        }
        let mut offsets = vec![0usize; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let total = offsets[n];
        let mut neighbors = vec![0 as NodeId; total];
        let mut weights = if self.weighted { Some(vec![0f32; total]) } else { None };
        let mut cursor = offsets.clone();
        for (e, w) in &edge_list {
            let (s, d) = (e.src as usize, e.dst as usize);
            neighbors[cursor[s]] = e.dst;
            neighbors[cursor[d]] = e.src;
            if let Some(ws) = weights.as_mut() {
                ws[cursor[s]] = *w as f32;
                ws[cursor[d]] = *w as f32;
            }
            cursor[s] += 1;
            cursor[d] += 1;
        }
        // Per-node sort (neighbors are appended in global edge order, which
        // is sorted by (src, dst) but a node's in-edges interleave).
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            match weights.as_mut() {
                None => neighbors[range].sort_unstable(),
                Some(ws) => {
                    let mut pairs: Vec<(NodeId, f32)> = neighbors[range.clone()]
                        .iter()
                        .copied()
                        .zip(ws[range.clone()].iter().copied())
                        .collect();
                    pairs.sort_unstable_by_key(|(id, _)| *id);
                    for (i, (id, w)) in pairs.into_iter().enumerate() {
                        neighbors[offsets[v] + i] = id;
                        ws[offsets[v] + i] = w;
                    }
                }
            }
        }
        let edges = edge_list.into_iter().map(|(e, _)| e).collect();
        Graph::from_parts(offsets, neighbors, weights, edges)
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    /// Extends with unweighted edges, silently skipping invalid ones.
    /// Use [`GraphBuilder::add_edge`] when validation errors must surface.
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        for (u, v) in iter {
            let _ = self.add_edge(u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_neighbors() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 4).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 3).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        g.validate().unwrap();
    }

    #[test]
    fn weights_sum_on_duplicates() {
        let mut b = GraphBuilder::new(2);
        b.add_weighted_edge(0, 1, 1.5).unwrap();
        b.add_weighted_edge(1, 0, 2.5).unwrap();
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(0, 1), Some(4.0));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn contains_edge_checks_canonical_form() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(2, 1).unwrap();
        assert!(b.contains_edge(1, 2));
        assert!(b.contains_edge(2, 1));
        assert!(!b.contains_edge(0, 1));
    }

    #[test]
    fn extend_skips_invalid_edges() {
        let mut b = GraphBuilder::new(3);
        b.extend(vec![(0, 1), (0, 0), (0, 9), (1, 2)]);
        assert_eq!(b.num_edges(), 2);
    }

    #[test]
    fn weighted_neighbor_weights_align() {
        let mut b = GraphBuilder::new(4);
        b.add_weighted_edge(1, 3, 3.0).unwrap();
        b.add_weighted_edge(1, 0, 1.0).unwrap();
        b.add_weighted_edge(1, 2, 2.0).unwrap();
        let g = b.build();
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.neighbor_weights(1).unwrap(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(3, 10);
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.num_nodes(), 3);
        assert_eq!(b.build().num_edges(), 1);
    }
}
