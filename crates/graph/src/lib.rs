//! Graph storage substrate for the SpLPG reproduction.
//!
//! This crate provides the in-memory graph representation that every other
//! crate in the workspace builds on: a compressed-sparse-row ([`Graph`])
//! structure for undirected (optionally weighted) graphs, a [`GraphBuilder`]
//! for assembling graphs from edge lists, dense node features
//! ([`FeatureMatrix`]), train/validation/test edge splits ([`EdgeSplit`]),
//! traversal helpers (BFS, k-hop neighborhoods, connected components) and a
//! compact binary serialization format.
//!
//! The representation mirrors what DGL's graph storage provides to the
//! original SpLPG implementation: O(1) access to a node's neighbor slice,
//! degree queries, and cheap extraction of node-induced subgraphs with
//! local/global id mappings (needed by the partitioners).
//!
//! # Examples
//!
//! ```
//! use splpg_graph::{Graph, GraphBuilder};
//!
//! # fn main() -> Result<(), splpg_graph::GraphError> {
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(0, 1)?;
//! b.add_edge(1, 2)?;
//! b.add_edge(2, 3)?;
//! let g: Graph = b.build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.degree(1), 2);
//! assert_eq!(g.neighbors(1), &[0, 2]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod error;
mod features;
mod io;
mod split;
mod stats;
mod subgraph;
mod traversal;

pub use builder::GraphBuilder;
pub use csr::Graph;
pub use error::GraphError;
pub use features::FeatureMatrix;
pub use io::{read_features, read_graph, write_features, write_graph};
pub use split::{sample_global_negatives, EdgeSplit, SplitFractions};
pub use stats::{
    average_clustering, core_numbers, degree_stats, local_clustering, summarize, DegreeStats,
    GraphSummary,
};
pub use subgraph::{InducedSubgraph, NodeMapping};
pub use traversal::{bfs_distances, connected_components, khop_neighborhood, KhopStats};

/// Node identifier. `u32` keeps memory at half of `usize` on 64-bit targets,
/// which matters for the PPA-scale graphs (30M+ directed edge slots).
pub type NodeId = u32;

/// An undirected edge, stored canonically with `src <= dst`.
///
/// # Examples
///
/// ```
/// use splpg_graph::Edge;
/// let e = Edge::new(5, 2);
/// assert_eq!((e.src, e.dst), (2, 5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub src: NodeId,
    /// Larger endpoint.
    pub dst: NodeId,
}

impl Edge {
    /// Creates a canonical (sorted-endpoint) undirected edge.
    pub fn new(a: NodeId, b: NodeId) -> Self {
        if a <= b {
            Edge { src: a, dst: b }
        } else {
            Edge { src: b, dst: a }
        }
    }

    /// Returns the endpoint opposite to `node`, or `None` if `node` is not an
    /// endpoint of this edge.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.src {
            Some(self.dst)
        } else if node == self.dst {
            Some(self.src)
        } else {
            None
        }
    }

    /// Whether the edge is a self-loop.
    pub fn is_loop(&self) -> bool {
        self.src == self.dst
    }
}

impl From<(NodeId, NodeId)> for Edge {
    fn from((a, b): (NodeId, NodeId)) -> Self {
        Edge::new(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_canonicalizes_endpoints() {
        assert_eq!(Edge::new(3, 1), Edge::new(1, 3));
        assert!(Edge::new(3, 1).src <= Edge::new(3, 1).dst);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(2, 7);
        assert_eq!(e.other(2), Some(7));
        assert_eq!(e.other(7), Some(2));
        assert_eq!(e.other(5), None);
    }

    #[test]
    fn edge_self_loop() {
        assert!(Edge::new(4, 4).is_loop());
        assert!(!Edge::new(4, 5).is_loop());
    }

    #[test]
    fn edge_from_tuple() {
        let e: Edge = (9, 2).into();
        assert_eq!(e, Edge::new(2, 9));
    }
}
