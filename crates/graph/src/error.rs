use std::error::Error;
use std::fmt;

/// Errors produced by graph construction, validation and serialization.
///
/// # Examples
///
/// ```
/// use splpg_graph::{GraphBuilder, GraphError};
/// let mut b = GraphBuilder::new(2);
/// match b.add_edge(0, 9) {
///     Err(GraphError::NodeOutOfRange { node, num_nodes }) => {
///         assert_eq!(node, 9);
///         assert_eq!(num_nodes, 2);
///     }
///     other => panic!("expected out-of-range error, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node id referenced a node beyond the declared node count.
    NodeOutOfRange {
        /// The offending node id.
        node: crate::NodeId,
        /// The number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop was supplied where simple graphs are required.
    SelfLoop {
        /// The looping node.
        node: crate::NodeId,
    },
    /// Feature matrix dimensions do not match the graph.
    DimensionMismatch {
        /// Expected row count (number of nodes).
        expected: usize,
        /// Actual row count supplied.
        actual: usize,
    },
    /// The binary stream being read is not a valid serialized graph.
    InvalidFormat(String),
    /// An underlying I/O failure, carried as a string to keep the error
    /// `Clone`/`Eq` (the original `io::Error` is not).
    Io(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node id {node} out of range for graph with {num_nodes} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop on node {node} is not allowed in a simple graph")
            }
            GraphError::DimensionMismatch { expected, actual } => {
                write!(f, "feature matrix has {actual} rows but the graph has {expected} nodes")
            }
            GraphError::InvalidFormat(msg) => write!(f, "invalid serialized graph: {msg}"),
            GraphError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = GraphError::NodeOutOfRange { node: 7, num_nodes: 3 };
        let msg = e.to_string();
        assert!(msg.contains("7"));
        assert!(msg.contains("3"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
