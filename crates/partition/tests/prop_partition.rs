//! Property-based tests on partitioner invariants.

use proptest::prelude::*;
use rand::SeedableRng;
use splpg_graph::{Graph, NodeId};
use splpg_partition::{MetisLike, PartitionedGraph, Partitioner, RandomTma, SuperTma};

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (8usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId).prop_filter("no loops", |(u, v)| u != v),
            n..4 * n,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn metis_covers_every_node((n, edges) in arb_graph(), parts in 2usize..6, seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = MetisLike::default().partition(&g, parts, &mut rng).unwrap();
        prop_assert_eq!(p.assignments().len(), n);
        prop_assert_eq!(p.part_sizes().iter().sum::<usize>(), n);
        prop_assert!(p.assignments().iter().all(|&a| (a as usize) < parts));
    }

    #[test]
    fn metis_reasonably_balanced((n, edges) in arb_graph(), seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = MetisLike::default().partition(&g, 2, &mut rng).unwrap();
        // Recursive bisection with 5% slack; allow generous bound for tiny n.
        prop_assert!(p.balance() <= 1.6, "balance {}", p.balance());
    }

    #[test]
    fn all_partitioners_produce_valid_assignments((n, edges) in arb_graph(), seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for p in [
            MetisLike::default().partition(&g, 4, &mut rng).unwrap(),
            RandomTma::default().partition(&g, 4, &mut rng).unwrap(),
            SuperTma::default().partition(&g, 4, &mut rng).unwrap(),
        ] {
            prop_assert_eq!(p.num_parts(), 4);
            prop_assert_eq!(p.assignments().len(), n);
        }
    }

    #[test]
    fn halo_subgraph_edge_identity((n, edges) in arb_graph(), seed in 0u64..1000) {
        // Sum of part edges == |E| + cut under halo, == |E| - cut without.
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = MetisLike::default().partition(&g, 3, &mut rng).unwrap();
        let halo = PartitionedGraph::build(&g, &p, true);
        let cut = PartitionedGraph::build(&g, &p, false);
        prop_assert_eq!(halo.total_edges(), g.num_edges() + p.edge_cut(&g));
        prop_assert_eq!(cut.total_edges(), g.num_edges() - p.edge_cut(&g));
    }

    #[test]
    fn halo_core_nodes_partition_the_graph((n, edges) in arb_graph(), seed in 0u64..1000) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let p = SuperTma::default().partition(&g, 3, &mut rng).unwrap();
        let pg = PartitionedGraph::build(&g, &p, true);
        let mut owned = vec![0usize; n];
        for part in pg.parts() {
            for &c in &part.core {
                owned[part.mapping.to_global(c) as usize] += 1;
            }
        }
        prop_assert!(owned.iter().all(|&c| c == 1), "core sets must partition nodes");
    }
}
