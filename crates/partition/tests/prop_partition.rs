//! Property-style tests on partitioner invariants, run as seeded loops.

use splpg_graph::{Graph, NodeId};
use splpg_partition::{MetisLike, PartitionedGraph, Partitioner, RandomTma, SuperTma};
use splpg_rng::{Rng, SeedableRng};

const CASES: u64 = 32;

fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(seed)
}

/// A random simple graph with 8..60 nodes and n..4n edges.
fn rand_graph(r: &mut splpg_rng::rngs::StdRng) -> Graph {
    let n = r.gen_range(8usize..60);
    let m = r.gen_range(n..4 * n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    while edges.len() < m {
        let u = r.gen_range(0..n as NodeId);
        let v = r.gen_range(0..n as NodeId);
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

#[test]
fn metis_covers_every_node() {
    for case in 0..CASES {
        let mut r = rng(case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        let parts = r.gen_range(2usize..6);
        let p = MetisLike::default().partition(&g, parts, &mut r).unwrap();
        assert_eq!(p.assignments().len(), n, "case {case}");
        assert_eq!(p.part_sizes().iter().sum::<usize>(), n, "case {case}");
        assert!(p.assignments().iter().all(|&a| (a as usize) < parts), "case {case}");
    }
}

#[test]
fn metis_reasonably_balanced() {
    for case in 0..CASES {
        let mut r = rng(1000 + case);
        let g = rand_graph(&mut r);
        let p = MetisLike::default().partition(&g, 2, &mut r).unwrap();
        // Recursive bisection with 5% slack; allow generous bound for tiny n.
        assert!(p.balance() <= 1.6, "case {case}: balance {}", p.balance());
    }
}

#[test]
fn all_partitioners_produce_valid_assignments() {
    for case in 0..CASES {
        let mut r = rng(2000 + case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        for p in [
            MetisLike::default().partition(&g, 4, &mut r).unwrap(),
            RandomTma.partition(&g, 4, &mut r).unwrap(),
            SuperTma::default().partition(&g, 4, &mut r).unwrap(),
        ] {
            assert_eq!(p.num_parts(), 4, "case {case}");
            assert_eq!(p.assignments().len(), n, "case {case}");
        }
    }
}

#[test]
fn halo_subgraph_edge_identity() {
    // Sum of part edges == |E| + cut under halo, == |E| - cut without.
    for case in 0..CASES {
        let mut r = rng(3000 + case);
        let g = rand_graph(&mut r);
        let p = MetisLike::default().partition(&g, 3, &mut r).unwrap();
        let halo = PartitionedGraph::build(&g, &p, true);
        let cut = PartitionedGraph::build(&g, &p, false);
        assert_eq!(halo.total_edges(), g.num_edges() + p.edge_cut(&g), "case {case}");
        assert_eq!(cut.total_edges(), g.num_edges() - p.edge_cut(&g), "case {case}");
    }
}

#[test]
fn halo_core_nodes_partition_the_graph() {
    for case in 0..CASES {
        let mut r = rng(4000 + case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        let p = SuperTma::default().partition(&g, 3, &mut r).unwrap();
        let pg = PartitionedGraph::build(&g, &p, true);
        let mut owned = vec![0usize; n];
        for part in pg.parts() {
            for &c in &part.core {
                owned[part.mapping.to_global(c) as usize] += 1;
            }
        }
        assert!(owned.iter().all(|&c| c == 1), "case {case}: core sets must partition nodes");
    }
}
