use splpg_graph::{Graph, InducedSubgraph, NodeId};

use crate::Partition;

/// Materialized per-worker subgraphs for a [`Partition`].
///
/// `with_halo = true` reproduces SpLPG's partitioning strategy (paper
/// Section IV-B): "the cross-partition edges are maintained in both
/// partitions. That is, the full-neighbor list of each node is fully
/// preserved in a partitioned subgraph." Each part then contains its owned
/// (core) nodes plus one-hop halo nodes, and every edge incident to a core
/// node.
///
/// `with_halo = false` reproduces the vanilla baselines (PSGD-PA,
/// RandomTMA, SuperTMA): node-induced subgraphs in which cross-partition
/// edges are dropped.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_partition::{MetisLike, PartitionedGraph, Partitioner};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(60, &(0..59).map(|i| (i, i + 1)).collect::<Vec<_>>())?;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(9);
/// let p = MetisLike::default().partition(&g, 4, &mut rng)?;
/// let halo = PartitionedGraph::build(&g, &p, true);
/// let cut = PartitionedGraph::build(&g, &p, false);
/// assert!(halo.total_edges() >= cut.total_edges());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PartitionedGraph {
    parts: Vec<InducedSubgraph>,
    partition: Partition,
    with_halo: bool,
}

impl PartitionedGraph {
    /// Extracts one subgraph per part from `graph` according to `partition`.
    pub fn build(graph: &Graph, partition: &Partition, with_halo: bool) -> Self {
        let parts = (0..partition.num_parts() as u32)
            .map(|p| {
                let nodes = partition.part_nodes(p);
                if with_halo {
                    InducedSubgraph::extract_with_halo(graph, &nodes)
                } else {
                    InducedSubgraph::extract(graph, &nodes)
                }
            })
            .collect();
        PartitionedGraph { parts, partition: partition.clone(), with_halo }
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// The subgraph of part `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_parts()`.
    pub fn part(&self, i: usize) -> &InducedSubgraph {
        &self.parts[i]
    }

    /// All per-part subgraphs.
    pub fn parts(&self) -> &[InducedSubgraph] {
        &self.parts
    }

    /// The underlying assignment.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Whether halo (full-neighbor) retention was used.
    pub fn with_halo(&self) -> bool {
        self.with_halo
    }

    /// Total edges across all part subgraphs (cross-partition edges are
    /// counted once per side under halo retention).
    pub fn total_edges(&self) -> usize {
        self.parts.iter().map(|p| p.graph.num_edges()).sum()
    }

    /// Owner part of a global node id.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn owner_of(&self, global: NodeId) -> u32 {
        self.partition.part_of(global)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetisLike, Partitioner};
    use splpg_rng::SeedableRng;
    use splpg_graph::GraphBuilder;

    fn grid(w: usize, h: usize) -> Graph {
        let mut b = GraphBuilder::new(w * h);
        let id = |x: usize, y: usize| (y * w + x) as NodeId;
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.add_edge(id(x, y), id(x + 1, y)).unwrap();
                }
                if y + 1 < h {
                    b.add_edge(id(x, y), id(x, y + 1)).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn halo_parts_preserve_core_degrees() {
        let g = grid(8, 8);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(11);
        let p = MetisLike::default().partition(&g, 4, &mut rng).unwrap();
        let pg = PartitionedGraph::build(&g, &p, true);
        for part in pg.parts() {
            for &core_local in &part.core {
                let global = part.mapping.to_global(core_local);
                assert_eq!(
                    part.graph.degree(core_local),
                    g.degree(global),
                    "core node {global} lost neighbors"
                );
            }
        }
    }

    #[test]
    fn cut_parts_lose_cross_edges() {
        let g = grid(6, 6);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(12);
        let p = MetisLike::default().partition(&g, 4, &mut rng).unwrap();
        let pg = PartitionedGraph::build(&g, &p, false);
        assert_eq!(pg.total_edges() + p.edge_cut(&g), g.num_edges());
    }

    #[test]
    fn halo_double_counts_cut_edges() {
        let g = grid(6, 6);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(13);
        let p = MetisLike::default().partition(&g, 2, &mut rng).unwrap();
        let pg = PartitionedGraph::build(&g, &p, true);
        // Each cut edge appears in both incident parts.
        assert_eq!(pg.total_edges(), g.num_edges() + p.edge_cut(&g));
    }

    #[test]
    fn owner_lookup_matches_partition() {
        let g = grid(4, 4);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(14);
        let p = MetisLike::default().partition(&g, 2, &mut rng).unwrap();
        let pg = PartitionedGraph::build(&g, &p, true);
        for v in 0..16 as NodeId {
            assert_eq!(pg.owner_of(v), p.part_of(v));
        }
        assert!(pg.with_halo());
        assert_eq!(pg.num_parts(), 2);
    }
}
