use splpg_rng::Rng;
use splpg_graph::Graph;

use crate::{check_part_count, Partition, PartitionError, Partitioner};

/// RandomTMA (Zhu et al.): every node is assigned independently and
/// uniformly at random to one of the partitions, and a node-induced subgraph
/// forms each partition.
///
/// The randomized assignment makes all partitions share the same data
/// distribution (resolving the discrepancy issue the TMA paper targets) but
/// destroys connectivity — the neighbors of each node become fragmented
/// across partitions, which is exactly the information loss SpLPG
/// identifies as a root cause of the accuracy drop.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_partition::{Partitioner, RandomTma};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(100, &(0..99).map(|i| (i, i + 1)).collect::<Vec<_>>())?;
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
/// let p = RandomTma::default().partition(&g, 4, &mut rng)?;
/// assert_eq!(p.num_parts(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomTma;

impl RandomTma {
    /// Creates a RandomTMA partitioner.
    pub fn new() -> Self {
        RandomTma
    }
}

impl Partitioner for RandomTma {
    fn partition<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        num_parts: usize,
        rng: &mut R,
    ) -> Result<Partition, PartitionError> {
        check_part_count(graph, num_parts)?;
        let assignments = (0..graph.num_nodes())
            .map(|_| rng.gen_range(0..num_parts) as u32)
            .collect();
        Partition::new(assignments, num_parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::NodeId;

    #[test]
    fn covers_all_nodes() {
        let g = Graph::empty(1000);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
        let p = RandomTma::new().partition(&g, 4, &mut rng).unwrap();
        assert_eq!(p.assignments().len(), 1000);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 1000);
    }

    #[test]
    fn roughly_balanced() {
        let g = Graph::empty(4000);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(2);
        let p = RandomTma::new().partition(&g, 4, &mut rng).unwrap();
        for &s in &p.part_sizes() {
            assert!((800..1200).contains(&s), "size {s} far from 1000");
        }
    }

    #[test]
    fn destroys_locality_on_community_graph() {
        // Edge locality under random assignment into p parts is ~1/p.
        let n = 1000usize;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (i as NodeId, (i + 1) as NodeId)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
        let p = RandomTma::new().partition(&g, 4, &mut rng).unwrap();
        let local = p.local_edge_fraction(&g);
        assert!((local - 0.25).abs() < 0.08, "local fraction {local} not ~0.25");
    }

    #[test]
    fn rejects_zero_parts() {
        let g = Graph::empty(10);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(4);
        assert!(RandomTma::new().partition(&g, 0, &mut rng).is_err());
    }
}
