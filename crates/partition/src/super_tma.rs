use splpg_rng::Rng;
use splpg_graph::Graph;

use crate::{check_part_count, MetisLike, Partition, PartitionError, Partitioner};

/// SuperTMA (Zhu et al.): METIS first partitions the graph into many small
/// *mini-clusters*; each mini-cluster is then treated as a super-node and
/// assigned uniformly at random to one of the `p` partitions.
///
/// Compared to [`crate::RandomTma`] this keeps small neighborhoods intact
/// (within a mini-cluster) while still randomizing the per-partition data
/// distribution. The number of mini-clusters is `cluster_factor * p`.
#[derive(Debug, Clone)]
pub struct SuperTma {
    metis: MetisLike,
    cluster_factor: usize,
}

impl SuperTma {
    /// Creates a SuperTMA partitioner producing `cluster_factor * p`
    /// mini-clusters (the TMA paper uses a large factor; 16 is our default).
    ///
    /// # Panics
    ///
    /// Panics if `cluster_factor == 0`.
    pub fn new(cluster_factor: usize) -> Self {
        assert!(cluster_factor > 0, "cluster_factor must be positive");
        SuperTma { metis: MetisLike::default(), cluster_factor }
    }

    /// Mini-clusters created per requested partition.
    pub fn cluster_factor(&self) -> usize {
        self.cluster_factor
    }
}

impl Default for SuperTma {
    fn default() -> Self {
        SuperTma::new(16)
    }
}

impl Partitioner for SuperTma {
    fn partition<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        num_parts: usize,
        rng: &mut R,
    ) -> Result<Partition, PartitionError> {
        check_part_count(graph, num_parts)?;
        let clusters = (self.cluster_factor * num_parts).min(graph.num_nodes()).max(num_parts);
        let mini = self.metis.partition(graph, clusters, rng)?;
        // Random super-node assignment; force coverage of all p parts so no
        // worker ends up empty (retry a bounded number of times, then patch).
        let mut cluster_part: Vec<u32> =
            (0..clusters).map(|_| rng.gen_range(0..num_parts) as u32).collect();
        let mut seen = vec![false; num_parts];
        for &cp in &cluster_part {
            seen[cp as usize] = true;
        }
        let mut missing: Vec<u32> = (0..num_parts as u32)
            .filter(|&p| !seen[p as usize])
            .collect();
        let mut idx = 0usize;
        while let Some(part) = missing.pop() {
            // Reassign an arbitrary distinct cluster to the missing part.
            cluster_part[idx % clusters] = part;
            idx += 1;
        }
        let assignments = mini
            .assignments()
            .iter()
            .map(|&c| cluster_part[c as usize])
            .collect();
        Partition::new(assignments, num_parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::{GraphBuilder, NodeId};

    fn community_graph(communities: usize, size: usize) -> Graph {
        let mut b = GraphBuilder::new(communities * size);
        for c in 0..communities {
            let base = (c * size) as NodeId;
            for i in 0..size as NodeId {
                for j in (i + 1)..size as NodeId {
                    b.add_edge(base + i, base + j).unwrap();
                }
            }
            // Chain communities together.
            if c + 1 < communities {
                b.add_edge(base, base + size as NodeId).unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn all_parts_nonempty() {
        let g = community_graph(16, 8);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(5);
        let p = SuperTma::default().partition(&g, 4, &mut rng).unwrap();
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }

    #[test]
    fn keeps_more_locality_than_random_tma() {
        let g = community_graph(32, 8);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(6);
        let sup = SuperTma::default().partition(&g, 4, &mut rng).unwrap();
        let rand_p = crate::RandomTma.partition(&g, 4, &mut rng).unwrap();
        assert!(
            sup.local_edge_fraction(&g) > rand_p.local_edge_fraction(&g),
            "super {} <= random {}",
            sup.local_edge_fraction(&g),
            rand_p.local_edge_fraction(&g)
        );
    }

    #[test]
    fn cluster_factor_accessor() {
        assert_eq!(SuperTma::new(4).cluster_factor(), 4);
        assert_eq!(SuperTma::default().cluster_factor(), 16);
    }

    #[test]
    #[should_panic(expected = "cluster_factor")]
    fn zero_factor_panics() {
        let _ = SuperTma::new(0);
    }

    #[test]
    fn tiny_graph_still_partitions() {
        let g = community_graph(2, 3);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(7);
        let p = SuperTma::default().partition(&g, 2, &mut rng).unwrap();
        assert_eq!(p.num_parts(), 2);
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 6);
    }
}
