//! Graph partitioning for distributed GNN training.
//!
//! Implements the three partitioning schemes the paper evaluates:
//!
//! * [`MetisLike`] — a from-scratch multilevel recursive-bisection
//!   partitioner in the spirit of METIS (Karypis & Kumar): heavy-edge
//!   matching coarsening, greedy BFS initial bisection from a
//!   pseudo-peripheral node, and boundary Fiduccia–Mattheyses refinement at
//!   every level. Minimizes edge cut while keeping partitions balanced,
//!   which is exactly the property that makes the *negative-sample locality*
//!   problem of the paper appear.
//! * [`RandomTma`] — each node assigned independently and uniformly at
//!   random (Zhu et al.'s RandomTMA); node-induced subgraphs form the
//!   partitions.
//! * [`SuperTma`] — METIS-like partitioning into many mini-clusters, each
//!   mini-cluster then randomly assigned to a partition (SuperTMA).
//!
//! [`Partition`] carries the node→part assignment and quality metrics (edge
//! cut, balance, local-edge fraction), and [`PartitionedGraph`] materializes
//! per-worker subgraphs either *with halo* (the paper's full-neighbor
//! retention: "the full-neighbor list of each node is fully preserved in a
//! partitioned subgraph") or *without* (cross-partition edges dropped, as in
//! PSGD-PA and the TMA baselines).
//!
//! # Examples
//!
//! ```
//! use splpg_rng::SeedableRng;
//! use splpg_graph::Graph;
//! use splpg_partition::{MetisLike, Partitioner};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let edges: Vec<(u32, u32)> = (0..99).map(|i| (i, i + 1)).collect();
//! let g = Graph::from_edges(100, &edges)?;
//! let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(42);
//! let partition = MetisLike::default().partition(&g, 4, &mut rng)?;
//! assert_eq!(partition.num_parts(), 4);
//! // A path graph partitions with a tiny cut.
//! assert!(partition.edge_cut(&g) <= 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metis_like;
mod partitioned;
mod random_tma;
mod super_tma;

pub use metis_like::{MetisLike, MetisOptions};
pub use partitioned::PartitionedGraph;
pub use random_tma::RandomTma;
pub use super_tma::SuperTma;

use splpg_rng::Rng;
use splpg_graph::{Graph, NodeId};

/// Errors from partitioning.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// Requested more parts than nodes, or zero parts.
    InvalidPartCount {
        /// Requested number of parts.
        parts: usize,
        /// Number of nodes available.
        nodes: usize,
    },
    /// The assignment vector does not cover every node exactly once.
    InvalidAssignment(String),
}

impl std::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartitionError::InvalidPartCount { parts, nodes } => {
                write!(f, "cannot split {nodes} nodes into {parts} parts")
            }
            PartitionError::InvalidAssignment(msg) => {
                write!(f, "invalid partition assignment: {msg}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A node→part assignment over a graph's nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignments: Vec<u32>,
    num_parts: usize,
}

impl Partition {
    /// Wraps an assignment vector.
    ///
    /// # Errors
    ///
    /// [`PartitionError::InvalidAssignment`] if any label is `>= num_parts`
    /// or `num_parts == 0`.
    pub fn new(assignments: Vec<u32>, num_parts: usize) -> Result<Self, PartitionError> {
        if num_parts == 0 {
            return Err(PartitionError::InvalidAssignment("zero parts".to_string()));
        }
        if let Some(&bad) = assignments.iter().find(|&&a| (a as usize) >= num_parts) {
            return Err(PartitionError::InvalidAssignment(format!(
                "label {bad} >= part count {num_parts}"
            )));
        }
        Ok(Partition { assignments, num_parts })
    }

    /// Number of parts.
    pub fn num_parts(&self) -> usize {
        self.num_parts
    }

    /// Part of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part_of(&self, v: NodeId) -> u32 {
        self.assignments[v as usize]
    }

    /// The raw assignment vector (index = node id).
    pub fn assignments(&self) -> &[u32] {
        &self.assignments
    }

    /// Node ids belonging to part `part`, sorted ascending.
    pub fn part_nodes(&self, part: u32) -> Vec<NodeId> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == part)
            .map(|(i, _)| i as NodeId)
            .collect()
    }

    /// Per-part node counts.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts];
        for &a in &self.assignments {
            sizes[a as usize] += 1;
        }
        sizes
    }

    /// Number of edges whose endpoints lie in different parts.
    pub fn edge_cut(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .iter()
            .filter(|e| self.part_of(e.src) != self.part_of(e.dst))
            .count()
    }

    /// Fraction of edges that are intra-partition (local). This is the
    /// quantity that bounds how many positive samples a halo-less worker can
    /// see.
    pub fn local_edge_fraction(&self, graph: &Graph) -> f64 {
        if graph.num_edges() == 0 {
            return 1.0;
        }
        1.0 - self.edge_cut(graph) as f64 / graph.num_edges() as f64
    }

    /// Balance factor: `max part size / ideal part size` (1.0 = perfect).
    pub fn balance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignments.len() as f64 / self.num_parts as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }
}

/// A graph-partitioning algorithm.
///
/// Implementations are deterministic given the `rng` state, which keeps
/// experiments reproducible.
pub trait Partitioner {
    /// Splits `graph` into `num_parts` parts.
    ///
    /// # Errors
    ///
    /// [`PartitionError::InvalidPartCount`] when `num_parts` is zero or
    /// exceeds the node count; implementations may add conditions.
    fn partition<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        num_parts: usize,
        rng: &mut R,
    ) -> Result<Partition, PartitionError>;
}

pub(crate) fn check_part_count(graph: &Graph, num_parts: usize) -> Result<(), PartitionError> {
    if num_parts == 0 || num_parts > graph.num_nodes() {
        return Err(PartitionError::InvalidPartCount {
            parts: num_parts,
            nodes: graph.num_nodes(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_validates_labels() {
        assert!(Partition::new(vec![0, 1, 2], 3).is_ok());
        assert!(Partition::new(vec![0, 3], 3).is_err());
        assert!(Partition::new(vec![], 0).is_err());
    }

    #[test]
    fn part_sizes_and_nodes() {
        let p = Partition::new(vec![0, 1, 0, 1, 0], 2).unwrap();
        assert_eq!(p.part_sizes(), vec![3, 2]);
        assert_eq!(p.part_nodes(0), vec![0, 2, 4]);
        assert_eq!(p.part_of(3), 1);
    }

    #[test]
    fn edge_cut_counts_cross_edges() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let p = Partition::new(vec![0, 0, 1, 1], 2).unwrap();
        assert_eq!(p.edge_cut(&g), 1);
        assert!((p.local_edge_fraction(&g) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn balance_perfect_is_one() {
        let p = Partition::new(vec![0, 1, 0, 1], 2).unwrap();
        assert_eq!(p.balance(), 1.0);
        let q = Partition::new(vec![0, 0, 0, 1], 2).unwrap();
        assert_eq!(q.balance(), 1.5);
    }

    #[test]
    fn empty_graph_local_fraction() {
        let g = Graph::empty(3);
        let p = Partition::new(vec![0, 1, 0], 2).unwrap();
        assert_eq!(p.local_edge_fraction(&g), 1.0);
    }
}
