//! Multilevel recursive-bisection partitioner in the spirit of METIS.
//!
//! The phases follow Karypis & Kumar's multilevel k-way scheme, specialised
//! to recursive bisection (the paper only needs p in {4, 8, 16}):
//!
//! 1. **Coarsening** — repeated heavy-edge matching contracts the graph
//!    until it is small, preserving node weights (contracted sizes) and
//!    accumulating edge weights.
//! 2. **Initial bisection** — greedy BFS region growing from a
//!    pseudo-peripheral node at the coarsest level, targeting a weight
//!    fraction.
//! 3. **Uncoarsening + refinement** — the bisection is projected back level
//!    by level, running boundary Fiduccia–Mattheyses passes (gain-ordered
//!    single-node moves with hill-climbing and a balance constraint).

use std::collections::BTreeMap;

use splpg_rng::seq::SliceRandom;
use splpg_rng::Rng;
use splpg_graph::{Graph, NodeId};

use crate::{check_part_count, Partition, PartitionError, Partitioner};

/// Tuning knobs for [`MetisLike`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetisOptions {
    /// Stop coarsening when the graph has at most this many nodes.
    pub coarsen_threshold: usize,
    /// FM refinement passes per level.
    pub refinement_passes: usize,
    /// Allowed imbalance: a side may exceed its target weight by this
    /// multiplicative factor (1.05 = 5% slack).
    pub imbalance: f64,
}

impl Default for MetisOptions {
    fn default() -> Self {
        MetisOptions { coarsen_threshold: 64, refinement_passes: 6, imbalance: 1.05 }
    }
}

/// Multilevel recursive-bisection partitioner (METIS-like).
///
/// See the [module documentation](self) for the algorithm outline.
#[derive(Debug, Clone, Default)]
pub struct MetisLike {
    options: MetisOptions,
}

impl MetisLike {
    /// Creates a partitioner with custom options.
    pub fn new(options: MetisOptions) -> Self {
        MetisLike { options }
    }

    /// The options in use.
    pub fn options(&self) -> &MetisOptions {
        &self.options
    }
}

impl Partitioner for MetisLike {
    fn partition<R: Rng + ?Sized>(
        &self,
        graph: &Graph,
        num_parts: usize,
        rng: &mut R,
    ) -> Result<Partition, PartitionError> {
        check_part_count(graph, num_parts)?;
        let work = WorkGraph::from_graph(graph);
        let mut assignments = vec![0u32; graph.num_nodes()];
        let all: Vec<u32> = (0..graph.num_nodes() as u32).collect();
        recurse(&work, &all, 0, num_parts, &self.options, rng, &mut assignments);
        Partition::new(assignments, num_parts)
    }
}

/// Recursively bisect the node set `nodes` (ids into the original graph) into
/// parts `[first_part, first_part + parts)`.
fn recurse<R: Rng + ?Sized>(
    parent: &WorkGraph,
    nodes: &[u32],
    first_part: usize,
    parts: usize,
    options: &MetisOptions,
    rng: &mut R,
    assignments: &mut [u32],
) {
    if parts == 1 {
        for &v in nodes {
            assignments[v as usize] = first_part as u32;
        }
        return;
    }
    let left_parts = parts / 2;
    let frac = left_parts as f64 / parts as f64;
    let sub = parent.induced(nodes);
    let side = bisect(&sub, frac, options, rng);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for (local, &global) in nodes.iter().enumerate() {
        if side[local] == 0 {
            left.push(global);
        } else {
            right.push(global);
        }
    }
    recurse(parent, &left, first_part, left_parts, options, rng, assignments);
    recurse(parent, &right, first_part + left_parts, parts - left_parts, options, rng, assignments);
}

/// Internal weighted working graph (node weights from contraction, edge
/// weights accumulated).
#[derive(Debug, Clone)]
struct WorkGraph {
    adj: Vec<Vec<(u32, f64)>>,
    node_weight: Vec<f64>,
}

impl WorkGraph {
    fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut adj = Vec::with_capacity(n);
        for v in 0..n as NodeId {
            let nbrs = graph.neighbors(v);
            let row = match graph.neighbor_weights(v) {
                Some(ws) => nbrs.iter().zip(ws).map(|(&u, &w)| (u, w as f64)).collect(),
                None => nbrs.iter().map(|&u| (u, 1.0)).collect(),
            };
            adj.push(row);
        }
        WorkGraph { adj, node_weight: vec![1.0; n] }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }

    fn total_weight(&self) -> f64 {
        self.node_weight.iter().sum()
    }

    /// Induced subgraph on `nodes` (global ids), relabelled 0..len.
    fn induced(&self, nodes: &[u32]) -> WorkGraph {
        let mut local_of: BTreeMap<u32, u32> = BTreeMap::new();
        for (i, &g) in nodes.iter().enumerate() {
            local_of.insert(g, i as u32);
        }
        let mut adj = Vec::with_capacity(nodes.len());
        let mut node_weight = Vec::with_capacity(nodes.len());
        for &g in nodes {
            let row = self.adj[g as usize]
                .iter()
                .filter_map(|&(u, w)| local_of.get(&u).map(|&lu| (lu, w)))
                .collect();
            adj.push(row);
            node_weight.push(self.node_weight[g as usize]);
        }
        WorkGraph { adj, node_weight }
    }

    /// Heavy-edge matching contraction. Returns the coarse graph and the
    /// mapping fine node -> coarse node.
    fn coarsen<R: Rng + ?Sized>(&self, rng: &mut R) -> (WorkGraph, Vec<u32>) {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.shuffle(rng);
        let mut matched = vec![u32::MAX; n];
        let mut coarse_id = vec![u32::MAX; n];
        let mut next = 0u32;
        for &v in &order {
            if matched[v as usize] != u32::MAX {
                continue;
            }
            // Heaviest unmatched neighbor.
            let mut best: Option<(u32, f64)> = None;
            for &(u, w) in &self.adj[v as usize] {
                if u != v && matched[u as usize] == u32::MAX
                    && best.is_none_or(|(_, bw)| w > bw) {
                        best = Some((u, w));
                    }
            }
            match best {
                Some((u, _)) => {
                    matched[v as usize] = u;
                    matched[u as usize] = v;
                    coarse_id[v as usize] = next;
                    coarse_id[u as usize] = next;
                }
                None => {
                    matched[v as usize] = v;
                    coarse_id[v as usize] = next;
                }
            }
            next += 1;
        }
        let cn = next as usize;
        let mut node_weight = vec![0.0; cn];
        for v in 0..n {
            node_weight[coarse_id[v] as usize] += self.node_weight[v];
        }
        // Accumulate coarse adjacency: bucket fine edges by coarse source.
        let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); cn];
        let mut buckets: Vec<BTreeMap<u32, f64>> = vec![BTreeMap::new(); cn];
        for v in 0..n {
            let cv = coarse_id[v];
            for &(u, w) in &self.adj[v] {
                let cu = coarse_id[u as usize];
                if cu != cv {
                    *buckets[cv as usize].entry(cu).or_insert(0.0) += w;
                }
            }
        }
        for (cv, bucket) in buckets.into_iter().enumerate() {
            // BTreeMap iterates in key order, so coarse rows come out
            // sorted (and partitions deterministic per seed) by construction.
            adj[cv] = bucket.into_iter().collect();
        }
        (WorkGraph { adj, node_weight }, coarse_id)
    }
}

/// Bisects `graph` into sides 0/1 with side-0 weight targeting
/// `frac * total`. Returns the side labels.
fn bisect<R: Rng + ?Sized>(
    graph: &WorkGraph,
    frac: f64,
    options: &MetisOptions,
    rng: &mut R,
) -> Vec<u8> {
    // Multilevel: coarsen until small.
    let mut levels: Vec<(WorkGraph, Vec<u32>)> = Vec::new();
    let mut current = graph.clone();
    while current.len() > options.coarsen_threshold {
        let (coarse, mapping) = current.coarsen(rng);
        // Matching can stall on star-like graphs; stop if little progress.
        if coarse.len() as f64 > current.len() as f64 * 0.95 {
            levels.push((current.clone(), mapping));
            current = coarse;
            break;
        }
        levels.push((current.clone(), mapping));
        current = coarse;
    }
    let mut side = initial_bisection(&current, frac, rng);
    refine(&current, &mut side, frac, options);
    // Uncoarsen.
    while let Some((fine, mapping)) = levels.pop() {
        let mut fine_side = vec![0u8; fine.len()];
        for v in 0..fine.len() {
            fine_side[v] = side[mapping[v] as usize];
        }
        side = fine_side;
        refine(&fine, &mut side, frac, options);
    }
    side
}

/// Greedy BFS region growing from a pseudo-peripheral node.
fn initial_bisection<R: Rng + ?Sized>(graph: &WorkGraph, frac: f64, rng: &mut R) -> Vec<u8> {
    let n = graph.len();
    let total = graph.total_weight();
    let target = frac * total;
    if n == 0 {
        return Vec::new();
    }
    // Pseudo-peripheral: BFS twice.
    let start = rng.gen_range(0..n) as u32;
    let far = bfs_farthest(graph, start);
    let seed = bfs_farthest(graph, far);

    let mut side = vec![1u8; n];
    let mut weight0 = 0.0;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(seed);
    visited[seed as usize] = true;
    let mut pending: Vec<u32> = (0..n as u32).collect(); // for disconnected remainder
    pending.shuffle(rng);
    let mut pending_idx = 0usize;
    while weight0 < target {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Disconnected: seed a new component.
                let mut found = None;
                while pending_idx < pending.len() {
                    let c = pending[pending_idx];
                    pending_idx += 1;
                    if !visited[c as usize] {
                        found = Some(c);
                        break;
                    }
                }
                match found {
                    Some(c) => {
                        visited[c as usize] = true;
                        c
                    }
                    None => break,
                }
            }
        };
        side[v as usize] = 0;
        weight0 += graph.node_weight[v as usize];
        for &(u, _) in &graph.adj[v as usize] {
            if !visited[u as usize] {
                visited[u as usize] = true;
                queue.push_back(u);
            }
        }
    }
    side
}

fn bfs_farthest(graph: &WorkGraph, start: u32) -> u32 {
    let n = graph.len();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    queue.push_back(start);
    let mut last = start;
    while let Some(v) = queue.pop_front() {
        last = v;
        for &(u, _) in &graph.adj[v as usize] {
            if dist[u as usize] == usize::MAX {
                dist[u as usize] = dist[v as usize] + 1;
                queue.push_back(u);
            }
        }
    }
    last
}

/// Boundary FM refinement: repeated passes of gain-ordered single-node moves
/// with hill climbing (keep the best prefix of each pass).
fn refine(graph: &WorkGraph, side: &mut [u8], frac: f64, options: &MetisOptions) {
    let n = graph.len();
    let total = graph.total_weight();
    let target0 = frac * total;
    let max0 = target0 * options.imbalance + 1e-9;
    let min0 = total - (total - target0) * options.imbalance - 1e-9;

    let mut weight0: f64 = (0..n)
        .filter(|&v| side[v] == 0)
        .map(|v| graph.node_weight[v])
        .sum();

    for _pass in 0..options.refinement_passes {
        // gain(v) = external weight - internal weight.
        let gain = |v: usize, side: &[u8]| -> f64 {
            let mut g = 0.0;
            for &(u, w) in &graph.adj[v] {
                if side[u as usize] != side[v] {
                    g += w;
                } else {
                    g -= w;
                }
            }
            g
        };
        let mut locked = vec![false; n];
        let mut moves: Vec<u32> = Vec::new();
        let mut cumulative = 0.0;
        let mut best_prefix = 0usize;
        let mut best_gain = 0.0;
        let mut w0 = weight0;
        // Bounded number of moves per pass to keep refinement O(n log n)-ish.
        let max_moves = n.min(2 * boundary_size(graph, side) + 16);
        for _ in 0..max_moves {
            // Pick the best movable boundary node.
            let mut best: Option<(usize, f64)> = None;
            for v in 0..n {
                if locked[v] {
                    continue;
                }
                let on_boundary =
                    graph.adj[v].iter().any(|&(u, _)| side[u as usize] != side[v]);
                if !on_boundary {
                    continue;
                }
                // Balance feasibility.
                let nw = graph.node_weight[v];
                let new_w0 = if side[v] == 0 { w0 - nw } else { w0 + nw };
                if new_w0 > max0 || new_w0 < min0 {
                    continue;
                }
                let g = gain(v, side);
                if best.is_none_or(|(_, bg)| g > bg) {
                    best = Some((v, g));
                }
            }
            let Some((v, g)) = best else { break };
            // Apply the move tentatively.
            let nw = graph.node_weight[v];
            w0 = if side[v] == 0 { w0 - nw } else { w0 + nw };
            side[v] = 1 - side[v];
            locked[v] = true;
            moves.push(v as u32);
            cumulative += g;
            if cumulative > best_gain {
                best_gain = cumulative;
                best_prefix = moves.len();
            }
        }
        // Roll back moves beyond the best prefix.
        for &v in &moves[best_prefix..] {
            let v = v as usize;
            let nw = graph.node_weight[v];
            w0 = if side[v] == 0 { w0 - nw } else { w0 + nw };
            side[v] = 1 - side[v];
        }
        weight0 = w0;
        if best_prefix == 0 {
            break; // no improving prefix: converged
        }
    }
}

fn boundary_size(graph: &WorkGraph, side: &[u8]) -> usize {
    (0..graph.len())
        .filter(|&v| graph.adj[v].iter().any(|&(u, _)| side[u as usize] != side[v]))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;
    use splpg_graph::GraphBuilder;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(7)
    }

    /// Two dense clusters joined by a single bridge edge.
    fn two_cliques(k: usize) -> Graph {
        let mut b = GraphBuilder::new(2 * k);
        for i in 0..k as NodeId {
            for j in (i + 1)..k as NodeId {
                b.add_edge(i, j).unwrap();
                b.add_edge(k as NodeId + i, k as NodeId + j).unwrap();
            }
        }
        b.add_edge(0, k as NodeId).unwrap();
        b.build()
    }

    #[test]
    fn bisects_two_cliques_on_the_bridge() {
        let g = two_cliques(20);
        let p = MetisLike::default().partition(&g, 2, &mut rng()).unwrap();
        assert_eq!(p.edge_cut(&g), 1, "should cut exactly the bridge");
        assert_eq!(p.part_sizes(), vec![20, 20]);
    }

    #[test]
    fn respects_part_count_and_coverage() {
        let g = two_cliques(10);
        for parts in [2usize, 3, 4, 5] {
            let p = MetisLike::default().partition(&g, parts, &mut rng()).unwrap();
            assert_eq!(p.num_parts(), parts);
            let sizes = p.part_sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 20);
            assert!(sizes.iter().all(|&s| s > 0), "empty part in {sizes:?}");
        }
    }

    #[test]
    fn path_graph_low_cut() {
        let n = 256;
        let edges: Vec<(NodeId, NodeId)> =
            (0..n - 1).map(|i| (i as NodeId, (i + 1) as NodeId)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let p = MetisLike::default().partition(&g, 4, &mut rng()).unwrap();
        // Optimal cut for a path into 4 parts is 3.
        assert!(p.edge_cut(&g) <= 8, "cut {} too high", p.edge_cut(&g));
        assert!(p.balance() < 1.3, "imbalance {}", p.balance());
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = Graph::from_edges(10, &[(0, 1), (2, 3), (4, 5), (6, 7), (8, 9)]).unwrap();
        let p = MetisLike::default().partition(&g, 2, &mut rng()).unwrap();
        assert_eq!(p.part_sizes().iter().sum::<usize>(), 10);
    }

    #[test]
    fn rejects_bad_part_counts() {
        let g = two_cliques(3);
        assert!(MetisLike::default().partition(&g, 0, &mut rng()).is_err());
        assert!(MetisLike::default().partition(&g, 100, &mut rng()).is_err());
    }

    #[test]
    fn single_part_is_identity() {
        let g = two_cliques(4);
        let p = MetisLike::default().partition(&g, 1, &mut rng()).unwrap();
        assert!(p.assignments().iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = two_cliques(12);
        let p1 = MetisLike::default().partition(&g, 4, &mut rng()).unwrap();
        let p2 = MetisLike::default().partition(&g, 4, &mut rng()).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn locality_beats_random_on_community_graph() {
        // The core premise of the paper's analysis: METIS-style partitions
        // keep most edges local, random ones do not.
        let g = two_cliques(30);
        let metis = MetisLike::default().partition(&g, 2, &mut rng()).unwrap();
        let random = crate::RandomTma.partition(&g, 2, &mut rng()).unwrap();
        assert!(metis.local_edge_fraction(&g) > random.local_edge_fraction(&g));
    }
}
