//! Scoped data-parallelism for the SpLPG workspace.
//!
//! The distributed trainer's `Barrier`-synchronized workers model the
//! paper's *cluster*; this crate supplies the parallelism *inside* one
//! worker: cache-blocked tensor kernels, per-seed fan-out sampling, and
//! per-partition setup all fan work out over a pool of OS threads.
//!
//! # Design
//!
//! * **Fork-join over [`std::thread::scope`].** Each [`Pool`] call splits
//!   its item range into at most `threads` contiguous chunks, runs one
//!   chunk on the calling thread and the rest on freshly-scoped threads,
//!   and joins before returning. The scope's implicit join is the barrier;
//!   borrowed data flows into the closures without `unsafe` or `'static`
//!   bounds. Spawn cost (tens of microseconds) is amortized by the
//!   per-call work thresholds at every call site.
//! * **Global sizing, local override.** [`global`] returns a pool sized by
//!   the `SPLPG_NUM_THREADS` environment variable (default: available
//!   parallelism); [`set_num_threads`] overrides it at runtime, which the
//!   kernel bench uses to sweep 1/2/4/8 threads inside one process.
//! * **Determinism by partitioning, not by luck.** Every helper assigns
//!   each item (or output row) to exactly one chunk, and chunk boundaries
//!   depend only on `(items, threads)`. Callers that need bit-identical
//!   results across thread counts simply make per-item work independent of
//!   its chunk — see `splpg-tensor`'s kernels, where each output row is
//!   accumulated in the same order no matter which thread owns it, and
//!   `splpg-gnn`'s sampler, where each seed node draws from its own
//!   derived RNG stream.
//!
//! # Examples
//!
//! ```
//! let pool = splpg_par::Pool::new(4);
//! let mut out = vec![0u64; 1000];
//! pool.parallel_for_mut(&mut out, 1, 1, |start, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (start + i) as u64 * 2;
//!     }
//! });
//! assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Runtime override for the global pool size (0 = not set).
static NUM_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Thread count for the global pool.
///
/// Resolution order: [`set_num_threads`] override, then the
/// `SPLPG_NUM_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn num_threads() -> usize {
    let over = NUM_THREADS_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    if let Ok(s) = std::env::var("SPLPG_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Overrides the global pool size for this process (`0` clears the
/// override). Used by benches and the determinism tests to sweep thread
/// counts without re-exec'ing.
pub fn set_num_threads(n: usize) {
    NUM_THREADS_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Threads the hardware can actually run concurrently
/// ([`std::thread::available_parallelism`], min 1). Unlike
/// [`num_threads`], this ignores `SPLPG_NUM_THREADS` and
/// [`set_num_threads`]: it answers "how many chunks can make progress at
/// once", not "how many the caller asked for".
pub fn hardware_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Concurrency that fan-out can actually buy:
/// `min(num_threads(), hardware_threads())`.
///
/// Dispatch heuristics should consult this instead of [`num_threads`]:
/// an oversubscribed pool (e.g. `SPLPG_NUM_THREADS=8` inside a 1-CPU
/// container) pays full fork-join overhead while its chunks run
/// *serially*, so work that is only worth splitting across real cores
/// should fall back to the scalar path. Results are unaffected either
/// way — every kernel in the workspace is bit-identical at any thread
/// count — only the spawn overhead is.
pub fn effective_threads() -> usize {
    num_threads().min(hardware_threads())
}

/// The global pool, sized per [`num_threads`] at each call.
pub fn global() -> Pool {
    Pool::new(num_threads())
}

/// Balanced contiguous split of `0..items` into at most `parts` non-empty
/// ranges. The first `items % parts` ranges get one extra item, so sizes
/// differ by at most one and boundaries are a pure function of the inputs.
pub fn partition_items(items: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(items.max(1));
    if items == 0 {
        return Vec::new();
    }
    let base = items / parts;
    let extra = items % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Hosts `actors` long-lived actor bodies on dedicated scoped threads
/// while `master` runs on the calling thread; returns `master`'s result
/// after every actor has finished.
///
/// This is the *other* threading shape the workspace needs, next to the
/// fork-join [`Pool`]: the distributed cluster runtime (`splpg-net`) runs
/// one worker replica per actor for the whole lifetime of a training run,
/// exchanging messages with the master instead of joining after each work
/// item. Actors are identified by index and are never chunked, so the
/// actor count is a property of the cluster, not of the pool width —
/// thread-count invariance is unaffected.
///
/// Deadlock discipline is the caller's: `master` must, before returning,
/// release whatever the actors block on (e.g. drop its channel endpoints)
/// so the implicit join in this scope can complete.
///
/// # Examples
///
/// ```
/// use std::sync::mpsc::sync_channel;
/// let (tx, rx) = sync_channel(4);
/// let sum = splpg_par::actor_scope(
///     3,
///     |i| tx.clone().send(i as u64 + 1).unwrap(),
///     || (0..3).map(|_| rx.recv().unwrap()).sum::<u64>(),
/// );
/// assert_eq!(sum, 6);
/// ```
pub fn actor_scope<R>(actors: usize, actor: impl Fn(usize) + Sync, master: impl FnOnce() -> R) -> R {
    thread::scope(|s| {
        let actor = &actor;
        let handles: Vec<_> = (0..actors).map(|i| s.spawn(move || actor(i))).collect();
        let result = master();
        for h in handles {
            h.join().expect("actor panicked");
        }
        result
    })
}

/// A fixed-width fork-join worker pool.
///
/// `Pool` is a value, not a handle to live threads: each call spawns its
/// workers inside a [`std::thread::scope`] and joins them before
/// returning, so there is no shutdown protocol and no `'static` bound on
/// the work closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool running work on up to `threads` threads (min 1).
    pub fn new(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// The configured thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(range)` over a balanced partition of `0..items`.
    ///
    /// Falls back to a single inline call when the pool has one thread or
    /// `items < min_per_thread * 2` (not enough work to pay for a spawn).
    /// `f` observes each item index exactly once across all invocations.
    pub fn parallel_for<F>(&self, items: usize, min_per_thread: usize, f: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if items == 0 {
            return;
        }
        let parts = self.effective_parts(items, min_per_thread);
        if parts <= 1 {
            f(0..items);
            return;
        }
        let ranges = partition_items(items, parts);
        thread::scope(|s| {
            let f = &f;
            // First chunk runs on the calling thread; spawn the rest.
            let (head, tail) = ranges.split_first().expect("non-empty partition");
            let handles: Vec<_> =
                tail.iter().map(|r| s.spawn(move || f(r.clone()))).collect();
            f(head.clone());
            for h in handles {
                h.join().expect("pool worker panicked");
            }
        });
    }

    /// Order-preserving parallel map: returns `items.iter().map(f)` with
    /// the work chunked across the pool.
    pub fn parallel_map_chunks<T, U, F>(&self, items: &[T], min_per_thread: usize, f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let parts = self.effective_parts(n, min_per_thread);
        if parts <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let ranges = partition_items(n, parts);
        thread::scope(|s| {
            let f = &f;
            let (head, tail) = ranges.split_first().expect("non-empty partition");
            let handles: Vec<_> = tail
                .iter()
                .map(|r| {
                    let r = r.clone();
                    s.spawn(move || r.map(|i| f(i, &items[i])).collect::<Vec<U>>())
                })
                .collect();
            let mut out: Vec<U> = Vec::with_capacity(n);
            out.extend(head.clone().map(|i| f(i, &items[i])));
            for h in handles {
                out.extend(h.join().expect("pool worker panicked"));
            }
            out
        })
    }

    /// Splits `data` into contiguous runs of whole items (`item_len`
    /// elements each) and runs `f(first_item_index, chunk)` on each run in
    /// parallel. This is how kernels hand each thread exclusive ownership
    /// of its output rows.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of `item_len`.
    pub fn parallel_for_mut<T, F>(&self, data: &mut [T], item_len: usize, min_per_thread: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(item_len > 0, "item_len must be positive");
        assert_eq!(data.len() % item_len, 0, "data must hold whole items");
        let items = data.len() / item_len;
        if items == 0 {
            return;
        }
        let parts = self.effective_parts(items, min_per_thread);
        if parts <= 1 {
            f(0, data);
            return;
        }
        let ranges = partition_items(items, parts);
        thread::scope(|s| {
            let f = &f;
            let mut rest = data;
            let mut handles = Vec::with_capacity(ranges.len());
            for r in &ranges {
                let (chunk, tail) = rest.split_at_mut((r.end - r.start) * item_len);
                rest = tail;
                let start = r.start;
                handles.push(s.spawn(move || f(start, chunk)));
            }
            for h in handles {
                h.join().expect("pool worker panicked");
            }
        });
    }

    /// Number of chunks worth creating for `items` given the per-thread
    /// floor: 1 when parallelism wouldn't pay, else up to `threads`.
    fn effective_parts(&self, items: usize, min_per_thread: usize) -> usize {
        if self.threads <= 1 {
            return 1;
        }
        let floor = min_per_thread.max(1);
        // Chunks sized below the floor spend more on spawn than on work.
        (items / floor).clamp(1, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_covers_all_items_once() {
        for items in [0usize, 1, 2, 7, 16, 101] {
            for parts in [1usize, 2, 3, 8, 200] {
                let ranges = partition_items(items, parts);
                let mut covered = vec![0u8; items];
                for r in &ranges {
                    for i in r.clone() {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "items {items} parts {parts}");
                if items > 0 {
                    assert!(ranges.len() <= parts.max(1));
                    let max = ranges.iter().map(|r| r.len()).max().unwrap();
                    let min = ranges.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "balanced split");
                }
            }
        }
    }

    #[test]
    fn parallel_for_touches_every_index() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(hits.len(), 1, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_preserves_order() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..997).collect();
        let out = pool.parallel_map_chunks(&items, 1, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_for_mut_writes_disjoint_rows() {
        let pool = Pool::new(8);
        let cols = 5;
        let mut data = vec![0usize; 64 * cols];
        pool.parallel_for_mut(&mut data, cols, 1, |start, chunk| {
            for (r, row) in chunk.chunks_mut(cols).enumerate() {
                for v in row.iter_mut() {
                    *v = start + r;
                }
            }
        });
        for (r, row) in data.chunks(cols).enumerate() {
            assert!(row.iter().all(|&v| v == r), "row {r}");
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let mut sum = 0u64;
        // &mut capture proves f ran on the calling thread (Fn + Sync would
        // forbid this if it were spawned).
        let cell = std::sync::Mutex::new(&mut sum);
        pool.parallel_for(100, 1, |range| {
            let mut guard = cell.lock().unwrap();
            **guard += range.len() as u64;
        });
        assert_eq!(sum, 100);
    }

    #[test]
    fn threshold_suppresses_parallelism() {
        let pool = Pool::new(8);
        assert_eq!(pool.effective_parts(10, 16), 1);
        assert_eq!(pool.effective_parts(32, 16), 2);
        assert_eq!(pool.effective_parts(1000, 1), 8);
    }

    #[test]
    fn num_threads_override_round_trip() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        assert_eq!(global().threads(), 3);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn hardware_and_effective_threads_are_sane() {
        // No override mutation here: these run concurrently with the
        // round-trip test, so only invariants that hold under any
        // override value are asserted.
        assert!(hardware_threads() >= 1);
        assert!(effective_threads() >= 1);
        assert!(effective_threads() <= hardware_threads().max(num_threads()));
    }

    #[test]
    fn actor_scope_joins_all_actors_and_returns_master_result() {
        let flags: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let out = actor_scope(
            5,
            |i| {
                flags[i].fetch_add(1, Ordering::SeqCst);
            },
            || 42u32,
        );
        assert_eq!(out, 42);
        assert!(flags.iter().all(|f| f.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn actor_scope_with_zero_actors_runs_master_inline() {
        assert_eq!(actor_scope(0, |_| unreachable!(), || "done"), "done");
    }

    #[test]
    fn map_on_empty_and_tiny_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(pool.parallel_map_chunks(&empty, 1, |_, &x| x).is_empty());
        let one = [7u32];
        assert_eq!(pool.parallel_map_chunks(&one, 1, |_, &x| x + 1), vec![8]);
        pool.parallel_for(0, 1, |_| panic!("no items, no calls"));
    }
}
