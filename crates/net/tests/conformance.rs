//! The transport-conformance battery run against every transport in the
//! crate from one shared body — the documented bar for adding a fourth:
//! build a fresh-pair fixture and call `run_conformance`.

use splpg_net::conformance::{run_conformance, run_conformance_with, ConformancePair};
use splpg_net::{
    ChannelTransport, CodecConfig, FaultPlan, FaultyTransport, FeatCodec, ShmTransport,
    StructCodec, TcpConfig, TcpTransport, WireStats,
};

/// Small enough that the battery can build an oversized frame cheaply,
/// large enough for every well-formed fixture frame.
const CAP: usize = 4096;

fn channel_pair() -> ConformancePair {
    let stats = WireStats::new();
    let (a, b) = ChannelTransport::pair(64, stats.clone());
    ConformancePair {
        a: Box::new(a.with_max_frame_len(CAP)),
        b: Box::new(b.with_max_frame_len(CAP)),
        stats,
        max_frame_len: CAP,
    }
}

fn tcp_pair() -> ConformancePair {
    let stats = WireStats::new();
    let config = TcpConfig { max_frame_len: CAP, ..TcpConfig::default() };
    let (a, b) = TcpTransport::pair(&config, stats.clone()).expect("loopback TCP unavailable");
    ConformancePair { a: Box::new(a), b: Box::new(b), stats, max_frame_len: CAP }
}

#[test]
fn channel_transport_conforms() {
    run_conformance(&mut channel_pair);
}

#[test]
fn faulty_transport_with_inactive_plan_conforms() {
    // A FaultyTransport whose plan injects nothing must be perfectly
    // transparent — same spec, zero probabilities, over channels.
    run_conformance(&mut || {
        let inner = channel_pair();
        let plan = FaultPlan::default();
        ConformancePair {
            a: Box::new(FaultyTransport::new(inner.a, plan.clone(), 0, inner.stats.clone())),
            b: Box::new(FaultyTransport::new(inner.b, plan, 1, inner.stats.clone())),
            stats: inner.stats,
            max_frame_len: inner.max_frame_len,
        }
    });
}

#[test]
fn tcp_transport_conforms() {
    run_conformance(&mut tcp_pair);
}

fn shm_pair() -> ConformancePair {
    let stats = WireStats::new();
    let (a, b) = ShmTransport::pair(CAP, stats.clone()).expect("shm segment");
    ConformancePair { a: Box::new(a), b: Box::new(b), stats, max_frame_len: CAP }
}

/// Hosts without a usable `/dev/shm` (minimal sandboxes) skip the
/// shm-lane passes instead of failing them — the same courtesy the
/// process tests extend to hosts without loopback sockets.
fn shm_skip() -> bool {
    if splpg_net::shm::shm_available() {
        false
    } else {
        eprintln!("skipping: no usable /dev/shm on this host");
        true
    }
}

#[test]
fn shm_transport_conforms() {
    if shm_skip() {
        return;
    }
    run_conformance(&mut shm_pair);
}

#[test]
fn shm_transport_conforms_with_compression() {
    if shm_skip() {
        return;
    }
    for cfg in compressed_configs() {
        run_conformance_with(&mut shm_pair, cfg);
    }
}

#[test]
fn faulty_transport_over_shm_conforms() {
    // The chaos decorator composed over shared-memory rings, plan
    // inactive — the stack a fault-injected co-located run would use.
    if shm_skip() {
        return;
    }
    run_conformance(&mut || {
        let inner = shm_pair();
        let plan = FaultPlan::default();
        ConformancePair {
            a: Box::new(FaultyTransport::new(inner.a, plan.clone(), 0, inner.stats.clone())),
            b: Box::new(FaultyTransport::new(inner.b, plan, 1, inner.stats.clone())),
            stats: inner.stats,
            max_frame_len: inner.max_frame_len,
        }
    });
}

/// The codec pairs the compression-enabled passes run under: the two
/// structure codecs crossed with each quantization mode.
fn compressed_configs() -> Vec<CodecConfig> {
    vec![
        CodecConfig { structure: StructCodec::Varint, features: FeatCodec::F32 },
        CodecConfig { structure: StructCodec::Rle, features: FeatCodec::F16 },
        CodecConfig { structure: StructCodec::Varint, features: FeatCodec::Int8 },
    ]
}

#[test]
fn channel_transport_conforms_with_compression() {
    for cfg in compressed_configs() {
        run_conformance_with(&mut channel_pair, cfg);
    }
}

#[test]
fn faulty_transport_conforms_with_compression() {
    for cfg in compressed_configs() {
        run_conformance_with(
            &mut || {
                let inner = channel_pair();
                let plan = FaultPlan::default();
                ConformancePair {
                    a: Box::new(FaultyTransport::new(
                        inner.a,
                        plan.clone(),
                        0,
                        inner.stats.clone(),
                    )),
                    b: Box::new(FaultyTransport::new(inner.b, plan, 1, inner.stats.clone())),
                    stats: inner.stats,
                    max_frame_len: inner.max_frame_len,
                }
            },
            cfg,
        );
    }
}

#[test]
fn tcp_transport_conforms_with_compression() {
    for cfg in compressed_configs() {
        run_conformance_with(&mut tcp_pair, cfg);
    }
}

#[test]
fn faulty_transport_over_tcp_conforms() {
    // The chaos decorator composed over real sockets, plan inactive:
    // the stack the multi-process chaos tests run with.
    run_conformance(&mut || {
        let inner = tcp_pair();
        let plan = FaultPlan::default();
        ConformancePair {
            a: Box::new(FaultyTransport::new(inner.a, plan.clone(), 0, inner.stats.clone())),
            b: Box::new(FaultyTransport::new(inner.b, plan, 1, inner.stats.clone())),
            stats: inner.stats,
            max_frame_len: inner.max_frame_len,
        }
    });
}
