//! Transport-conformance battery: the executable spec every
//! [`Transport`] implementation must pass.
//!
//! A fixture hands [`run_conformance`] a closure producing *fresh*
//! connected duplex pairs (with fresh [`WireStats`]); the battery runs
//! every check against a new pair so no check can mask another. The
//! same body runs against [`ChannelTransport`], [`FaultyTransport`]
//! (with an inactive plan — active plans intentionally violate
//! delivery), and [`TcpTransport`] — and is the bar for adding a
//! fourth transport: make a pair, call the battery, done.
//!
//! Checks:
//!
//! 1. **Ordering** — frames arrive exactly once, in send order, both
//!    directions of the duplex pair.
//! 2. **Timeout expiry** — `recv_timeout` on a quiet lane returns
//!    `Ok(None)`, and a pending frame is delivered within the window.
//! 3. **Stats accounting** — `messages` and `bytes` advance by exactly
//!    the frames and bytes sent.
//! 4. **Oversized-frame rejection** — a frame whose body exceeds the
//!    pair's cap is refused with [`NetError::FrameTooLarge`], counts
//!    nothing, and never reaches the peer.
//! 5. **Drain-then-close** — frames queued before the peer dropped are
//!    still delivered; only then does `recv` report
//!    [`NetError::Closed`].
//! 6. **Recv after peer drop** — both `recv` and `recv_timeout` report
//!    [`NetError::Closed`], not a hang or a panic.
//! 7. **Send after peer drop** — `send` reports [`NetError::Closed`]
//!    within a bounded number of attempts (a socket may buffer a few
//!    frames before the broken pipe surfaces).
//!
//! [`ChannelTransport`]: crate::ChannelTransport
//! [`FaultyTransport`]: crate::FaultyTransport
//! [`TcpTransport`]: crate::TcpTransport

use std::time::Duration;

use crate::compress::{CodecConfig, FeatCodec};
use crate::message::{Message, MsgId, Request, Response};
use crate::transport::{Transport, WireStats};
use crate::NetError;

/// One connected duplex pair under test, produced fresh per check.
pub struct ConformancePair {
    /// First endpoint; checks treat it as the primary sender.
    pub a: Box<dyn Transport>,
    /// Second endpoint, connected to `a`.
    pub b: Box<dyn Transport>,
    /// Counters shared by (at least) `a`'s send side, fresh per pair.
    pub stats: WireStats,
    /// Frame-body cap both endpoints enforce. Must be small enough
    /// that [`oversized_frame`] can exceed it (≤ 1 MiB).
    pub max_frame_len: usize,
}

/// A valid encoded request frame, parameterized for distinguishability.
pub fn request_frame(epoch: u64, params: usize) -> Vec<u8> {
    request_frame_with(epoch, params, CodecConfig::default())
}

/// [`request_frame`] under an explicit codec pair.
pub fn request_frame_with(epoch: u64, params: usize, cfg: CodecConfig) -> Vec<u8> {
    crate::codec::encode_with(
        &Message::Request(Request::Epoch {
            id: MsgId { worker: 0, epoch, round: 0, attempt: 0 },
            params: (0..params).map(|i| i as f32 * 0.5 - epoch as f32).collect(),
        }),
        cfg,
    )
}

/// A valid encoded response frame (the reverse direction of the
/// protocol), parameterized for distinguishability.
pub fn response_frame(epoch: u64) -> Vec<u8> {
    response_frame_with(epoch, CodecConfig::default())
}

/// [`response_frame`] under an explicit codec pair.
pub fn response_frame_with(epoch: u64, cfg: CodecConfig) -> Vec<u8> {
    crate::codec::encode_with(
        &Message::Response(Response::Epoch {
            id: MsgId { worker: 1, epoch, round: 0, attempt: 0 },
            params: vec![epoch as f32; 3],
            loss_sum: epoch as f64 * 0.25,
            batches: epoch + 1,
            ledger: crate::message::FetchLedger::default(),
        }),
        cfg,
    )
}

/// A valid encoded frame whose body exceeds `max_frame_len`.
pub fn oversized_frame(max_frame_len: usize) -> Vec<u8> {
    oversized_frame_with(max_frame_len, CodecConfig::default())
}

/// [`oversized_frame`] under an explicit codec pair: the element count
/// scales with the codec's bytes-per-element so the *encoded* body still
/// overshoots the cap — the transport cap and the decoder's decoded-size
/// cap reject the same fixture in every mode.
pub fn oversized_frame_with(max_frame_len: usize, cfg: CodecConfig) -> Vec<u8> {
    let params = match cfg.features {
        FeatCodec::F32 => max_frame_len / 4 + 16,
        FeatCodec::F16 => max_frame_len / 2 + 16,
        // ~1.125 wire bytes per element (codes + per-block headers).
        FeatCodec::Int8 => max_frame_len + 128,
    };
    let frame = request_frame_with(0, params, cfg);
    assert!(
        frame.len() - 4 > max_frame_len,
        "fixture cap {max_frame_len} too large to overshoot under {cfg:?}"
    );
    frame
}

/// Window within which a pending frame must be delivered. Generous so
/// loaded CI never flakes; the happy path returns in microseconds.
const DELIVERY_WINDOW: Duration = Duration::from_secs(10);

/// Attempts before a send into a dead peer must have reported closure.
const CLOSE_ATTEMPTS: usize = 500;

/// Runs the full battery. `make` must return a *fresh* connected pair
/// (fresh stats included) on every call. Panics with a description of
/// the violated check — designed to run inside `#[test]` bodies.
pub fn run_conformance(make: &mut dyn FnMut() -> ConformancePair) {
    run_conformance_with(make, CodecConfig::default());
}

/// Runs the full battery with every fixture frame encoded under `cfg` —
/// the compression-enabled pass: compressed frames must honour the same
/// ordering, rejection and close semantics as raw ones.
pub fn run_conformance_with(make: &mut dyn FnMut() -> ConformancePair, cfg: CodecConfig) {
    check_ordering(make(), cfg);
    check_timeout_expiry(make(), cfg);
    check_stats_accounting(make(), cfg);
    check_oversized_rejection(make(), cfg);
    check_drain_then_close(make(), cfg);
    check_recv_after_peer_drop(make());
    check_send_after_peer_drop(make(), cfg);
}

fn check_ordering(mut pair: ConformancePair, cfg: CodecConfig) {
    for e in 0..16 {
        pair.a.send(request_frame_with(e, 8, cfg)).expect("ordering: send a→b");
    }
    for e in 0..16 {
        let got = pair.b.recv().expect("ordering: recv on b");
        assert_eq!(got, request_frame_with(e, 8, cfg), "ordering: frame {e} out of order on b");
    }
    for e in 0..16 {
        pair.b.send(response_frame_with(e, cfg)).expect("ordering: send b→a");
    }
    for e in 0..16 {
        let got = pair.a.recv().expect("ordering: recv on a");
        assert_eq!(got, response_frame_with(e, cfg), "ordering: frame {e} out of order on a");
    }
}

fn check_timeout_expiry(mut pair: ConformancePair, cfg: CodecConfig) {
    let quiet = pair
        .b
        .recv_timeout(Duration::from_millis(10))
        .expect("timeout: quiet window errored");
    assert_eq!(quiet, None, "timeout: quiet window produced a frame");
    pair.a.send(request_frame_with(1, 4, cfg)).expect("timeout: send");
    let got = pair
        .b
        .recv_timeout(DELIVERY_WINDOW)
        .expect("timeout: pending recv errored")
        .expect("timeout: pending frame not delivered within the window");
    assert_eq!(got, request_frame_with(1, 4, cfg));
}

fn check_stats_accounting(mut pair: ConformancePair, cfg: CodecConfig) {
    let before = pair.stats.snapshot();
    let mut sent_bytes = 0u64;
    for e in 0..8 {
        let frame = request_frame_with(e, e as usize + 1, cfg);
        sent_bytes += frame.len() as u64;
        pair.a.send(frame).expect("stats: send");
    }
    for _ in 0..8 {
        pair.b.recv().expect("stats: recv");
    }
    let after = pair.stats.snapshot();
    assert_eq!(after.messages - before.messages, 8, "stats: message count off");
    assert_eq!(after.bytes - before.bytes, sent_bytes, "stats: byte count off");
    assert_eq!(after.dropped, before.dropped, "stats: phantom drops");
}

fn check_oversized_rejection(mut pair: ConformancePair, cfg: CodecConfig) {
    let before = pair.stats.snapshot();
    let err = pair
        .a
        .send(oversized_frame_with(pair.max_frame_len, cfg))
        .expect_err("oversize: frame over the cap was accepted");
    assert!(
        matches!(err, NetError::FrameTooLarge { .. }),
        "oversize: wrong error type: {err}"
    );
    let after = pair.stats.snapshot();
    assert_eq!(after.messages, before.messages, "oversize: rejected frame was counted");
    assert_eq!(after.bytes, before.bytes, "oversize: rejected bytes were counted");
    let leaked = pair
        .b
        .recv_timeout(Duration::from_millis(30))
        .expect("oversize: peer probe errored");
    assert_eq!(leaked, None, "oversize: rejected frame reached the peer");
    // The lane must still work afterwards.
    pair.a.send(request_frame_with(2, 4, cfg)).expect("oversize: lane dead after rejection");
    let got = pair
        .b
        .recv_timeout(DELIVERY_WINDOW)
        .expect("oversize: follow-up recv errored")
        .expect("oversize: follow-up frame not delivered");
    assert_eq!(got, request_frame_with(2, 4, cfg));
}

fn check_drain_then_close(mut pair: ConformancePair, cfg: CodecConfig) {
    pair.a.send(request_frame_with(3, 16, cfg)).expect("drain: send");
    drop(pair.a);
    let got = pair.b.recv().expect("drain: queued frame lost when the sender dropped");
    assert_eq!(got, request_frame_with(3, 16, cfg), "drain: queued frame corrupted");
    assert_eq!(
        pair.b.recv().expect_err("drain: recv after drain must fail"),
        NetError::Closed,
        "drain: wrong error after drain"
    );
}

fn check_recv_after_peer_drop(mut pair: ConformancePair) {
    drop(pair.a);
    assert_eq!(
        pair.b.recv().expect_err("peer-drop: recv must fail"),
        NetError::Closed,
        "peer-drop: wrong recv error"
    );
    assert_eq!(
        pair.b
            .recv_timeout(Duration::from_millis(50))
            .expect_err("peer-drop: recv_timeout must fail"),
        NetError::Closed,
        "peer-drop: wrong recv_timeout error"
    );
}

fn check_send_after_peer_drop(mut pair: ConformancePair, cfg: CodecConfig) {
    drop(pair.b);
    for attempt in 0..CLOSE_ATTEMPTS {
        match pair.a.send(request_frame_with(attempt as u64, 4, cfg)) {
            Ok(()) => std::thread::sleep(Duration::from_millis(2)),
            Err(NetError::Closed) => return,
            Err(e) => panic!("send-after-drop: wrong error {e}"),
        }
    }
    panic!("send-after-drop: closure never surfaced in {CLOSE_ATTEMPTS} attempts");
}
