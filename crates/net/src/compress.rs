//! Wire compression and quantization codecs — dependency-free.
//!
//! [`CodecConfig`] names a `(structure, features)` codec pair. Every
//! frame carries the pair packed into one self-describing byte (high
//! nibble = format version, see [`FORMAT_VERSION`]), so a receiver
//! decodes whatever arrives without out-of-band negotiation, and a
//! version-mismatched peer surfaces as a typed [`NetError::Codec`]
//! instead of silently mangled payloads.
//!
//! Structure payloads — sorted node-id lists on the data plane, and the
//! integer side-data of control frames (vector lengths, ledger counts) —
//! pack as zigzag deltas in LEB128 varints ([`StructCodec::Varint`]),
//! optionally with run-length encoding of consecutive id runs
//! ([`StructCodec::Rle`]). Feature payloads (`f32` vectors) ship raw
//! ([`FeatCodec::F32`]), as IEEE-754 binary16 ([`FeatCodec::F16`]), or
//! as per-row int8 codes under an `[lo, scale]` affine header
//! ([`FeatCodec::Int8`]).
//!
//! Tolerance contract: lossless modes (`F32` with any structure codec)
//! are bit-exact. `F16` is exact within 2^-11 relative error over the
//! binary16 normal range (and saturates to ±∞ beyond ±65504). `Int8`
//! reconstructs every finite element of a row within `scale / 2` of the
//! original (plus f32 rounding slack), where
//! `scale = (max - min) / 255` for that row; non-finite elements
//! degrade to the row floor rather than poisoning neighbours.

use crate::codec::DEFAULT_MAX_FRAME_LEN;
use crate::NetError;

/// Version nibble carried in the high bits of every codec byte. Bump on
/// any incompatible change to the packed layouts below; decoders reject
/// other versions with a typed [`NetError::Codec`]. Version 2 added the
/// `feature_bus_elems` counter to the on-wire fetch ledger.
pub const FORMAT_VERSION: u8 = 2;

/// Row width used to quantize *flat* `f32` vectors (parameters,
/// gradients), which have no natural row structure: the vector is cut
/// into blocks of this many elements, each with its own `[lo, scale]`
/// header. Feature matrices quantize per real row instead.
pub const INT8_BLOCK: usize = 64;

/// Codec for structure payloads: node-id lists and integer side-data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StructCodec {
    /// Fixed-width little-endian integers — the raw reference encoding.
    #[default]
    None,
    /// Zigzag deltas between consecutive ids, LEB128-varint packed.
    Varint,
    /// Like `Varint`, but runs of consecutive ids (`v, v+1, v+2, …`)
    /// collapse to one `(start-delta, run-length)` pair.
    Rle,
}

/// Codec for feature payloads: `f32` vectors and feature-matrix rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatCodec {
    /// Raw IEEE-754 binary32 — bit-exact, 4 bytes per element.
    #[default]
    F32,
    /// IEEE-754 binary16 with round-to-nearest-even, 2 bytes per element.
    F16,
    /// Per-row affine int8: an 8-byte `[lo: f32][scale: f32]` header per
    /// row, then 1 byte per element.
    Int8,
}

/// The negotiated `(structure, features)` codec pair for a connection.
///
/// The default pair `(None, F32)` is the uncompressed reference: frames
/// encoded under it are byte-identical to the pre-compression wire
/// format apart from the codec byte itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecConfig {
    /// Structure-payload codec.
    pub structure: StructCodec,
    /// Feature-payload codec.
    pub features: FeatCodec,
}

impl CodecConfig {
    /// Packs the pair into the self-describing codec byte:
    /// `[version: 4][features: 2][structure: 2]`.
    pub fn to_byte(self) -> u8 {
        let s = match self.structure {
            StructCodec::None => 0u8,
            StructCodec::Varint => 1,
            StructCodec::Rle => 2,
        };
        let f = match self.features {
            FeatCodec::F32 => 0u8,
            FeatCodec::F16 => 1,
            FeatCodec::Int8 => 2,
        };
        (FORMAT_VERSION << 4) | (f << 2) | s
    }

    /// Unpacks a codec byte.
    ///
    /// # Errors
    ///
    /// [`NetError::Codec`] when the version nibble is not
    /// [`FORMAT_VERSION`] or either field holds a value this build does
    /// not speak.
    pub fn from_byte(b: u8) -> Result<CodecConfig, NetError> {
        let version = b >> 4;
        if version != FORMAT_VERSION {
            return Err(NetError::Codec(format!(
                "codec format version {version} (byte {b:#04x}); this build speaks version {FORMAT_VERSION}"
            )));
        }
        let structure = match b & 0b11 {
            0 => StructCodec::None,
            1 => StructCodec::Varint,
            2 => StructCodec::Rle,
            other => {
                return Err(NetError::Codec(format!("unknown structure codec {other}")));
            }
        };
        let features = match (b >> 2) & 0b11 {
            0 => FeatCodec::F32,
            1 => FeatCodec::F16,
            2 => FeatCodec::Int8,
            other => {
                return Err(NetError::Codec(format!("unknown feature codec {other}")));
            }
        };
        Ok(CodecConfig { structure, features })
    }

    /// Whether an encode/decode round trip reproduces every payload
    /// bit-exactly (true for any structure codec — those are lossless —
    /// whenever features ship as raw `F32`).
    pub fn lossless(self) -> bool {
        self.features == FeatCodec::F32
    }
}

// ---------------------------------------------------------------------------
// LEB128 varints + zigzag
// ---------------------------------------------------------------------------

/// Appends `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation; 1–10 bytes).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let low = v & 0x7f;
        v >>= 7;
        if v == 0 {
            out.push(u8::try_from(low).expect("masked to 7 bits"));
            return;
        }
        out.push(u8::try_from(low | 0x80).expect("masked to 8 bits"));
    }
}

/// Reads one LEB128 varint from `buf` at `*pos`, advancing `*pos`.
///
/// # Errors
///
/// [`NetError::Codec`] when the buffer ends mid-varint or the encoding
/// overflows 64 bits.
pub fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, NetError> {
    let mut v = 0u64;
    for i in 0..10 {
        let Some(&b) = buf.get(*pos) else {
            return Err(NetError::Codec("truncated varint".to_string()));
        };
        *pos += 1;
        let payload = u64::from(b & 0x7f);
        if i == 9 && payload > 1 {
            return Err(NetError::Codec("varint overflows 64 bits".to_string()));
        }
        v |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(NetError::Codec("varint longer than 10 bytes".to_string()))
}

/// Encoded length of `v` as a varint, without encoding it.
pub fn varint_len(v: u64) -> usize {
    let bits = (64 - v.leading_zeros()).max(1);
    bits.div_ceil(7) as usize
}

/// Maps a signed delta onto the unsigned varint domain so small
/// magnitudes of either sign stay short: `0, -1, 1, -2, 2, …`.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn delta(cur: u64, prev: u64) -> u64 {
    // Ids are u64 but real node ids fit in i64; wrapping keeps the map
    // a bijection even for hostile values.
    zigzag((cur as i64).wrapping_sub(prev as i64))
}

fn undelta(z: u64, prev: u64) -> u64 {
    (prev as i64).wrapping_add(unzigzag(z)) as u64
}

// ---------------------------------------------------------------------------
// Id-list codecs
// ---------------------------------------------------------------------------

/// Appends an id list under `codec`: a count prefix, then the payload.
///
/// `None` writes the raw reference layout (u64 count + fixed 8 bytes per
/// id). `Varint` writes zigzag deltas between consecutive ids. `Rle`
/// collapses runs of consecutive ids to `(start-delta, run-len)` pairs.
pub fn encode_ids(ids: &[u64], codec: StructCodec, out: &mut Vec<u8>) {
    match codec {
        StructCodec::None => {
            out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
            for &id in ids {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        StructCodec::Varint => {
            write_varint(out, ids.len() as u64);
            let mut prev = 0u64;
            for &id in ids {
                write_varint(out, delta(id, prev));
                prev = id;
            }
        }
        StructCodec::Rle => {
            write_varint(out, ids.len() as u64);
            let mut prev = 0u64;
            let mut i = 0usize;
            while i < ids.len() {
                let start = ids[i];
                let mut j = i + 1;
                while j < ids.len() && ids[j] == ids[j - 1].wrapping_add(1) {
                    j += 1;
                }
                write_varint(out, delta(start, prev));
                write_varint(out, (j - i) as u64);
                prev = ids[j - 1];
                i = j;
            }
        }
    }
}

/// Decodes an id list written by [`encode_ids`] from `buf` at `*pos`.
///
/// # Errors
///
/// [`NetError::Codec`] on truncation, a count whose decoded size
/// (8 bytes per id) would exceed [`DEFAULT_MAX_FRAME_LEN`], or RLE runs
/// that disagree with the count prefix.
pub fn decode_ids(
    buf: &[u8],
    pos: &mut usize,
    codec: StructCodec,
) -> Result<Vec<u64>, NetError> {
    let count = match codec {
        StructCodec::None => {
            let Some(bytes) = buf.get(*pos..*pos + 8) else {
                return Err(NetError::Codec("truncated id-list count".to_string()));
            };
            *pos += 8;
            u64::from_le_bytes(bytes.try_into().expect("exact slice"))
        }
        StructCodec::Varint | StructCodec::Rle => read_varint(buf, pos)?,
    };
    // The cap applies to the *decoded* size: a 2-byte RLE pair may claim
    // a gigantic run, so bound the materialized list before building it.
    if count.checked_mul(8).is_none_or(|b| b > DEFAULT_MAX_FRAME_LEN as u64) {
        return Err(NetError::Codec(format!(
            "id list claims {count} entries; decoded size exceeds the frame cap"
        )));
    }
    let count = count as usize;
    let mut ids = Vec::with_capacity(count);
    match codec {
        StructCodec::None => {
            for _ in 0..count {
                let Some(bytes) = buf.get(*pos..*pos + 8) else {
                    return Err(NetError::Codec("truncated id list".to_string()));
                };
                *pos += 8;
                ids.push(u64::from_le_bytes(bytes.try_into().expect("exact slice")));
            }
        }
        StructCodec::Varint => {
            let mut prev = 0u64;
            for _ in 0..count {
                let id = undelta(read_varint(buf, pos)?, prev);
                ids.push(id);
                prev = id;
            }
        }
        StructCodec::Rle => {
            let mut prev = 0u64;
            while ids.len() < count {
                let start = undelta(read_varint(buf, pos)?, prev);
                let run = read_varint(buf, pos)?;
                if run == 0 || run > (count - ids.len()) as u64 {
                    return Err(NetError::Codec(format!(
                        "RLE run of {run} disagrees with id count {count}"
                    )));
                }
                let mut id = start;
                for k in 0..run {
                    if k > 0 {
                        id = id.wrapping_add(1);
                    }
                    ids.push(id);
                }
                prev = id;
            }
        }
    }
    Ok(ids)
}

/// Exact byte length [`encode_ids`] would produce, without allocating —
/// the data-plane meters call this per fetch, so it must stay cheap.
pub fn encoded_ids_len(ids: &[u64], codec: StructCodec) -> usize {
    match codec {
        StructCodec::None => 8 + 8 * ids.len(),
        StructCodec::Varint => {
            let mut n = varint_len(ids.len() as u64);
            let mut prev = 0u64;
            for &id in ids {
                n += varint_len(delta(id, prev));
                prev = id;
            }
            n
        }
        StructCodec::Rle => {
            let mut n = varint_len(ids.len() as u64);
            let mut prev = 0u64;
            let mut i = 0usize;
            while i < ids.len() {
                let mut j = i + 1;
                while j < ids.len() && ids[j] == ids[j - 1].wrapping_add(1) {
                    j += 1;
                }
                n += varint_len(delta(ids[i], prev));
                n += varint_len((j - i) as u64);
                prev = ids[j - 1];
                i = j;
            }
            n
        }
    }
}

// ---------------------------------------------------------------------------
// f16 (IEEE-754 binary16) conversion
// ---------------------------------------------------------------------------

/// Converts to binary16 bits with round-to-nearest-even. Values beyond
/// ±65504 saturate to ±∞; NaN maps to a quiet NaN.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = u16::try_from((bits >> 16) & 0x8000).expect("masked to bit 15");
    let abs = bits & 0x7fff_ffff;
    if abs > 0x7f80_0000 {
        // NaN: keep it quiet, drop the payload.
        return sign | 0x7e00;
    }
    if abs >= 0x4780_0000 {
        // ±∞, and finite magnitudes ≥ 65536 which overflow binary16.
        return sign | 0x7c00;
    }
    if abs >= 0x3880_0000 {
        // Normal half range (≥ 2^-14). Rebias 127→15, keep 10 mantissa
        // bits, round to nearest even; a mantissa carry rolls into the
        // exponent, which turns 65520 ≤ |x| < 65536 into ∞ as required.
        let unrounded = ((abs >> 13) & 0x3ff) | (((abs >> 23) - 112) << 10);
        let round = (abs >> 12) & 1;
        let sticky = u32::from(abs & 0xfff != 0);
        let lsb = (abs >> 13) & 1;
        let h = unrounded + (round & (sticky | lsb));
        return sign | u16::try_from(h).expect("half exponent+mantissa fit 15 bits");
    }
    if abs <= 0x3300_0000 {
        // ≤ 2^-25: rounds to zero (the tie at exactly 2^-25 goes to the
        // even code, which is zero).
        return sign;
    }
    // Subnormal half range: h = mantissa(with implicit bit) >> (126 - e),
    // rounded to nearest even. The shift is in [14, 25].
    let man = (abs & 0x007f_ffff) | 0x0080_0000;
    let shift = 126 - (abs >> 23);
    let h = man >> shift;
    let round = (man >> (shift - 1)) & 1;
    let sticky = u32::from(man & ((1 << (shift - 1)) - 1) != 0);
    let h = h + (round & (sticky | (h & 1)));
    sign | u16::try_from(h).expect("subnormal half fits 10 bits plus carry")
}

/// Converts binary16 bits back to `f32` (exact — every binary16 value is
/// representable in binary32).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = (u32::from(h) & 0x8000) << 16;
    let exp = (h >> 10) & 0x1f;
    let man = u32::from(h & 0x3ff);
    if exp == 0x1f {
        // ±∞ / NaN, payload preserved in the top mantissa bits.
        return f32::from_bits(sign | 0x7f80_0000 | (man << 13));
    }
    if exp == 0 {
        if man == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: man × 2^-24, both factors exact in f32.
        let mag = f32::from(u16::try_from(man).expect("10-bit mantissa")) * 5.960_464_5e-8;
        return if sign != 0 { -mag } else { mag };
    }
    f32::from_bits(sign | ((u32::from(exp) + 112) << 23) | (man << 13))
}

// ---------------------------------------------------------------------------
// int8 per-row affine quantization
// ---------------------------------------------------------------------------

/// Per-row affine parameters: `value ≈ lo + code × scale`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowQuant {
    /// Row minimum — the value code 0 reconstructs to.
    pub lo: f32,
    /// Step between adjacent codes, `(max - min) / 255`; `0.0` for
    /// constant or degenerate (empty / non-finite) rows.
    pub scale: f32,
}

/// Computes the affine parameters for one row. Non-finite elements are
/// ignored for the range; a row with no finite spread gets `scale = 0`.
pub fn row_quant(row: &[f32]) -> RowQuant {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in row {
        if x.is_finite() {
            lo = lo.min(x);
            hi = hi.max(x);
        }
    }
    if !(lo.is_finite() && hi.is_finite()) {
        return RowQuant { lo: 0.0, scale: 0.0 };
    }
    let scale = (hi - lo) / 255.0;
    RowQuant { lo, scale: if scale.is_finite() { scale } else { 0.0 } }
}

/// The sanctioned float→code narrowing: the value is clamped to
/// `[0, 255]` before the cast, so the cast itself cannot truncate.
pub fn quantize_value(x: f32, q: &RowQuant) -> u8 {
    if q.scale == 0.0 {
        return 0;
    }
    let t = ((x - q.lo) / q.scale).round().clamp(0.0, 255.0);
    // splpg-lint: allow(as-cast-truncation) — clamped to [0, 255] on the line above
    t as u8
}

/// Reconstructs one element from its code.
pub fn dequantize_value(code: u8, q: &RowQuant) -> f32 {
    q.lo + f32::from(code) * q.scale
}

/// Quantizes a row, appending one code per element to `out`; returns the
/// header the decoder needs.
pub fn quantize_row(row: &[f32], out: &mut Vec<u8>) -> RowQuant {
    let q = row_quant(row);
    out.reserve(row.len());
    for &x in row {
        out.push(quantize_value(x, &q));
    }
    q
}

/// Reconstructs a row from codes into `out` (same length as `codes`).
pub fn dequantize_row(q: &RowQuant, codes: &[u8], out: &mut [f32]) {
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = dequantize_value(c, q);
    }
}

/// In-place int8 quantize→dequantize round trip — what the data plane
/// applies to remote feature rows so training sees exactly the values a
/// real wire transfer would deliver.
pub fn int8_round_trip(row: &mut [f32]) {
    let q = row_quant(row);
    for x in row.iter_mut() {
        *x = dequantize_value(quantize_value(*x, &q), &q);
    }
}

/// In-place f16 round trip — the binary16 analogue of
/// [`int8_round_trip`].
pub fn f16_round_trip(row: &mut [f32]) {
    for x in row.iter_mut() {
        *x = f16_to_f32(f32_to_f16(*x));
    }
}

/// On-wire bytes for `rows` feature rows of width `dim` under `codec`:
/// raw f32 is 4 bytes/element, f16 is 2, int8 is 1 plus an 8-byte
/// per-row header.
pub fn feature_wire_bytes(rows: u64, dim: u64, codec: FeatCodec) -> u64 {
    match codec {
        FeatCodec::F32 => rows * dim * 4,
        FeatCodec::F16 => rows * dim * 2,
        FeatCodec::Int8 => rows * (8 + dim),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::rngs::StdRng;
    use splpg_rng::{Rng, SeedableRng};

    fn all_configs() -> Vec<CodecConfig> {
        let mut v = Vec::new();
        for s in [StructCodec::None, StructCodec::Varint, StructCodec::Rle] {
            for f in [FeatCodec::F32, FeatCodec::F16, FeatCodec::Int8] {
                v.push(CodecConfig { structure: s, features: f });
            }
        }
        v
    }

    #[test]
    fn codec_byte_round_trips_every_pair() {
        for cfg in all_configs() {
            let b = cfg.to_byte();
            assert_eq!(b >> 4, FORMAT_VERSION);
            assert_eq!(CodecConfig::from_byte(b).unwrap(), cfg);
        }
    }

    #[test]
    fn wrong_version_and_invalid_fields_are_codec_errors() {
        for bad in [0x00, 0x13, 0xF0, 0x30] {
            assert!(
                matches!(CodecConfig::from_byte(bad), Err(NetError::Codec(_))),
                "byte {bad:#04x} accepted"
            );
        }
        // Version nibble right, structure field 3 (unassigned).
        let bad = (FORMAT_VERSION << 4) | 0b11;
        assert!(matches!(CodecConfig::from_byte(bad), Err(NetError::Codec(_))));
        // Feature field 3 (unassigned).
        let bad = (FORMAT_VERSION << 4) | 0b1100;
        assert!(matches!(CodecConfig::from_byte(bad), Err(NetError::Codec(_))));
    }

    #[test]
    fn varint_round_trips_edge_values() {
        let cases = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::from(u32::MAX), u64::MAX];
        for v in cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length formula for {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn hostile_varints_are_typed_errors() {
        // Truncated mid-continuation.
        let mut pos = 0;
        assert!(matches!(read_varint(&[0x80, 0x80], &mut pos), Err(NetError::Codec(_))));
        // 10th byte overflows 64 bits.
        let mut pos = 0;
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        assert!(matches!(read_varint(&overflow, &mut pos), Err(NetError::Codec(_))));
    }

    #[test]
    fn zigzag_is_a_bijection_on_edges() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn id_lists_round_trip_under_every_codec() {
        let mut rng = StdRng::seed_from_u64(41);
        for codec in [StructCodec::None, StructCodec::Varint, StructCodec::Rle] {
            for _ in 0..50 {
                let n = rng.gen_range(0..200usize);
                let mut ids: Vec<u64> = (0..n).map(|_| rng.gen_range(0..100_000)).collect();
                if rng.gen_range(0..2u32) == 0 {
                    ids.sort_unstable();
                }
                let mut buf = Vec::new();
                encode_ids(&ids, codec, &mut buf);
                assert_eq!(buf.len(), encoded_ids_len(&ids, codec), "{codec:?}");
                let mut pos = 0;
                assert_eq!(decode_ids(&buf, &mut pos, codec).unwrap(), ids, "{codec:?}");
                assert_eq!(pos, buf.len());
            }
        }
    }

    #[test]
    fn sorted_runs_compress_hard_under_rle() {
        let ids: Vec<u64> = (1000..2000).collect();
        let raw = encoded_ids_len(&ids, StructCodec::None);
        let rle = encoded_ids_len(&ids, StructCodec::Rle);
        let var = encoded_ids_len(&ids, StructCodec::Varint);
        assert!(rle < 16, "one run should cost a few bytes, got {rle}");
        assert!(var < raw / 2, "sorted deltas must at least halve raw, got {var} vs {raw}");
    }

    #[test]
    fn hostile_id_counts_are_rejected_before_allocation() {
        // A tiny RLE payload claiming u64::MAX ids must die on the
        // decoded-size cap, not materialize the list.
        let mut buf = Vec::new();
        write_varint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert!(matches!(
            decode_ids(&buf, &mut pos, StructCodec::Rle),
            Err(NetError::Codec(_))
        ));
        // An in-cap count whose single run overshoots it is equally typed.
        let mut buf = Vec::new();
        write_varint(&mut buf, 10);
        write_varint(&mut buf, zigzag(5));
        write_varint(&mut buf, 100); // run longer than the claimed count
        let mut pos = 0;
        assert!(matches!(
            decode_ids(&buf, &mut pos, StructCodec::Rle),
            Err(NetError::Codec(_))
        ));
    }

    #[test]
    fn f16_known_values() {
        let cases: &[(f32, u16)] = &[
            (0.0, 0x0000),
            (-0.0, 0x8000),
            (1.0, 0x3c00),
            (-2.0, 0xc000),
            (65504.0, 0x7bff),
            (f32::INFINITY, 0x7c00),
            (f32::NEG_INFINITY, 0xfc00),
            (5.960_464_5e-8, 0x0001),      // smallest binary16 subnormal
            (6.103_515_6e-5, 0x0400),      // smallest binary16 normal
            (0.333_251_95, 0x3555),        // nearest half to 1/3
        ];
        for &(x, h) in cases {
            assert_eq!(f32_to_f16(x), h, "encode {x}");
            assert_eq!(f16_to_f32(h).to_bits(), x.to_bits(), "decode {h:#06x}");
        }
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        // Overflow saturates, ties round to even.
        assert_eq!(f32_to_f16(65520.0), 0x7c00);
        assert_eq!(f32_to_f16(65519.9), 0x7bff);
        assert_eq!(f32_to_f16(1.000_048_8), 0x3c00, "tie rounds to even mantissa");
    }

    #[test]
    fn f16_round_trip_is_within_relative_tolerance() {
        let mut rng = StdRng::seed_from_u64(43);
        for _ in 0..2000 {
            let x = rng.gen_range(-1000.0f32..1000.0);
            let y = f16_to_f32(f32_to_f16(x));
            let tol = x.abs() * 4.9e-4 + 1e-7; // 2^-11 ≈ 4.88e-4
            assert!((x - y).abs() <= tol, "{x} -> {y}");
        }
    }

    #[test]
    fn int8_round_trip_is_within_half_a_scale_step() {
        let mut rng = StdRng::seed_from_u64(47);
        for _ in 0..200 {
            let n = rng.gen_range(1..128usize);
            let row: Vec<f32> = (0..n).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
            let q = row_quant(&row);
            let mut codes = Vec::new();
            let q2 = quantize_row(&row, &mut codes);
            assert_eq!(q, q2);
            let mut back = vec![0.0; n];
            dequantize_row(&q, &codes, &mut back);
            for (&x, &y) in row.iter().zip(&back) {
                let bound = q.scale * 0.5 + q.scale * 1e-3 + 1e-6;
                assert!((x - y).abs() <= bound, "|{x} - {y}| > {bound} (scale {})", q.scale);
            }
        }
    }

    #[test]
    fn int8_degenerate_rows_are_stable() {
        // Constant row: scale 0, reconstructs exactly.
        let mut row = vec![3.25f32; 9];
        int8_round_trip(&mut row);
        assert!(row.iter().all(|&x| x == 3.25));
        // Empty row: no-op.
        int8_round_trip(&mut []);
        // Non-finite elements degrade to the finite floor, finite
        // neighbours stay within bound.
        let mut row = vec![1.0, f32::NAN, 2.0];
        int8_round_trip(&mut row);
        assert!((row[0] - 1.0).abs() <= 1e-2 && (row[2] - 2.0).abs() <= 1e-2);
        assert!(row[1].is_finite(), "NaN must not survive quantization");
    }

    #[test]
    fn feature_wire_bytes_matches_the_layouts() {
        assert_eq!(feature_wire_bytes(10, 64, FeatCodec::F32), 2560);
        assert_eq!(feature_wire_bytes(10, 64, FeatCodec::F16), 1280);
        assert_eq!(feature_wire_bytes(10, 64, FeatCodec::Int8), 720);
        // The int8 feature ratio at dim 64: 2560 / 720 ≈ 3.56 ≥ 3.5,
        // the gate the wire_compress bench enforces end to end.
        let raw = feature_wire_bytes(10, 64, FeatCodec::F32) as f64;
        let wire = feature_wire_bytes(10, 64, FeatCodec::Int8) as f64;
        assert!(raw / wire >= 3.5);
    }
}
