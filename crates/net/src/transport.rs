use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Duration;

use crate::NetError;

/// One directed lane moving encoded frames between two endpoints.
///
/// A `Transport` is deliberately dumb: it moves opaque byte frames and
/// reports whether the peer is still there. All typing lives in the
/// codec, all policy (retry, quorum) in the master loop, and all fault
/// injection in decorators like [`FaultyTransport`] — which is what makes
/// the fault layer composable over any lane.
///
/// [`FaultyTransport`]: crate::FaultyTransport
pub trait Transport: Send {
    /// Queues one frame for the peer. `Ok` does not promise delivery —
    /// a fault decorator may drop or hold the frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the peer hung up.
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError>;

    /// Blocks for the next frame.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when every sender to this lane is gone.
    fn recv(&mut self) -> Result<Vec<u8>, NetError>;

    /// Waits up to `timeout` for the next frame; `Ok(None)` when the
    /// window elapses quietly.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when every sender to this lane is gone.
    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError>;
}

impl Transport for Box<dyn Transport> {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        (**self).send(frame)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        (**self).recv()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        (**self).recv_timeout(timeout)
    }
}

/// Shared wire-traffic counters, cloned onto every transport of a
/// cluster.
///
/// Frame counts and bytes are recorded at *send* time by the innermost
/// channel transport, so what's counted is what actually entered a lane —
/// dropped frames never reach it and are tallied separately by the fault
/// layer.
#[derive(Debug, Clone, Default)]
pub struct WireStats {
    inner: Arc<StatCounters>,
}

#[derive(Debug, Default)]
struct StatCounters {
    messages: AtomicU64,
    bytes: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    retries: AtomicU64,
    kind_count: [AtomicU64; crate::codec::NUM_KINDS],
    kind_raw: [AtomicU64; crate::codec::NUM_KINDS],
    kind_wire: [AtomicU64; crate::codec::NUM_KINDS],
}

/// Per-message-kind raw-vs-wire accounting — one histogram bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindStat {
    /// Frames of this kind recorded.
    pub count: u64,
    /// Bytes those frames would occupy under the raw (uncompressed)
    /// codec, length prefixes included.
    pub raw_bytes: u64,
    /// Bytes the frames actually occupied on the wire.
    pub wire_bytes: u64,
}

/// Point-in-time copy of [`WireStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSnapshot {
    /// Frames that entered a lane (duplicates counted individually).
    pub messages: u64,
    /// Total bytes of those frames, length prefixes included.
    pub bytes: u64,
    /// Frames discarded by fault injection.
    pub dropped: u64,
    /// Extra copies produced by fault injection.
    pub duplicated: u64,
    /// Frames whose delivery was deferred by fault injection.
    pub delayed: u64,
    /// Retransmission rounds the master performed.
    pub retries: u64,
    /// Raw-vs-wire byte histogram indexed by message kind (slot 0
    /// unused; see [`crate::codec::kind_name`]). Recorded once per
    /// protocol message on the master side, so duplicates injected by
    /// the fault layer do not inflate it.
    pub kinds: [KindStat; crate::codec::NUM_KINDS],
}

impl WireSnapshot {
    /// Sum of raw bytes across kinds.
    pub fn raw_kind_bytes(&self) -> u64 {
        self.kinds.iter().map(|k| k.raw_bytes).sum()
    }

    /// Sum of on-wire bytes across kinds.
    pub fn wire_kind_bytes(&self) -> u64 {
        self.kinds.iter().map(|k| k.wire_bytes).sum()
    }
}

impl WireStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        WireStats::default()
    }

    /// Records one frame of `bytes` bytes entering a lane.
    pub fn record_send(&self, bytes: u64) {
        self.inner.messages.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a fault-injected drop.
    pub fn record_drop(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fault-injected duplicate.
    pub fn record_duplicate(&self) {
        self.inner.duplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fault-injected delay.
    pub fn record_delay(&self) {
        self.inner.delayed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retransmission round.
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one protocol message of `kind` into the raw-vs-wire
    /// histogram. Unknown kind bytes land in slot 0.
    pub fn record_kind(&self, kind: u8, raw_bytes: u64, wire_bytes: u64) {
        let slot = usize::from(kind);
        let slot = if slot < crate::codec::NUM_KINDS { slot } else { 0 };
        self.inner.kind_count[slot].fetch_add(1, Ordering::Relaxed);
        self.inner.kind_raw[slot].fetch_add(raw_bytes, Ordering::Relaxed);
        self.inner.kind_wire[slot].fetch_add(wire_bytes, Ordering::Relaxed);
    }

    /// Reads all counters at once.
    pub fn snapshot(&self) -> WireSnapshot {
        let mut kinds = [KindStat::default(); crate::codec::NUM_KINDS];
        for (slot, k) in kinds.iter_mut().enumerate() {
            k.count = self.inner.kind_count[slot].load(Ordering::Relaxed);
            k.raw_bytes = self.inner.kind_raw[slot].load(Ordering::Relaxed);
            k.wire_bytes = self.inner.kind_wire[slot].load(Ordering::Relaxed);
        }
        WireSnapshot {
            messages: self.inner.messages.load(Ordering::Relaxed),
            bytes: self.inner.bytes.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
            duplicated: self.inner.duplicated.load(Ordering::Relaxed),
            delayed: self.inner.delayed.load(Ordering::Relaxed),
            retries: self.inner.retries.load(Ordering::Relaxed),
            kinds,
        }
    }
}

/// A [`Transport`] over bounded in-process channels.
///
/// Lanes may be half-open: the master's per-worker command lanes are
/// send-only on the master side, and its shared inbox is receive-only.
/// Capacity bounds come from the cluster builder; see
/// [`ClusterConfig`](crate::ClusterConfig) for the sizing argument.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Option<SyncSender<Vec<u8>>>,
    rx: Option<Receiver<Vec<u8>>>,
    stats: WireStats,
    max_frame: usize,
}

impl ChannelTransport {
    /// A full-duplex endpoint.
    pub fn new(tx: SyncSender<Vec<u8>>, rx: Receiver<Vec<u8>>, stats: WireStats) -> Self {
        ChannelTransport {
            tx: Some(tx),
            rx: Some(rx),
            stats,
            max_frame: crate::codec::DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// A send-only endpoint.
    pub fn sender(tx: SyncSender<Vec<u8>>, stats: WireStats) -> Self {
        ChannelTransport {
            tx: Some(tx),
            rx: None,
            stats,
            max_frame: crate::codec::DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// A receive-only endpoint.
    pub fn receiver(rx: Receiver<Vec<u8>>, stats: WireStats) -> Self {
        ChannelTransport {
            tx: None,
            rx: Some(rx),
            stats,
            max_frame: crate::codec::DEFAULT_MAX_FRAME_LEN,
        }
    }

    /// A connected pair of full-duplex endpoints (mostly for tests).
    pub fn pair(capacity: usize, stats: WireStats) -> (Self, Self) {
        let (atx, brx) = std::sync::mpsc::sync_channel(capacity);
        let (btx, arx) = std::sync::mpsc::sync_channel(capacity);
        (
            ChannelTransport::new(atx, arx, stats.clone()),
            ChannelTransport::new(btx, brx, stats),
        )
    }

    /// Overrides the frame-body ceiling this endpoint enforces on send.
    #[must_use]
    pub fn with_max_frame_len(mut self, max: usize) -> Self {
        self.max_frame = max;
        self
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        let body = frame.len().saturating_sub(4);
        if body > self.max_frame {
            return Err(NetError::FrameTooLarge { len: body, max: self.max_frame });
        }
        let Some(tx) = &self.tx else { return Err(NetError::Closed) };
        let bytes = frame.len() as u64;
        // Prefer the non-blocking path so a full lane degrades into a
        // blocking send rather than silently stalling stats.
        let frame = match tx.try_send(frame) {
            Ok(()) => {
                self.stats.record_send(bytes);
                return Ok(());
            }
            Err(TrySendError::Disconnected(_)) => {
                self.tx = None;
                return Err(NetError::Closed);
            }
            Err(TrySendError::Full(frame)) => frame,
        };
        match tx.send(frame) {
            Ok(()) => {
                self.stats.record_send(bytes);
                Ok(())
            }
            Err(_) => {
                self.tx = None;
                Err(NetError::Closed)
            }
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let Some(rx) = &self.rx else { return Err(NetError::Closed) };
        rx.recv().map_err(|_| NetError::Closed)
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        let Some(rx) = &self.rx else { return Err(NetError::Closed) };
        match rx.recv_timeout(timeout) {
            Ok(frame) => Ok(Some(frame)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_round_trips_frames_and_counts_them() {
        let stats = WireStats::new();
        let (mut a, mut b) = ChannelTransport::pair(4, stats.clone());
        a.send(vec![1, 2, 3]).unwrap();
        a.send(vec![4]).unwrap();
        assert_eq!(b.recv().unwrap(), vec![1, 2, 3]);
        assert_eq!(b.recv().unwrap(), vec![4]);
        let snap = stats.snapshot();
        assert_eq!(snap.messages, 2);
        assert_eq!(snap.bytes, 4);
    }

    #[test]
    fn recv_timeout_returns_none_then_frame() {
        let stats = WireStats::new();
        let (mut a, mut b) = ChannelTransport::pair(1, stats);
        assert_eq!(b.recv_timeout(Duration::from_millis(1)).unwrap(), None);
        a.send(vec![9]).unwrap();
        assert_eq!(b.recv_timeout(Duration::from_millis(100)).unwrap(), Some(vec![9]));
    }

    #[test]
    fn disconnect_surfaces_as_closed() {
        let stats = WireStats::new();
        let (a, mut b) = ChannelTransport::pair(1, stats.clone());
        drop(a);
        assert_eq!(b.recv(), Err(NetError::Closed));
        assert_eq!(b.send(vec![0]), Err(NetError::Closed));

        let (mut a2, b2) = ChannelTransport::pair(1, stats);
        drop(b2);
        assert_eq!(a2.send(vec![0]), Err(NetError::Closed));
    }

    #[test]
    fn half_open_endpoints_reject_wrong_direction() {
        let stats = WireStats::new();
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let mut s = ChannelTransport::sender(tx, stats.clone());
        let mut r = ChannelTransport::receiver(rx, stats);
        assert_eq!(r.send(vec![1]), Err(NetError::Closed));
        s.send(vec![1]).unwrap();
        assert_eq!(r.recv().unwrap(), vec![1]);
        assert_eq!(s.recv(), Err(NetError::Closed));
        assert_eq!(s.recv_timeout(Duration::from_millis(1)), Err(NetError::Closed));
    }
}
