//! POSIX shared-memory feature bus for co-located worker processes.
//!
//! Co-located workers pay full serialize→socket→deserialize cost for
//! feature rows that already live in the master's address space — the
//! dominant payload of the paper's communication model. This module
//! gives them a zero-copy lane instead:
//!
//! * [`ShmOwner`] — the master's handle: creates a versioned,
//!   checksummed segment under `/dev/shm` holding the full feature
//!   matrix (`rows × dim` little-endian `f32`), seals it, and unlinks
//!   it on drop;
//! * [`ShmSegment`] / [`ShmLane`] — a reader's validated, read-only
//!   mapping: attach verifies magic, layout version, seal flag,
//!   geometry, run identity and a checksum over the payload, then
//!   serves `&[f32]` rows straight out of the shared pages;
//! * [`ShmError`] — the typed failure taxonomy: every way an attach can
//!   go wrong (missing, torn, version-skewed, corrupt, wrong run) maps
//!   to one variant so callers can degrade to the wire path and record
//!   the reason, never crash;
//! * [`ShmTransport`] — a duplex frame lane over two one-directional
//!   shared-memory rings, held to the same conformance battery as the
//!   channel and TCP transports.
//!
//! The segment name travels master→worker through the existing
//! `SPLPG_PROC_*` environment handoff (see [`crate::process`]).
//!
//! Dependency-free by construction: `shm_open(3)` is implemented as
//! `open(2)` on `/dev/shm/<name>` — exactly what glibc's wrapper does —
//! which keeps the foreign-function surface to `mmap`/`munmap`. All
//! unsafe code in the workspace lives in this module, one pragma-carrying
//! block at a time (`splpg-lint`'s `forbid-unsafe` rule enforces both
//! the confinement and the pragmas).
//!
//! # Segment layout (version 1)
//!
//! ```text
//! offset  size  field
//!      0     8  magic      "SPLPGFB1"
//!      8     4  layout_version (u32 LE)
//!     12     4  sealed     (u32 LE; 0 while writing, 1 once complete)
//!     16     8  rows       (u64 LE)
//!     24     8  dim        (u64 LE)
//!     32     8  identity   (u64 LE; run-identity hash, see [`identity_hash`])
//!     40     8  checksum   (u64 LE; FNV-1a over the payload bytes)
//!     48    16  reserved (zero)
//!     64     —  payload: rows × dim f32 LE, row-major
//! ```
//!
//! `sealed` is written last: a reader that maps a half-written segment
//! sees `sealed == 0` and reports [`ShmError::Torn`] instead of reading
//! garbage. The checksum catches payload corruption after sealing.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::transport::{Transport, WireStats};
use crate::NetError;

/// First 8 bytes of every feature-bus segment.
pub const SEGMENT_MAGIC: [u8; 8] = *b"SPLPGFB1";

/// Layout version this build writes and accepts.
pub const LAYOUT_VERSION: u32 = 1;

/// Byte offset of the payload (and total header size).
pub const HEADER_LEN: usize = 64;

const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 8;
const OFF_SEALED: usize = 12;
const OFF_ROWS: usize = 16;
const OFF_DIM: usize = 24;
const OFF_IDENTITY: usize = 32;
const OFF_CHECKSUM: usize = 40;

/// Everything that can go wrong creating or attaching a segment. Every
/// variant is a *recoverable* condition: the caller falls back to the
/// wire path and records the error in its net report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShmError {
    /// The host has no usable shared-memory filesystem, or the segment
    /// file could not be created/opened/mapped.
    Unavailable(String),
    /// The attached file does not start with [`SEGMENT_MAGIC`].
    BadMagic,
    /// The segment was written by a different layout version.
    Version {
        /// Version found in the segment header.
        found: u32,
        /// Version this build speaks.
        expect: u32,
    },
    /// The seal flag is unset: the writer died (or is still) mid-write.
    Torn,
    /// Header geometry disagrees with what the reader expects, or the
    /// file is too small to hold what the header claims.
    Geometry(String),
    /// The payload checksum does not match the sealed header.
    Checksum {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum recomputed over the payload.
        computed: u64,
    },
    /// The run-identity hash does not match: the segment belongs to a
    /// different training run.
    Identity {
        /// Identity recorded in the header.
        stored: u64,
        /// Identity the reader expected.
        expect: u64,
    },
}

impl std::fmt::Display for ShmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShmError::Unavailable(msg) => write!(f, "shared memory unavailable: {msg}"),
            ShmError::BadMagic => write!(f, "segment lacks the SPLPGFB1 magic"),
            ShmError::Version { found, expect } => {
                write!(f, "segment layout version {found}; this build speaks {expect}")
            }
            ShmError::Torn => write!(f, "segment is unsealed (torn or in-progress write)"),
            ShmError::Geometry(msg) => write!(f, "segment geometry mismatch: {msg}"),
            ShmError::Checksum { stored, computed } => {
                write!(f, "payload checksum {computed:#018x} != sealed {stored:#018x}")
            }
            ShmError::Identity { stored, expect } => {
                write!(f, "segment identity {stored:#018x} != expected {expect:#018x}")
            }
        }
    }
}

impl std::error::Error for ShmError {}

/// FNV-1a over `bytes` — the segment payload checksum. Deterministic,
/// dependency-free, and plenty to catch torn or flipped pages.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes the run parameters that make a segment *this run's* segment.
/// Attaching rejects a segment whose identity differs — a stale file
/// from a crashed earlier run must fall back to the wire, not feed the
/// model someone else's features.
pub fn identity_hash(parts: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(parts.len() * 8);
    for p in parts {
        bytes.extend_from_slice(&p.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Directory backing POSIX shared memory on Linux.
fn shm_dir() -> PathBuf {
    PathBuf::from("/dev/shm")
}

fn segment_path(name: &str) -> PathBuf {
    shm_dir().join(name)
}

/// Whether this host can back a feature-bus segment: `/dev/shm` exists
/// and is writable. Benches and tests use this to SKIP cleanly instead
/// of failing in sandboxes without a shm filesystem.
pub fn shm_available() -> bool {
    let probe = segment_path(&format!("splpg-probe-{}", std::process::id()));
    match OpenOptions::new().write(true).create_new(true).open(&probe) {
        Ok(_) => {
            let _ = std::fs::remove_file(&probe);
            true
        }
        Err(_) => false,
    }
}

/// Process-unique counter distinguishing segments created by one
/// process (mirrors the port-file naming discipline in
/// [`crate::process`]).
static SEGMENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A collision-free segment name: pid + per-process sequence number.
pub fn segment_name(tag: &str) -> String {
    let seq = SEGMENT_SEQ.fetch_add(1, Ordering::Relaxed);
    format!("splpg-{tag}-{}-{seq}", std::process::id())
}

// ---------------------------------------------------------------------
// Raw mapping.
// ---------------------------------------------------------------------

use std::ffi::c_void;

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const MAP_SHARED: i32 = 1;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

/// A `MAP_SHARED` mapping of one segment file, unmapped on drop. The
/// single place raw pages enter Rust: everything above it works with
/// bounds-checked slices derived from `ptr`/`len`.
struct Mapping {
    ptr: *mut u8,
    len: usize,
}

// The mapping is plain memory with no thread affinity; concurrent
// access discipline is enforced by the structures built on top (sealed
// read-only segments, ring-buffer cursors with acquire/release pairs).
// splpg-lint: allow(forbid-unsafe) — shared mapping is Send: no thread-affine state
unsafe impl Send for Mapping {}
// splpg-lint: allow(forbid-unsafe) — shared mapping is Sync: readers see sealed or cursor-published bytes only
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `len` bytes of `file` (`MAP_SHARED`), optionally writable.
    fn map(file: &File, len: usize, writable: bool) -> Result<Mapping, ShmError> {
        use std::os::unix::io::AsRawFd;
        if len == 0 {
            return Err(ShmError::Geometry("cannot map an empty segment".to_string()));
        }
        let prot = if writable { PROT_READ | PROT_WRITE } else { PROT_READ };
        // splpg-lint: allow(forbid-unsafe) — the one mmap call; fd and length are validated above
        let ptr = unsafe { mmap(std::ptr::null_mut(), len, prot, MAP_SHARED, file.as_raw_fd(), 0) };
        if ptr.is_null() || ptr as isize == -1 {
            return Err(ShmError::Unavailable("mmap failed".to_string()));
        }
        Ok(Mapping { ptr: ptr.cast::<u8>(), len })
    }

    /// The mapped bytes as a shared slice. Sound for sealed read-only
    /// segments (no writer exists after seal); ring buffers never use
    /// this — they go through cursor-published raw copies instead.
    fn bytes(&self) -> &[u8] {
        // splpg-lint: allow(forbid-unsafe) — ptr/len come from a successful mmap of exactly len bytes
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // splpg-lint: allow(forbid-unsafe) — unmapping the exact region mmap returned
        unsafe {
            munmap(self.ptr.cast::<c_void>(), self.len);
        }
    }
}

// ---------------------------------------------------------------------
// Feature segment: owner (writer) and attached reader.
// ---------------------------------------------------------------------

/// Geometry + identity a reader demands of a segment before trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentSpec {
    /// Feature rows the segment must hold.
    pub rows: u64,
    /// Elements per row.
    pub dim: u64,
    /// Run-identity hash ([`identity_hash`]) the segment must carry.
    pub identity: u64,
}

impl SegmentSpec {
    fn payload_len(&self) -> Result<usize, ShmError> {
        self.rows
            .checked_mul(self.dim)
            .and_then(|e| e.checked_mul(4))
            .and_then(|b| usize::try_from(b).ok())
            .ok_or_else(|| ShmError::Geometry("rows × dim × 4 overflows".to_string()))
    }
}

/// The master's handle on a created segment: writes the header and
/// payload through plain file I/O (no aliasing with readers: the seal
/// flag is the last byte written), keeps the name for the env handoff,
/// and unlinks the segment when dropped.
#[derive(Debug)]
pub struct ShmOwner {
    name: String,
    path: PathBuf,
}

impl ShmOwner {
    /// Creates and seals a segment named `name` holding `data`
    /// (`spec.rows × spec.dim` f32, row-major).
    ///
    /// # Errors
    ///
    /// [`ShmError::Geometry`] when `data` disagrees with `spec`;
    /// [`ShmError::Unavailable`] when the shm filesystem refuses.
    pub fn create(name: &str, spec: &SegmentSpec, data: &[f32]) -> Result<ShmOwner, ShmError> {
        let payload_len = spec.payload_len()?;
        if data.len() * 4 != payload_len {
            return Err(ShmError::Geometry(format!(
                "data holds {} elems, spec wants {}",
                data.len(),
                spec.rows * spec.dim
            )));
        }
        let path = segment_path(name);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| ShmError::Unavailable(format!("create {}: {e}", path.display())))?;
        let owner = ShmOwner { name: name.to_string(), path: path.clone() };

        let mut payload = Vec::with_capacity(payload_len);
        for v in data {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut header = [0u8; HEADER_LEN];
        header[OFF_MAGIC..OFF_MAGIC + 8].copy_from_slice(&SEGMENT_MAGIC);
        header[OFF_VERSION..OFF_VERSION + 4].copy_from_slice(&LAYOUT_VERSION.to_le_bytes());
        // sealed stays 0 until everything else is on disk.
        header[OFF_ROWS..OFF_ROWS + 8].copy_from_slice(&spec.rows.to_le_bytes());
        header[OFF_DIM..OFF_DIM + 8].copy_from_slice(&spec.dim.to_le_bytes());
        header[OFF_IDENTITY..OFF_IDENTITY + 8].copy_from_slice(&spec.identity.to_le_bytes());
        header[OFF_CHECKSUM..OFF_CHECKSUM + 8].copy_from_slice(&fnv1a(&payload).to_le_bytes());

        let write = (|| -> std::io::Result<()> {
            file.write_all(&header)?;
            file.write_all(&payload)?;
            file.flush()?;
            // Seal last: readers observing sealed == 1 are guaranteed a
            // complete header + payload underneath.
            file.seek(SeekFrom::Start(OFF_SEALED as u64))?;
            file.write_all(&1u32.to_le_bytes())?;
            file.flush()
        })();
        write.map_err(|e| ShmError::Unavailable(format!("write {}: {e}", path.display())))?;
        Ok(owner)
    }

    /// The segment name, as advertised to workers.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Flips one payload byte *after* sealing, leaving the recorded
    /// checksum stale — the deterministic corruption the fallback tests
    /// and the `shm_bus` bench's degraded row are built on.
    ///
    /// # Errors
    ///
    /// [`ShmError::Unavailable`] when the segment file resists.
    pub fn corrupt_payload_for_test(&self) -> Result<(), ShmError> {
        let flip = |e: std::io::Error| ShmError::Unavailable(format!("corrupt: {e}"));
        let mut file =
            OpenOptions::new().read(true).write(true).open(&self.path).map_err(flip)?;
        file.seek(SeekFrom::Start(HEADER_LEN as u64)).map_err(flip)?;
        let mut b = [0u8; 1];
        file.read_exact(&mut b).map_err(flip)?;
        file.seek(SeekFrom::Start(HEADER_LEN as u64)).map_err(flip)?;
        file.write_all(&[b[0] ^ 0xff]).map_err(flip)?;
        file.flush().map_err(flip)
    }
}

impl Drop for ShmOwner {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// A validated, attached, read-only segment. Construction *is* the
/// validation: once a `ShmSegment` exists, every row read is a plain
/// bounds-checked slice over sealed shared pages.
pub struct ShmSegment {
    map: Mapping,
    rows: usize,
    dim: usize,
}

impl std::fmt::Debug for ShmSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmSegment").field("rows", &self.rows).field("dim", &self.dim).finish()
    }
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

impl ShmSegment {
    /// Attaches (maps read-only and fully validates) the segment named
    /// `name` against `spec`.
    ///
    /// # Errors
    ///
    /// Every [`ShmError`] variant, one per way the segment can be
    /// untrustworthy. Callers fall back to the wire path on any of them.
    pub fn attach(name: &str, spec: &SegmentSpec) -> Result<ShmSegment, ShmError> {
        let path = segment_path(name);
        let file = File::open(&path)
            .map_err(|e| ShmError::Unavailable(format!("open {}: {e}", path.display())))?;
        let file_len = file
            .metadata()
            .map_err(|e| ShmError::Unavailable(format!("stat {}: {e}", path.display())))?
            .len();
        if file_len < HEADER_LEN as u64 {
            return Err(ShmError::Geometry(format!(
                "file is {file_len} bytes, smaller than the {HEADER_LEN}-byte header"
            )));
        }
        let payload_len = spec.payload_len()?;
        let want = HEADER_LEN as u64 + payload_len as u64;
        if file_len < want {
            return Err(ShmError::Geometry(format!(
                "file is {file_len} bytes, header claims {want}"
            )));
        }
        let map = Mapping::map(&file, HEADER_LEN + payload_len, false)?;
        let bytes = map.bytes();
        if bytes[OFF_MAGIC..OFF_MAGIC + 8] != SEGMENT_MAGIC {
            return Err(ShmError::BadMagic);
        }
        let version = read_u32(bytes, OFF_VERSION);
        if version != LAYOUT_VERSION {
            return Err(ShmError::Version { found: version, expect: LAYOUT_VERSION });
        }
        if read_u32(bytes, OFF_SEALED) != 1 {
            return Err(ShmError::Torn);
        }
        let (rows, dim) = (read_u64(bytes, OFF_ROWS), read_u64(bytes, OFF_DIM));
        if rows != spec.rows || dim != spec.dim {
            return Err(ShmError::Geometry(format!(
                "segment is {rows}×{dim}, reader expects {}×{}",
                spec.rows, spec.dim
            )));
        }
        let identity = read_u64(bytes, OFF_IDENTITY);
        if identity != spec.identity {
            return Err(ShmError::Identity { stored: identity, expect: spec.identity });
        }
        let stored = read_u64(bytes, OFF_CHECKSUM);
        let computed = fnv1a(&bytes[HEADER_LEN..HEADER_LEN + payload_len]);
        if stored != computed {
            return Err(ShmError::Checksum { stored, computed });
        }
        let rows = usize::try_from(rows)
            .map_err(|_| ShmError::Geometry("rows exceeds usize".to_string()))?;
        let dim = usize::try_from(dim)
            .map_err(|_| ShmError::Geometry("dim exceeds usize".to_string()))?;
        Ok(ShmSegment { map, rows, dim })
    }

    /// Feature rows held.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Elements per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a zero-copy `f32` slice over the shared pages.
    ///
    /// # Panics
    ///
    /// When `i >= rows()` — attach already pinned the geometry, so an
    /// out-of-range row is a caller logic error, not a data fault.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of range ({} rows)", self.rows);
        let start = HEADER_LEN + i * self.dim * 4;
        let bytes = &self.map.bytes()[start..start + self.dim * 4];
        // The payload starts 64 bytes into a page-aligned mapping, so
        // every row is 4-byte aligned.
        // splpg-lint: allow(forbid-unsafe) — reinterpreting validated, aligned, sealed bytes as f32
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), self.dim) }
    }
}

/// A cheaply cloneable handle on an attached segment — what the worker
/// views hold and consult before issuing a wire fetch.
#[derive(Debug, Clone)]
pub struct ShmLane {
    segment: Arc<ShmSegment>,
}

impl ShmLane {
    /// Attaches and wraps the segment named `name`.
    ///
    /// # Errors
    ///
    /// Propagates [`ShmSegment::attach`] failures.
    pub fn attach(name: &str, spec: &SegmentSpec) -> Result<ShmLane, ShmError> {
        Ok(ShmLane { segment: Arc::new(ShmSegment::attach(name, spec)?) })
    }

    /// Wraps an already-attached segment.
    pub fn from_segment(segment: ShmSegment) -> ShmLane {
        ShmLane { segment: Arc::new(segment) }
    }

    /// Zero-copy row read; see [`ShmSegment::row`].
    pub fn row(&self, i: usize) -> &[f32] {
        self.segment.row(i)
    }

    /// Feature rows held.
    pub fn rows(&self) -> usize {
        self.segment.rows()
    }

    /// Elements per row.
    pub fn dim(&self) -> usize {
        self.segment.dim()
    }
}

// ---------------------------------------------------------------------
// Shared-memory ring transport.
// ---------------------------------------------------------------------

/// Sleep quantum for ring polling (no wall-clock reads: waits are
/// attempt-counted, matching the TCP transport's discipline).
const POLL_MS: u64 = 2;

/// Attempts a send will wait on a persistently full ring before calling
/// the lane wedged.
const FULL_RING_ATTEMPTS: usize = 5000;

/// Per-direction ring header size (cursors + close flags, padded so the
/// data region stays cache-line- and f32-aligned).
const RING_HDR: usize = 64;

const OFF_HEAD: usize = 0;
const OFF_TAIL: usize = 8;
const OFF_TX_CLOSED: usize = 16;
const OFF_RX_CLOSED: usize = 20;

/// One mapped ring file shared by both endpoints of a pair: two
/// one-directional rings, each `[head, tail, closed flags | data]`.
struct RingMap {
    map: Mapping,
    cap: usize,
}

impl RingMap {
    fn dir_base(&self, dir: usize) -> usize {
        dir * (RING_HDR + self.cap)
    }

    fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= self.map.len && off.is_multiple_of(8));
        // splpg-lint: allow(forbid-unsafe) — 8-aligned in-bounds cursor word of a shared mapping
        unsafe { &*self.map.ptr.add(off).cast::<AtomicU64>() }
    }

    fn atomic_u32(&self, off: usize) -> &AtomicU32 {
        debug_assert!(off + 4 <= self.map.len && off.is_multiple_of(4));
        // splpg-lint: allow(forbid-unsafe) — 4-aligned in-bounds flag word of a shared mapping
        unsafe { &*self.map.ptr.add(off).cast::<AtomicU32>() }
    }

    fn head(&self, dir: usize) -> &AtomicU64 {
        self.atomic_u64(self.dir_base(dir) + OFF_HEAD)
    }

    fn tail(&self, dir: usize) -> &AtomicU64 {
        self.atomic_u64(self.dir_base(dir) + OFF_TAIL)
    }

    fn tx_closed(&self, dir: usize) -> &AtomicU32 {
        self.atomic_u32(self.dir_base(dir) + OFF_TX_CLOSED)
    }

    fn rx_closed(&self, dir: usize) -> &AtomicU32 {
        self.atomic_u32(self.dir_base(dir) + OFF_RX_CLOSED)
    }

    /// Copies `src` into direction `dir`'s data region at logical
    /// position `pos` (wrapping). Only the single producer of `dir`
    /// writes here, and only between claiming space and publishing
    /// `head`, so the range is exclusively owned for the duration.
    fn write_at(&self, dir: usize, pos: u64, src: &[u8]) {
        let data = self.dir_base(dir) + RING_HDR;
        let at = usize::try_from(pos % self.cap as u64).expect("ring offset fits usize");
        let first = src.len().min(self.cap - at);
        // splpg-lint: allow(forbid-unsafe) — producer-owned unpublished range, bounds checked above
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), self.map.ptr.add(data + at), first);
            if first < src.len() {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add(first),
                    self.map.ptr.add(data),
                    src.len() - first,
                );
            }
        }
    }

    /// Copies `dst.len()` bytes out of direction `dir` at logical
    /// position `pos` (wrapping). Only called for ranges below a
    /// `head` loaded with acquire ordering, so the bytes are published.
    fn read_at(&self, dir: usize, pos: u64, dst: &mut [u8]) {
        let data = self.dir_base(dir) + RING_HDR;
        let at = usize::try_from(pos % self.cap as u64).expect("ring offset fits usize");
        let first = dst.len().min(self.cap - at);
        // splpg-lint: allow(forbid-unsafe) — consumer-owned published range, bounds checked above
        unsafe {
            std::ptr::copy_nonoverlapping(self.map.ptr.add(data + at), dst.as_mut_ptr(), first);
            if first < dst.len() {
                std::ptr::copy_nonoverlapping(
                    self.map.ptr.add(data),
                    dst.as_mut_ptr().add(first),
                    dst.len() - first,
                );
            }
        }
    }
}

/// A duplex [`Transport`] endpoint over shared-memory rings — the
/// shm-backed lane the conformance battery certifies alongside the
/// channel and TCP transports.
///
/// Framing inside the ring is `[len u32 LE][frame bytes]`; `head` is
/// published (release) only after the whole frame is in place, so a
/// consumer that observes `head` (acquire) always reads complete
/// frames. Each endpoint owns exactly one producer cursor and one
/// consumer cursor.
pub struct ShmTransport {
    ring: Arc<RingMap>,
    /// Direction this endpoint sends on (it receives on `1 - dir_tx`).
    dir_tx: usize,
    stats: WireStats,
    max_frame: usize,
}

impl std::fmt::Debug for ShmTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShmTransport")
            .field("dir_tx", &self.dir_tx)
            .field("max_frame", &self.max_frame)
            .finish()
    }
}

impl ShmTransport {
    /// A connected duplex pair over a fresh shared-memory segment. The
    /// backing file is unlinked immediately (the mapping keeps it
    /// alive), so nothing leaks even on abnormal exit.
    ///
    /// # Errors
    ///
    /// [`ShmError::Unavailable`] when the host has no usable shm
    /// filesystem.
    pub fn pair(
        max_frame_len: usize,
        stats: WireStats,
    ) -> Result<(ShmTransport, ShmTransport), ShmError> {
        // Each ring must fit at least one maximal frame plus its length
        // prefix, with slack so small frames pipeline.
        let cap = (max_frame_len + 16).next_power_of_two().max(1 << 16);
        let total = 2 * (RING_HDR + cap);
        let path = segment_path(&segment_name("ring"));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| ShmError::Unavailable(format!("create {}: {e}", path.display())))?;
        file.set_len(total as u64)
            .map_err(|e| ShmError::Unavailable(format!("size {}: {e}", path.display())))?;
        let map = Mapping::map(&file, total, true);
        // The mapping outlives the name: unlink regardless of outcome.
        let _ = std::fs::remove_file(&path);
        let ring = Arc::new(RingMap { map: map?, cap });
        Ok((
            ShmTransport { ring: ring.clone(), dir_tx: 0, stats: stats.clone(), max_frame: max_frame_len },
            ShmTransport { ring, dir_tx: 1, stats, max_frame: max_frame_len },
        ))
    }

    fn dir_rx(&self) -> usize {
        1 - self.dir_tx
    }

    /// One poll of the receive ring: `Some(frame)` when a complete
    /// frame is available, `None` when the ring is empty.
    fn try_pop(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let dir = self.dir_rx();
        let tail = self.ring.tail(dir).load(Ordering::Relaxed);
        let head = self.ring.head(dir).load(Ordering::Acquire);
        if head == tail {
            if self.ring.tx_closed(dir).load(Ordering::Acquire) == 1 {
                return Err(NetError::Closed);
            }
            return Ok(None);
        }
        let mut len_bytes = [0u8; 4];
        self.ring.read_at(dir, tail, &mut len_bytes);
        let len = u32::from_le_bytes(len_bytes) as usize;
        debug_assert!(head - tail >= 4 + len as u64, "head published a partial frame");
        let mut frame = vec![0u8; len];
        self.ring.read_at(dir, tail + 4, &mut frame);
        self.ring.tail(dir).store(tail + 4 + len as u64, Ordering::Release);
        Ok(Some(frame))
    }
}

impl Transport for ShmTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        let body = frame.len().saturating_sub(4);
        if body > self.max_frame {
            return Err(NetError::FrameTooLarge { len: body, max: self.max_frame });
        }
        let dir = self.dir_tx;
        let needed = 4 + frame.len() as u64;
        for _ in 0..FULL_RING_ATTEMPTS {
            if self.ring.rx_closed(dir).load(Ordering::Acquire) == 1 {
                return Err(NetError::Closed);
            }
            let head = self.ring.head(dir).load(Ordering::Relaxed);
            let tail = self.ring.tail(dir).load(Ordering::Acquire);
            if self.ring.cap as u64 - (head - tail) >= needed {
                let len = u32::try_from(frame.len()).map_err(|_| NetError::FrameTooLarge {
                    len: frame.len(),
                    max: self.max_frame,
                })?;
                self.ring.write_at(dir, head, &len.to_le_bytes());
                self.ring.write_at(dir, head + 4, &frame);
                self.ring.head(dir).store(head + needed, Ordering::Release);
                self.stats.record_send(frame.len() as u64);
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(POLL_MS));
        }
        Err(NetError::Io(format!(
            "shm ring full for {FULL_RING_ATTEMPTS} polls: receiver wedged"
        )))
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        loop {
            if let Some(frame) = self.try_pop()? {
                return Ok(frame);
            }
            std::thread::sleep(Duration::from_millis(POLL_MS));
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        let attempts = (timeout.as_millis() as u64 / POLL_MS).max(1);
        for attempt in 0..attempts {
            if let Some(frame) = self.try_pop()? {
                return Ok(Some(frame));
            }
            if attempt + 1 < attempts {
                std::thread::sleep(Duration::from_millis(POLL_MS));
            }
        }
        Ok(None)
    }
}

impl Drop for ShmTransport {
    fn drop(&mut self) {
        // Close both of this endpoint's cursors: its producer side (so
        // the peer's recv drains then reports Closed) and its consumer
        // side (so the peer's send fails fast instead of filling the
        // ring).
        self.ring.tx_closed(self.dir_tx).store(1, Ordering::Release);
        self.ring.rx_closed(self.dir_rx()).store(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skip() -> bool {
        if shm_available() {
            false
        } else {
            eprintln!("skipping: no usable /dev/shm on this host");
            true
        }
    }

    fn spec(rows: u64, dim: u64) -> SegmentSpec {
        SegmentSpec { rows, dim, identity: identity_hash(&[1, 2, rows, dim]) }
    }

    fn sample_data(rows: usize, dim: usize) -> Vec<f32> {
        (0..rows * dim).map(|i| i as f32 * 0.25 - 3.0).collect()
    }

    #[test]
    fn segment_round_trips_rows_bit_exactly() {
        if skip() {
            return;
        }
        let (rows, dim) = (13, 7);
        let data = sample_data(rows, dim);
        let spec = spec(rows as u64, dim as u64);
        let owner = ShmOwner::create(&segment_name("t-rt"), &spec, &data).expect("create");
        let lane = ShmLane::attach(owner.name(), &spec).expect("attach");
        assert_eq!(lane.rows(), rows);
        assert_eq!(lane.dim(), dim);
        for r in 0..rows {
            let got = lane.row(r);
            let want = &data[r * dim..(r + 1) * dim];
            assert_eq!(got, want, "row {r}");
            // Bit-exactness, not just float equality.
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.to_bits(), w.to_bits());
            }
        }
    }

    #[test]
    fn attach_missing_segment_is_unavailable() {
        let err = ShmLane::attach("splpg-definitely-missing-0", &spec(1, 1)).expect_err("missing");
        assert!(matches!(err, ShmError::Unavailable(_)), "{err}");
    }

    #[test]
    fn attach_rejects_torn_bad_magic_version_geometry_and_identity() {
        if skip() {
            return;
        }
        let spec4 = spec(4, 3);
        let data = sample_data(4, 3);
        let name = segment_name("t-rej");
        let owner = ShmOwner::create(&name, &spec4, &data).expect("create");
        let path = segment_path(owner.name());
        let pristine = std::fs::read(&path).expect("read");

        let rewrite = |mutate: &dyn Fn(&mut Vec<u8>)| {
            let mut bytes = pristine.clone();
            mutate(&mut bytes);
            std::fs::write(&path, &bytes).expect("rewrite");
        };

        rewrite(&|b| b[OFF_SEALED] = 0);
        assert_eq!(ShmLane::attach(owner.name(), &spec4).expect_err("torn"), ShmError::Torn);

        rewrite(&|b| b[0] ^= 0xff);
        assert_eq!(
            ShmLane::attach(owner.name(), &spec4).expect_err("magic"),
            ShmError::BadMagic
        );

        rewrite(&|b| b[OFF_VERSION] = LAYOUT_VERSION as u8 + 1);
        assert!(matches!(
            ShmLane::attach(owner.name(), &spec4).expect_err("version"),
            ShmError::Version { expect: LAYOUT_VERSION, .. }
        ));

        rewrite(&|_| {});
        let wrong_geom = SegmentSpec { rows: 5, ..spec4 };
        assert!(matches!(
            ShmLane::attach(owner.name(), &wrong_geom).expect_err("geometry"),
            ShmError::Geometry(_)
        ));
        let wrong_id = SegmentSpec { identity: spec4.identity ^ 1, ..spec4 };
        assert!(matches!(
            ShmLane::attach(owner.name(), &wrong_id).expect_err("identity"),
            ShmError::Identity { .. }
        ));

        // And the pristine bytes still attach.
        assert!(ShmLane::attach(owner.name(), &spec4).is_ok());
    }

    #[test]
    fn checksum_catches_torn_payload_writes() {
        if skip() {
            return;
        }
        let s = spec(8, 5);
        let owner =
            ShmOwner::create(&segment_name("t-sum"), &s, &sample_data(8, 5)).expect("create");
        owner.corrupt_payload_for_test().expect("corrupt");
        let err = ShmLane::attach(owner.name(), &s).expect_err("checksum");
        assert!(matches!(err, ShmError::Checksum { .. }), "{err}");
    }

    #[test]
    fn property_layout_roundtrip_across_geometries() {
        if skip() {
            return;
        }
        // A deterministic sweep standing in for a generator: odd dims,
        // single-row, single-column and empty-dim-free shapes.
        for (rows, dim) in [(1usize, 1usize), (1, 17), (64, 1), (3, 33), (40, 16)] {
            let data = sample_data(rows, dim);
            let s = spec(rows as u64, dim as u64);
            let owner = ShmOwner::create(&segment_name("t-prop"), &s, &data).expect("create");
            let lane = ShmLane::attach(owner.name(), &s).expect("attach");
            let mut flat = Vec::with_capacity(rows * dim);
            for r in 0..rows {
                flat.extend_from_slice(lane.row(r));
            }
            assert_eq!(flat, data, "{rows}×{dim}");
        }
    }

    #[test]
    fn owner_drop_unlinks_segment() {
        if skip() {
            return;
        }
        let s = spec(2, 2);
        let name;
        {
            let owner =
                ShmOwner::create(&segment_name("t-drop"), &s, &sample_data(2, 2)).expect("create");
            name = owner.name().to_string();
            assert!(segment_path(&name).exists());
        }
        assert!(!segment_path(&name).exists(), "owner drop must unlink");
    }

    #[test]
    fn ring_transport_round_trips_both_directions() {
        if skip() {
            return;
        }
        let stats = WireStats::new();
        let (mut a, mut b) = ShmTransport::pair(4096, stats.clone()).expect("pair");
        for i in 0..32u8 {
            a.send(vec![i; usize::from(i) + 1]).expect("send");
        }
        for i in 0..32u8 {
            assert_eq!(b.recv().expect("recv"), vec![i; usize::from(i) + 1]);
        }
        b.send(vec![9, 9]).expect("reverse send");
        assert_eq!(a.recv().expect("reverse recv"), vec![9, 9]);
        assert_eq!(stats.snapshot().messages, 33);
    }

    #[test]
    fn ring_wraps_around_capacity() {
        if skip() {
            return;
        }
        let stats = WireStats::new();
        let (mut a, mut b) = ShmTransport::pair(1 << 20, stats).expect("pair");
        // Frames sized to stride unevenly over the ring so the split
        // copy paths run many times.
        let frame: Vec<u8> = (0..40_000).map(|i| (i % 251) as u8).collect();
        for _ in 0..200 {
            a.send(frame.clone()).expect("send");
            assert_eq!(b.recv().expect("recv"), frame);
        }
    }
}
