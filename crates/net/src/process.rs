//! Multi-process cluster launcher: the current binary re-executed as
//! `p` real worker processes, rendezvousing with the master over TCP.
//!
//! Role handoff is by environment variable: [`spawn_cluster`] execs the
//! current binary with [`ENV_ROLE`]`=worker` plus the worker index, the
//! worker count, and the path of a *port file* naming the master's
//! ephemeral listener address. A freshly started child calls
//! [`worker_from_env`]; a `Some` answer means "this process is a
//! worker" and [`WorkerEnv::connect`] turns it into a live
//! [`WorkerPort`]. The parent process (role unset) proceeds as master.
//!
//! The rendezvous never uses a fixed port: the master binds
//! `127.0.0.1:0`, learns the kernel-assigned port, and publishes it by
//! writing a uniquely named file in the temp directory (write to a
//! `.tmp` sibling, then atomically rename), *before* any child is
//! spawned — so a child that can read its environment can always find
//! the address, and parallel test binaries can never collide on a port
//! or a file name.
//!
//! Wire accounting. The master-side [`WireStats`] counts its own sends
//! at send time (as the channel cluster does) and worker frames at
//! *arrival* in the merged inbox. Fault-free, every frame a worker
//! sends arrives, so the totals match the shared-counter channel mode
//! exactly; under injected faults the drops happen worker-side before
//! the wire and are invisible here, exactly as a real lossy network
//! would hide them.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::cluster::{MasterHub, WorkerPort};
use crate::codec;
use crate::fault::{FaultPlan, FaultyTransport};
use crate::tcp::{read_hello, TcpConfig, TcpTransport, POLL_MS};
use crate::transport::{Transport, WireStats};
use crate::NetError;

/// Set to `worker` in a spawned child; unset in the master.
pub const ENV_ROLE: &str = "SPLPG_PROC_ROLE";
/// The child's worker index, `0..workers`.
pub const ENV_WORKER: &str = "SPLPG_PROC_WORKER";
/// Total worker count `p` of the cluster.
pub const ENV_WORKERS: &str = "SPLPG_PROC_WORKERS";
/// Path of the port file naming the master's listener address.
pub const ENV_PORT_FILE: &str = "SPLPG_PROC_PORT_FILE";
/// Name of the shared-memory feature segment the master published, when
/// the feature bus is enabled — unset otherwise. Children attach
/// read-only via [`crate::shm::ShmLane::attach`] and silently fall back
/// to the wire path when the segment is absent or fails validation.
pub const ENV_SHM: &str = "SPLPG_PROC_SHM";

const ROLE_WORKER: &str = "worker";

static PORT_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn io_err(what: &str, e: std::io::Error) -> NetError {
    NetError::Io(format!("{what}: {e}"))
}

/// Shape of a multi-process cluster launch.
#[derive(Debug, Clone, Default)]
pub struct ProcessSpec {
    /// Number of worker processes `p`.
    pub workers: usize,
    /// Fault schedule applied to every lane (master side wraps its
    /// command lanes; workers are expected to wrap theirs via
    /// [`WorkerEnv::connect`] with the *same* plan).
    pub faults: Option<FaultPlan>,
    /// Socket and rendezvous tuning.
    pub tcp: TcpConfig,
    /// Arguments passed to the re-executed binary — for a test binary,
    /// the exact-name filter that routes the child into the worker
    /// entry test.
    pub child_args: Vec<String>,
    /// Wire compression / quantization pair the master encodes under.
    /// Workers negotiate theirs via [`WorkerPort::with_codec`] in the
    /// child entry (frames self-describe, so mixed pairs still decode).
    ///
    /// [`WorkerPort::with_codec`]: crate::WorkerPort::with_codec
    pub codec: crate::compress::CodecConfig,
    /// Shared-memory feature-segment name to advertise to children via
    /// [`ENV_SHM`] (`None` leaves the variable unset and the bus off).
    pub shm_segment: Option<String>,
}

/// Handle on the spawned worker processes: kills whatever is still
/// running when dropped, so a panicking master never leaks children.
#[derive(Debug)]
pub struct ProcessChildren {
    children: Vec<(usize, Child)>,
    port_file: PathBuf,
}

impl ProcessChildren {
    /// Waits for every child to exit and checks their status.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] naming the first worker whose process exited
    /// non-zero (or could not be waited on).
    pub fn join(mut self) -> Result<(), NetError> {
        let mut failure = None;
        for (worker, mut child) in self.children.drain(..) {
            match child.wait() {
                Ok(status) if status.success() => {}
                Ok(status) => {
                    failure.get_or_insert(format!("worker {worker} exited with {status}"));
                }
                Err(e) => {
                    failure.get_or_insert(format!("wait on worker {worker} failed: {e}"));
                }
            }
        }
        let _ = std::fs::remove_file(&self.port_file);
        match failure {
            None => Ok(()),
            Some(msg) => Err(NetError::Io(msg)),
        }
    }
}

impl Drop for ProcessChildren {
    fn drop(&mut self) {
        for (_, child) in &mut self.children {
            let _ = child.kill();
            let _ = child.wait();
        }
        if !self.port_file.as_os_str().is_empty() {
            let _ = std::fs::remove_file(&self.port_file);
        }
    }
}

/// Spawns `spec.workers` copies of the current binary as worker
/// processes, accepts their dials, and assembles the master's endpoint:
/// one TCP command lane per worker plus a merged response inbox fed by
/// one reader thread per peer.
///
/// The caller must already have checked [`worker_from_env`] — calling
/// this *from* a worker child would fork-bomb.
///
/// # Errors
///
/// [`NetError::Io`] when sockets, the port file, or process spawning
/// fail, or when the rendezvous window closes before every worker has
/// dialed in; [`NetError::Codec`] on a malformed hello.
pub fn spawn_cluster(spec: &ProcessSpec) -> Result<(MasterHub, ProcessChildren), NetError> {
    if spec.workers == 0 {
        return Err(NetError::Io("a cluster needs at least one worker".to_string()));
    }
    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("loopback bind failed", e))?;
    let addr = listener.local_addr().map_err(|e| io_err("local_addr failed", e))?;
    let port_file = publish_port_file(addr)?;

    let exe = std::env::current_exe().map_err(|e| io_err("current_exe failed", e))?;
    let mut children = ProcessChildren { children: Vec::new(), port_file: port_file.clone() };
    for w in 0..spec.workers {
        let mut cmd = Command::new(&exe);
        cmd.args(&spec.child_args)
            .env(ENV_ROLE, ROLE_WORKER)
            .env(ENV_WORKER, w.to_string())
            .env(ENV_WORKERS, spec.workers.to_string())
            .env(ENV_PORT_FILE, &port_file);
        if let Some(name) = &spec.shm_segment {
            cmd.env(ENV_SHM, name);
        }
        let child = cmd
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| io_err("worker spawn failed", e))?;
        children.children.push((w, child));
    }

    let stats = WireStats::new();
    let (inbox_tx, inbox_rx) = sync_channel::<Result<Vec<u8>, NetError>>(
        (spec.workers * 8).max(64),
    );
    let mut to_workers: Vec<Option<Box<dyn Transport>>> = Vec::new();
    to_workers.resize_with(spec.workers, || None);
    let mut readers = Vec::with_capacity(spec.workers);
    let mut controls = Vec::with_capacity(spec.workers);

    listener
        .set_nonblocking(true)
        .map_err(|e| io_err("set_nonblocking failed", e))?;
    let mut budget = spec.tcp.poll_budget();
    let mut accepted = 0usize;
    while accepted < spec.workers {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if budget == 0 {
                    return Err(NetError::Io(format!(
                        "rendezvous timed out with {accepted} of {} workers connected",
                        spec.workers
                    )));
                }
                budget -= 1;
                std::thread::sleep(Duration::from_millis(POLL_MS));
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err("accept failed", e)),
        };
        stream.set_nonblocking(false).map_err(|e| io_err("set_nonblocking failed", e))?;
        let w = read_hello(&stream, &spec.tcp)? as usize;
        if w >= spec.workers {
            return Err(NetError::Codec(format!(
                "hello declared worker {w} but the cluster has {} workers",
                spec.workers
            )));
        }
        if to_workers[w].is_some() {
            return Err(NetError::Codec(format!("worker {w} dialed in twice")));
        }
        let reader_stream =
            stream.try_clone().map_err(|e| io_err("stream clone failed", e))?;
        let control = stream.try_clone().map_err(|e| io_err("stream clone failed", e))?;
        let tx = inbox_tx.clone();
        let arrival_stats = stats.clone();
        let max = spec.tcp.max_frame_len;
        let handle = std::thread::Builder::new()
            .name(format!("splpg-inbox-{w}"))
            .spawn(move || inbox_reader(reader_stream, &tx, &arrival_stats, max))
            .map_err(|e| io_err("inbox reader spawn failed", e))?;
        readers.push(handle);
        controls.push(control);
        let mut lane: Box<dyn Transport> =
            Box::new(TcpTransport::write_half(stream, &spec.tcp, stats.clone())?);
        if let Some(plan) = &spec.faults {
            lane = Box::new(FaultyTransport::new(lane, plan.clone(), 2 * w as u64, stats.clone()));
        }
        to_workers[w] = Some(lane);
        accepted += 1;
    }
    drop(inbox_tx);

    let inbox = TcpInbox { rx: inbox_rx, readers, controls };
    let hub = MasterHub::from_parts(to_workers, Box::new(inbox), stats).with_codec(spec.codec);
    Ok((hub, children))
}

/// Counts an arriving worker frame exactly like the channel cluster
/// counts it at send time, then forwards it into the merged inbox.
fn inbox_reader(
    mut stream: TcpStream,
    tx: &SyncSender<Result<Vec<u8>, NetError>>,
    stats: &WireStats,
    max: usize,
) {
    loop {
        match codec::read_frame(&mut stream, max) {
            Ok(Some(frame)) => {
                stats.record_send(frame.len() as u64);
                if tx.send(Ok(frame)).is_err() {
                    break;
                }
            }
            Ok(None) | Err(NetError::Closed) => break,
            Err(e) => {
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

/// The master's merged response inbox over `p` peer sockets: one reader
/// thread per peer feeds a single bounded channel, and the channel
/// disconnects — surfacing [`NetError::Closed`] — only once *every*
/// worker has hung up, matching the channel cluster's inbox semantics.
struct TcpInbox {
    rx: Receiver<Result<Vec<u8>, NetError>>,
    readers: Vec<JoinHandle<()>>,
    controls: Vec<TcpStream>,
}

impl Transport for TcpInbox {
    fn send(&mut self, _frame: Vec<u8>) -> Result<(), NetError> {
        Err(NetError::Closed)
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        match self.rx.recv() {
            Ok(frame) => frame,
            Err(_) => Err(NetError::Closed),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(frame)) => Ok(Some(frame)),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

impl Drop for TcpInbox {
    fn drop(&mut self) {
        // Wake any reader still blocked on a socket (its worker may be
        // wedged rather than exited); only the read direction is shut so
        // a command lane sharing the stream is unaffected.
        for control in &self.controls {
            let _ = control.shutdown(Shutdown::Read);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A worker child's view of its environment, decoded from the variables
/// [`spawn_cluster`] set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerEnv {
    worker: usize,
    workers: usize,
    port_file: PathBuf,
    shm_segment: Option<String>,
}

impl WorkerEnv {
    /// This process's worker index.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Total worker count of the cluster.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Name of the shared-memory feature segment the launcher advertised
    /// via [`ENV_SHM`], if the feature bus is enabled for this run.
    pub fn shm_segment(&self) -> Option<&str> {
        self.shm_segment.as_deref()
    }

    /// Reads the master's address from the port file and dials it,
    /// wrapping the duplex lane in the worker-side fault schedule when
    /// `faults` is active — lane `2w + 1`, the exact numbering the
    /// channel cluster uses, so a seeded faulty run replays identically
    /// across transports.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when the port file never materializes or every
    /// dial attempt fails.
    pub fn connect(
        &self,
        faults: Option<&FaultPlan>,
        tcp: &TcpConfig,
    ) -> Result<WorkerPort, NetError> {
        let addr = read_port_file(&self.port_file, tcp)?;
        let stats = WireStats::new();
        let transport = TcpTransport::connect(addr, self.worker as u32, tcp, stats.clone())?;
        let lane: Box<dyn Transport> = match faults {
            Some(plan) => Box::new(FaultyTransport::new(
                transport,
                plan.clone(),
                2 * self.worker as u64 + 1,
                stats,
            )),
            None => Box::new(transport),
        };
        Ok(WorkerPort::from_duplex(self.worker, lane))
    }
}

/// Decodes the worker-role environment. `Ok(None)` means this process
/// is the master (no role variable set); `Ok(Some(_))` means it was
/// spawned as a worker and should run a worker loop, never a launcher.
///
/// # Errors
///
/// [`NetError::Io`] when the role is set but its companion variables
/// are missing or malformed — a broken launcher, worth failing loudly.
pub fn worker_from_env() -> Result<Option<WorkerEnv>, NetError> {
    match std::env::var(ENV_ROLE) {
        Ok(role) if role == ROLE_WORKER => {}
        Ok(role) => {
            return Err(NetError::Io(format!("unknown {ENV_ROLE} value {role:?}")));
        }
        Err(_) => return Ok(None),
    }
    let get = |key: &str| {
        std::env::var(key).map_err(|_| NetError::Io(format!("{key} missing in worker child")))
    };
    let worker = get(ENV_WORKER)?
        .parse::<usize>()
        .map_err(|e| NetError::Io(format!("bad {ENV_WORKER}: {e}")))?;
    let workers = get(ENV_WORKERS)?
        .parse::<usize>()
        .map_err(|e| NetError::Io(format!("bad {ENV_WORKERS}: {e}")))?;
    if worker >= workers {
        return Err(NetError::Io(format!(
            "worker index {worker} out of range for {workers} workers"
        )));
    }
    let port_file = PathBuf::from(get(ENV_PORT_FILE)?);
    let shm_segment = std::env::var(ENV_SHM).ok();
    Ok(Some(WorkerEnv { worker, workers, port_file, shm_segment }))
}

/// Writes `addr` into a uniquely named file in the temp directory,
/// atomically (write a `.tmp` sibling, rename into place). The name
/// mixes the process id and a per-process counter so parallel test
/// binaries never collide.
fn publish_port_file(addr: SocketAddr) -> Result<PathBuf, NetError> {
    let seq = PORT_FILE_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir()
        .join(format!("splpg-port-{}-{seq}.addr", std::process::id()));
    let tmp = path.with_extension("addr.tmp");
    {
        let mut file =
            std::fs::File::create(&tmp).map_err(|e| io_err("port file create failed", e))?;
        writeln!(file, "{addr}").map_err(|e| io_err("port file write failed", e))?;
        file.sync_all().map_err(|e| io_err("port file sync failed", e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| io_err("port file rename failed", e))?;
    Ok(path)
}

/// Reads the master's address back out of the port file, polling with
/// a bounded attempt budget — the file is written before any child is
/// spawned, so the poll is a robustness net, not a protocol step.
fn read_port_file(path: &Path, tcp: &TcpConfig) -> Result<SocketAddr, NetError> {
    let mut budget = tcp.poll_budget();
    loop {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let text = text.trim();
                if !text.is_empty() {
                    return text.parse::<SocketAddr>().map_err(|e| {
                        NetError::Io(format!("port file {} is malformed: {e}", path.display()))
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("port file read failed", e)),
        }
        if budget == 0 {
            return Err(NetError::Io(format!(
                "port file {} never materialized",
                path.display()
            )));
        }
        budget -= 1;
        std::thread::sleep(Duration::from_millis(POLL_MS));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_file_round_trips_the_address() {
        let addr: SocketAddr = "127.0.0.1:34567".parse().unwrap();
        let path = publish_port_file(addr).unwrap();
        let read = read_port_file(&path, &TcpConfig::default()).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(read, addr);
    }

    #[test]
    fn missing_port_file_fails_within_budget() {
        let path = std::env::temp_dir().join("splpg-port-never-written.addr");
        let tcp = TcpConfig { io_timeout_ms: 30, ..TcpConfig::default() };
        let err = read_port_file(&path, &tcp).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
    }

    #[test]
    fn worker_env_decoding_rejects_malformed_roles() {
        // The master path: no role set in this test process.
        assert_eq!(worker_from_env().unwrap(), None);
    }
}
