//! Message-passing cluster runtime for the SpLPG reproduction.
//!
//! The paper's cluster (one master + `p` workers synchronizing model
//! state every epoch or every mini-batch) was previously simulated with
//! shared memory inside `splpg-dist`; this crate makes the wire real.
//! Workers run as long-lived actor threads (hosted by
//! [`splpg_par::actor_scope`]) and exchange **only** typed,
//! length-prefixed, serialized messages:
//!
//! * [`Request`] / [`Response`] — the master⇄worker protocol: broadcast
//!   parameters, collect trained replicas or gradients, declare
//!   unavailability, stop;
//! * [`codec`] — the in-tree wire format (little-endian, length-prefixed
//!   frames with a fixed identity header, no external serialization
//!   dependency);
//! * [`compress`] — the per-connection compression/quantization layer
//!   ([`CodecConfig`]): delta+varint/RLE packing for structure payloads,
//!   f16/int8 row quantization for feature payloads, self-described by a
//!   versioned codec byte in every frame;
//! * [`Transport`] — one directed lane moving encoded frames, implemented
//!   over bounded [`std::sync::mpsc`] channels by [`ChannelTransport`];
//! * [`FaultyTransport`] — a decorator injecting *deterministic* drop,
//!   duplicate and delay faults: every decision is a pure avalanche-hash
//!   function of `(seed, lane, message identity)`, never of wall-clock
//!   time or thread scheduling, so a seeded faulty run replays exactly
//!   across processes;
//! * [`MasterHub`] / [`WorkerPort`] — the typed endpoints a cluster run
//!   hands to the master loop and each worker loop;
//! * [`RetryPolicy`] — per-message timeout with bounded exponential
//!   backoff, used by the master's gather loop when faults or a partial
//!   quorum make silence possible.
//!
//! Fault-free clusters never consult a clock: the master uses plain
//! blocking receives, which is what makes a full-quorum run bit-identical
//! to a sequential execution of the same arithmetic.
//!
//! Unsafe code is denied crate-wide and re-allowed for exactly one
//! module: [`shm`], the sanctioned home of the mmap-backed feature bus
//! (`splpg-lint`'s `forbid-unsafe` rule pins both the carve-out and the
//! per-block justification pragmas inside it).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod cluster;
pub mod compress;
pub mod conformance;
mod fault;
mod message;
pub mod process;
#[allow(unsafe_code)]
pub mod shm;
mod tcp;
mod transport;

pub use cluster::{build_cluster, run_cluster, ClusterConfig, MasterHub, WorkerPort};
pub use compress::{CodecConfig, FeatCodec, StructCodec};
pub use fault::{FaultPlan, FaultyTransport, RetryPolicy};
pub use message::{FetchLedger, Message, MsgId, Request, Response};
pub use shm::{SegmentSpec, ShmError, ShmLane, ShmOwner, ShmSegment, ShmTransport};
pub use tcp::{TcpConfig, TcpTransport};
pub use transport::{ChannelTransport, KindStat, Transport, WireSnapshot, WireStats};

/// Errors surfaced by the wire layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// The peer endpoint hung up (channel disconnected).
    Closed,
    /// A frame failed to decode (truncated, bad tag, bad length).
    Codec(String),
    /// A frame declared a body larger than the enforced ceiling; rejected
    /// before any allocation matching the hostile length claim.
    FrameTooLarge {
        /// Body length the frame declared.
        len: usize,
        /// Ceiling the endpoint enforces.
        max: usize,
    },
    /// A socket or process-level i/o failure that is not a clean peer
    /// hang-up (timeout, refused connection, rendezvous failure, ...).
    Io(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Closed => write!(f, "transport closed by peer"),
            NetError::Codec(msg) => write!(f, "wire codec error: {msg}"),
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::Io(msg) => write!(f, "wire i/o error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}
