use std::sync::mpsc::sync_channel;
use std::sync::Mutex;
use std::time::Duration;

use crate::codec;
use crate::compress::CodecConfig;
use crate::fault::{FaultPlan, FaultyTransport};
use crate::message::{Message, Request, Response};
use crate::transport::{ChannelTransport, Transport, WireSnapshot, WireStats};
use crate::NetError;

/// Shape of a cluster's wiring.
#[derive(Debug, Clone, Default)]
pub struct ClusterConfig {
    /// Number of workers `p`.
    pub workers: usize,
    /// Optional fault injection applied to every lane.
    pub faults: Option<FaultPlan>,
    /// Wire compression / quantization pair every endpoint encodes
    /// under (frames self-describe, so decoding needs no config).
    pub codec: CodecConfig,
}

impl ClusterConfig {
    // The master sends at most (1 + max_retries) command frames per
    // worker per gather, each possibly duplicated once, and drains the
    // inbox before the next gather; these bounds keep every lane's
    // buffer ahead of the worst in-flight count so a bounded channel
    // can never deadlock the protocol.
    fn command_capacity(&self) -> usize {
        32
    }

    fn inbox_capacity(&self) -> usize {
        (self.workers * 8).max(64)
    }
}

/// The master's typed endpoint: one command lane per worker plus a
/// shared response inbox.
///
/// Workers are addressed by index; a lane that reports
/// [`NetError::Closed`] (its worker crashed and hung up) is retired and
/// subsequent sends to it return `false`.
pub struct MasterHub {
    to_workers: Vec<Option<Box<dyn Transport>>>,
    inbox: Box<dyn Transport>,
    stats: WireStats,
    codec: CodecConfig,
}

impl MasterHub {
    /// Assembles a hub from already-connected lanes: one send lane per
    /// worker plus a merged response inbox. Used by the channel builder
    /// and the TCP acceptor alike.
    pub fn from_parts(
        to_workers: Vec<Option<Box<dyn Transport>>>,
        inbox: Box<dyn Transport>,
        stats: WireStats,
    ) -> Self {
        MasterHub { to_workers, inbox, stats, codec: CodecConfig::default() }
    }

    /// Sets the codec pair this hub encodes requests under. The per-kind
    /// histogram meters both directions against this hub's counters.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecConfig) -> Self {
        self.codec = codec;
        self
    }

    /// Number of worker lanes (including retired ones).
    pub fn workers(&self) -> usize {
        self.to_workers.len()
    }

    /// Sends a request to `worker`. Returns `false` when the worker's
    /// lane is closed (the worker is gone); the frame is not sent.
    pub fn send(&mut self, worker: usize, req: &Request) -> bool {
        let Some(slot) = self.to_workers.get_mut(worker) else { return false };
        let Some(lane) = slot else { return false };
        let frame = codec::encode_with(&Message::Request(req.clone()), self.codec);
        let (kind, wire) = (frame[4], frame.len() as u64);
        let raw = codec::raw_request_frame_len(req) as u64;
        match lane.send(frame) {
            Ok(()) => {
                // One histogram entry per protocol message, recorded on
                // the master side only so channel- and TCP-backed
                // clusters count identically.
                self.stats.record_kind(kind, raw, wire);
                true
            }
            Err(_) => {
                *slot = None;
                false
            }
        }
    }

    /// Blocks for the next response.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when every worker is gone, [`NetError::Codec`]
    /// on malformed frames.
    pub fn recv(&mut self) -> Result<Response, NetError> {
        let frame = self.inbox.recv()?;
        let resp = decode_response(&frame)?;
        self.record_response(&frame, &resp);
        Ok(resp)
    }

    /// Waits up to `timeout` for the next response; `Ok(None)` on a quiet
    /// window.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when every worker is gone, [`NetError::Codec`]
    /// on malformed frames.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Response>, NetError> {
        match self.inbox.recv_timeout(timeout)? {
            Some(frame) => {
                let resp = decode_response(&frame)?;
                self.record_response(&frame, &resp);
                Ok(Some(resp))
            }
            None => Ok(None),
        }
    }

    fn record_response(&self, frame: &[u8], resp: &Response) {
        let kind = frame.get(4).copied().unwrap_or(0);
        let raw = codec::raw_response_frame_len(resp) as u64;
        self.stats.record_kind(kind, raw, frame.len() as u64);
    }

    /// Broadcasts [`Request::Stop`] and retires every lane, releasing
    /// workers blocked on their command channel.
    pub fn shutdown(&mut self) {
        for w in 0..self.to_workers.len() {
            let _ = self.send(w, &Request::Stop { id: crate::MsgId::default() });
        }
        for slot in &mut self.to_workers {
            *slot = None;
        }
    }

    /// Point-in-time copy of the cluster-wide wire counters.
    ///
    /// Counters are recorded on the sending thread *after* the frame
    /// enters its lane, so a snapshot taken while workers are still
    /// running may miss frames the master has already received. For
    /// exact totals keep a [`MasterHub::stats_handle`] and snapshot it
    /// after [`run_cluster`] has joined every worker.
    pub fn stats(&self) -> WireSnapshot {
        self.stats.snapshot()
    }

    /// A handle on the live wire counters that outlives the hub —
    /// snapshot it after [`run_cluster`] returns for race-free totals.
    pub fn stats_handle(&self) -> WireStats {
        self.stats.clone()
    }

    /// Records one retransmission round in the wire counters.
    pub fn note_retry(&self) {
        self.stats.record_retry();
    }
}

fn decode_response(frame: &[u8]) -> Result<Response, NetError> {
    match Message::decode(frame)? {
        Message::Response(r) => Ok(r),
        Message::Request(_) => {
            Err(NetError::Codec("request frame arrived on the master inbox".to_string()))
        }
    }
}

/// One worker's typed endpoint: a single duplex lane carrying commands
/// down and responses up.
///
/// The fault decorator only ever acts on the send side of a lane, so a
/// duplex lane wrapped once behaves exactly like the former split
/// (command receiver + response sender) wiring: worker→master frames go
/// through the worker's fault schedule, master→worker frames through the
/// master's.
pub struct WorkerPort {
    worker: usize,
    lane: Box<dyn Transport>,
    codec: CodecConfig,
}

impl WorkerPort {
    /// Wraps an already-connected duplex lane as worker `worker`'s port.
    /// Used by the channel builder and the TCP dialer alike.
    pub fn from_duplex(worker: usize, lane: Box<dyn Transport>) -> Self {
        WorkerPort { worker, lane, codec: CodecConfig::default() }
    }

    /// Sets the codec pair this port encodes responses under.
    #[must_use]
    pub fn with_codec(mut self, codec: CodecConfig) -> Self {
        self.codec = codec;
        self
    }

    /// This worker's index.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Blocks for the next request. [`NetError::Closed`] means the
    /// master hung up — the worker loop should exit.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] on master hang-up, [`NetError::Codec`] on
    /// malformed frames.
    pub fn recv(&mut self) -> Result<Request, NetError> {
        let frame = self.lane.recv()?;
        match Message::decode(&frame)? {
            Message::Request(r) => Ok(r),
            Message::Response(_) => {
                Err(NetError::Codec("response frame arrived on a worker port".to_string()))
            }
        }
    }

    /// Sends a response to the master.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] when the master hung up.
    pub fn send(&mut self, resp: &Response) -> Result<(), NetError> {
        self.lane.send(codec::encode_with(&Message::Response(resp.clone()), self.codec))
    }
}

/// Builds the wiring of a cluster: one [`MasterHub`] plus `p`
/// [`WorkerPort`]s over bounded channels, with fault decorators on every
/// lane when the config carries a [`FaultPlan`].
///
/// Lane numbering for the fault schedule: master→worker `w` is lane
/// `2w`, worker `w`→master is lane `2w + 1`.
pub fn build_cluster(config: &ClusterConfig) -> (MasterHub, Vec<WorkerPort>) {
    let stats = WireStats::new();
    let (inbox_tx, inbox_rx) = sync_channel::<Vec<u8>>(config.inbox_capacity());
    let mut to_workers: Vec<Option<Box<dyn Transport>>> = Vec::with_capacity(config.workers);
    let mut ports = Vec::with_capacity(config.workers);
    for w in 0..config.workers {
        let (cmd_tx, cmd_rx) = sync_channel::<Vec<u8>>(config.command_capacity());
        let mut master_side: Box<dyn Transport> =
            Box::new(ChannelTransport::sender(cmd_tx, stats.clone()));
        let mut worker_lane: Box<dyn Transport> =
            Box::new(ChannelTransport::new(inbox_tx.clone(), cmd_rx, stats.clone()));
        if let Some(plan) = &config.faults {
            master_side = Box::new(FaultyTransport::new(
                master_side,
                plan.clone(),
                2 * w as u64,
                stats.clone(),
            ));
            worker_lane = Box::new(FaultyTransport::new(
                worker_lane,
                plan.clone(),
                2 * w as u64 + 1,
                stats.clone(),
            ));
        }
        to_workers.push(Some(master_side));
        ports.push(WorkerPort::from_duplex(w, worker_lane).with_codec(config.codec));
    }
    // The hub keeps no inbox sender: once every worker port is dropped,
    // the master's receive side observes Closed instead of hanging.
    drop(inbox_tx);
    let hub = MasterHub::from_parts(
        to_workers,
        Box::new(ChannelTransport::receiver(inbox_rx, stats.clone())),
        stats,
    )
    .with_codec(config.codec);
    (hub, ports)
}

/// Runs a full cluster: `p` worker bodies on dedicated actor threads
/// (hosted by [`splpg_par::actor_scope`]) and `master` on the calling
/// thread. Returns the master's result after every worker exited.
///
/// The hub is handed to `master` by value; dropping it (or returning)
/// retires every command lane, which unblocks workers waiting in
/// [`WorkerPort::recv`] and lets the implicit join complete — the
/// structural argument for "never deadlocks on the error path".
pub fn run_cluster<R>(
    config: &ClusterConfig,
    worker: impl Fn(WorkerPort) + Sync,
    master: impl FnOnce(MasterHub) -> R,
) -> R {
    let (hub, ports) = build_cluster(config);
    let cells: Vec<Mutex<Option<WorkerPort>>> =
        ports.into_iter().map(|p| Mutex::new(Some(p))).collect();
    splpg_par::actor_scope(
        config.workers,
        |i| {
            let port = cells[i]
                .lock()
                .expect("invariant: port cell never poisoned")
                .take()
                .expect("invariant: one actor per port");
            worker(port);
        },
        move || master(hub),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{FetchLedger, MsgId};

    fn echo_worker(mut port: WorkerPort) {
        while let Ok(req) = port.recv() {
            match req {
                Request::Stop { .. } => break,
                Request::Epoch { id, params } | Request::Round { id, params } => {
                    let resp = Response::Epoch {
                        id: MsgId { worker: port.worker() as u32, ..id },
                        params,
                        loss_sum: port.worker() as f64,
                        batches: 1,
                        ledger: FetchLedger::default(),
                    };
                    if port.send(&resp).is_err() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn broadcast_gather_echo() {
        let config = ClusterConfig { workers: 3, faults: None, codec: CodecConfig::default() };
        let losses = run_cluster(&config, echo_worker, |mut hub| {
            let req = |w: u32| Request::Epoch {
                id: MsgId { worker: w, epoch: 1, round: 0, attempt: 0 },
                params: vec![1.0, 2.0],
            };
            for w in 0..3 {
                assert!(hub.send(w, &req(w as u32)));
            }
            let mut losses = vec![f64::NAN; 3];
            for _ in 0..3 {
                let Response::Epoch { id, loss_sum, params, .. } = hub.recv().unwrap() else {
                    panic!("wrong response kind")
                };
                assert_eq!(params, vec![1.0, 2.0]);
                losses[id.worker as usize] = loss_sum;
            }
            hub.shutdown();
            losses
        });
        assert_eq!(losses, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn dropping_hub_releases_workers() {
        let config = ClusterConfig { workers: 4, faults: None, codec: CodecConfig::default() };
        // Master returns immediately without shutdown; workers must
        // still exit via the Closed signal (this test hanging = failure).
        run_cluster(&config, echo_worker, drop);
    }

    #[test]
    fn worker_exit_surfaces_as_closed_inbox() {
        let config = ClusterConfig { workers: 1, faults: None, codec: CodecConfig::default() };
        run_cluster(
            &config,
            drop,
            |mut hub| {
                assert_eq!(hub.recv().unwrap_err(), NetError::Closed);
                assert!(!hub.send(0, &Request::Stop { id: MsgId::default() }) || {
                    // The worker may not have dropped its receiver yet;
                    // the follow-up send must observe the closure.
                    std::thread::sleep(Duration::from_millis(50));
                    !hub.send(0, &Request::Stop { id: MsgId::default() })
                });
            },
        );
    }

    #[test]
    fn stats_count_both_directions() {
        let config = ClusterConfig { workers: 2, faults: None, codec: CodecConfig::default() };
        // Snapshot only after run_cluster joined the workers: counters
        // land on the sending thread after the frame is already in the
        // lane, so an in-flight snapshot could miss a delivered frame.
        let stats = run_cluster(&config, echo_worker, |mut hub| {
            for w in 0..2 {
                hub.send(
                    w,
                    &Request::Round {
                        id: MsgId { worker: w as u32, epoch: 0, round: 0, attempt: 0 },
                        params: vec![0.5],
                    },
                );
            }
            for _ in 0..2 {
                hub.recv().unwrap();
            }
            let stats = hub.stats_handle();
            hub.shutdown();
            stats
        });
        let snap = stats.snapshot();
        // 2 commands + 2 responses + 2 stop frames.
        assert_eq!(snap.messages, 6);
        assert!(snap.bytes > 0);
        assert_eq!(snap.dropped, 0);
    }
}
