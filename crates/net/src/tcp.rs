//! Socket-backed [`Transport`]: length-prefixed frames straight onto TCP.
//!
//! The wire format is *already* self-delimiting — every frame starts with
//! its little-endian body length — so the socket layer adds nothing but
//! byte movement: a send is one `write_all` of the encoded frame, a
//! receive is [`crate::codec::read_frame`] pulling exactly one frame off
//! the stream. All typing stays in the codec, all policy in the master
//! loop, exactly as with the in-process [`ChannelTransport`].
//!
//! Deadline mapping. Send deadlines ride on the socket itself via
//! [`TcpStream::set_write_timeout`]: a peer that stops draining its
//! receive buffer eventually stalls our writes, and the expiry surfaces
//! as a typed [`NetError::Io`]. Receive deadlines are enforced one layer
//! up: a dedicated reader thread blocks on the socket and feeds decoded
//! frames into a bounded channel, so [`Transport::recv_timeout`] is a
//! plain timed channel receive — the same code path (and therefore the
//! same retry/backoff behaviour in the master) as the channel transport.
//! [`TcpStream::set_read_timeout`] is used where a socket read must be
//! bounded without a reader thread: the acceptor's hello handshake.
//!
//! Shutdown protocol. Dropping a duplex endpoint half-closes the socket
//! (`FIN`); TCP delivers every already-queued frame to the peer *before*
//! its reader observes end-of-stream, so queued-then-drop means the frame
//! still arrives and only then does the peer see [`NetError::Closed`].
//! The drop also shuts down the read side to wake this endpoint's own
//! reader thread out of a blocking read, then joins it — no detached
//! threads survive a transport.
//!
//! [`ChannelTransport`]: crate::ChannelTransport

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::codec;
use crate::transport::{Transport, WireStats};
use crate::NetError;

/// First 4 bytes a dialing worker writes: protocol magic (`"sLPG"`).
pub(crate) const HELLO_MAGIC: u32 = u32::from_le_bytes(*b"sLPG");

/// Frames buffered between the reader thread and `recv` before the
/// reader exerts backpressure on the socket.
const READER_INBOX_CAP: usize = 64;

/// Milliseconds between polls of a not-yet-ready resource (listener
/// accept, rendezvous file); bounded-attempt loops use this as the unit.
pub(crate) const POLL_MS: u64 = 10;

/// Tuning knobs of the socket transport and the process rendezvous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConfig {
    /// Ceiling on the body length a received or sent frame may declare;
    /// enforced before any allocation. Defaults to
    /// [`codec::DEFAULT_MAX_FRAME_LEN`].
    pub max_frame_len: usize,
    /// Dial attempts before [`TcpTransport::connect`] gives up.
    pub connect_attempts: u32,
    /// Sleep between dial attempts, in milliseconds.
    pub connect_backoff_ms: u64,
    /// Socket-level send deadline and handshake read deadline, in
    /// milliseconds; `0` means block indefinitely.
    pub io_timeout_ms: u64,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            max_frame_len: codec::DEFAULT_MAX_FRAME_LEN,
            connect_attempts: 100,
            connect_backoff_ms: 50,
            io_timeout_ms: 10_000,
        }
    }
}

impl TcpConfig {
    /// The socket timeout as an `Option<Duration>` (`None` = blocking).
    pub(crate) fn io_timeout(&self) -> Option<Duration> {
        (self.io_timeout_ms > 0).then(|| Duration::from_millis(self.io_timeout_ms))
    }

    /// Attempt budget for a bounded poll loop covering `io_timeout_ms`.
    pub(crate) fn poll_budget(&self) -> u64 {
        (self.io_timeout_ms.max(1)).div_ceil(POLL_MS).max(1)
    }
}

fn io_err(what: &str, e: std::io::Error) -> NetError {
    NetError::Io(format!("{what}: {e}"))
}

fn is_peer_death(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::NotConnected
    )
}

/// A [`Transport`] over one TCP stream.
///
/// Duplex endpoints (built by [`TcpTransport::connect`],
/// [`TcpTransport::from_stream`] or [`TcpTransport::pair`]) own a reader
/// thread that turns the byte stream back into frames; write-half
/// endpoints (built by the acceptor, whose read sides feed a merged
/// inbox) have no reader and report [`NetError::Closed`] on `recv`.
pub struct TcpTransport {
    writer: Option<TcpStream>,
    control: TcpStream,
    rx: Option<Receiver<Result<Vec<u8>, NetError>>>,
    reader: Option<JoinHandle<()>>,
    stats: WireStats,
    max_frame: usize,
}

impl std::fmt::Debug for TcpTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpTransport")
            .field("peer", &self.control.peer_addr().ok())
            .field("duplex", &self.rx.is_some())
            .finish_non_exhaustive()
    }
}

impl TcpTransport {
    /// Wraps a connected stream as a duplex endpoint: enables
    /// `TCP_NODELAY` (frames are latency-bound, not bandwidth-bound),
    /// arms the send deadline, and spawns the reader thread.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when socket options or the thread spawn fail.
    pub fn from_stream(stream: TcpStream, config: &TcpConfig, stats: WireStats) -> Result<Self, NetError> {
        stream.set_nodelay(true).map_err(|e| io_err("set_nodelay failed", e))?;
        stream
            .set_write_timeout(config.io_timeout())
            .map_err(|e| io_err("set_write_timeout failed", e))?;
        let reader_stream = stream.try_clone().map_err(|e| io_err("stream clone failed", e))?;
        let control = stream.try_clone().map_err(|e| io_err("stream clone failed", e))?;
        let (tx, rx) = sync_channel(READER_INBOX_CAP);
        let max = config.max_frame_len;
        let reader = std::thread::Builder::new()
            .name("splpg-tcp-reader".to_string())
            .spawn(move || reader_loop(reader_stream, &tx, max))
            .map_err(|e| io_err("reader thread spawn failed", e))?;
        Ok(TcpTransport {
            writer: Some(stream),
            control,
            rx: Some(rx),
            reader: Some(reader),
            stats,
            max_frame: max,
        })
    }

    /// Wraps a stream as a send-only endpoint — the master's per-worker
    /// command lanes, whose read sides are consumed by the merged inbox
    /// of [`crate::process::spawn_cluster`]. `recv` on this endpoint
    /// reports [`NetError::Closed`], mirroring
    /// [`ChannelTransport::sender`](crate::ChannelTransport::sender).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when socket options fail.
    pub fn write_half(stream: TcpStream, config: &TcpConfig, stats: WireStats) -> Result<Self, NetError> {
        stream.set_nodelay(true).map_err(|e| io_err("set_nodelay failed", e))?;
        stream
            .set_write_timeout(config.io_timeout())
            .map_err(|e| io_err("set_write_timeout failed", e))?;
        let control = stream.try_clone().map_err(|e| io_err("stream clone failed", e))?;
        Ok(TcpTransport {
            writer: Some(stream),
            control,
            rx: None,
            reader: None,
            stats,
            max_frame: config.max_frame_len,
        })
    }

    /// Dials `addr` with bounded retry (the listener may not be up yet
    /// when a spawned worker races the master to the rendezvous), then
    /// writes the 8-byte hello `[magic][worker]` identifying this end.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when every dial attempt fails or the hello
    /// cannot be written.
    pub fn connect(
        addr: SocketAddr,
        worker: u32,
        config: &TcpConfig,
        stats: WireStats,
    ) -> Result<Self, NetError> {
        let attempts = config.connect_attempts.max(1);
        let mut last = String::new();
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(config.connect_backoff_ms.max(1)));
            }
            match TcpStream::connect(addr) {
                Ok(mut stream) => {
                    stream
                        .set_write_timeout(config.io_timeout())
                        .map_err(|e| io_err("set_write_timeout failed", e))?;
                    let mut hello = [0u8; 8];
                    hello[..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
                    hello[4..].copy_from_slice(&worker.to_le_bytes());
                    stream
                        .write_all(&hello)
                        .and_then(|()| stream.flush())
                        .map_err(|e| io_err("hello write failed", e))?;
                    return TcpTransport::from_stream(stream, config, stats);
                }
                Err(e) => last = e.to_string(),
            }
        }
        Err(NetError::Io(format!("connect to {addr} failed after {attempts} attempts: {last}")))
    }

    /// A connected loopback pair of duplex endpoints sharing `stats`
    /// (mostly for tests), mirroring
    /// [`ChannelTransport::pair`](crate::ChannelTransport::pair).
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] when loopback sockets are unavailable.
    pub fn pair(config: &TcpConfig, stats: WireStats) -> Result<(Self, Self), NetError> {
        let listener =
            TcpListener::bind(("127.0.0.1", 0)).map_err(|e| io_err("loopback bind failed", e))?;
        let addr = listener.local_addr().map_err(|e| io_err("local_addr failed", e))?;
        let accepting = std::thread::Builder::new()
            .name("splpg-tcp-accept".to_string())
            .spawn(move || listener.accept())
            .map_err(|e| io_err("accept thread spawn failed", e))?;
        let client = TcpStream::connect(addr).map_err(|e| io_err("loopback connect failed", e))?;
        let (server, _) = accepting
            .join()
            .map_err(|_| NetError::Io("accept thread panicked".to_string()))?
            .map_err(|e| io_err("loopback accept failed", e))?;
        Ok((
            TcpTransport::from_stream(client, config, stats.clone())?,
            TcpTransport::from_stream(server, config, stats)?,
        ))
    }
}

/// Pulls frames off `stream` until end-of-stream, peer death, or a codec
/// error. A clean closure (EOF at a frame boundary, reset) just drops
/// the sender, which the consuming side observes as [`NetError::Closed`];
/// anything else is forwarded as a typed error before exiting.
fn reader_loop(mut stream: TcpStream, tx: &SyncSender<Result<Vec<u8>, NetError>>, max: usize) {
    loop {
        match codec::read_frame(&mut stream, max) {
            Ok(Some(frame)) => {
                if tx.send(Ok(frame)).is_err() {
                    break;
                }
            }
            Ok(None) | Err(NetError::Closed) => break,
            Err(e) => {
                let _ = tx.send(Err(e));
                break;
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        let body = frame.len().saturating_sub(4);
        if body > self.max_frame {
            return Err(NetError::FrameTooLarge { len: body, max: self.max_frame });
        }
        let Some(stream) = &mut self.writer else { return Err(NetError::Closed) };
        match stream.write_all(&frame).and_then(|()| stream.flush()) {
            Ok(()) => {
                self.stats.record_send(frame.len() as u64);
                Ok(())
            }
            Err(e) => {
                // A failed write may have left a partial frame on the
                // wire; the stream is no longer frame-aligned, so retire
                // the write side permanently.
                self.writer = None;
                if is_peer_death(e.kind()) {
                    Err(NetError::Closed)
                } else {
                    Err(io_err("socket send failed", e))
                }
            }
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let Some(rx) = &self.rx else { return Err(NetError::Closed) };
        match rx.recv() {
            Ok(frame) => frame,
            Err(_) => Err(NetError::Closed),
        }
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        let Some(rx) = &self.rx else { return Err(NetError::Closed) };
        match rx.recv_timeout(timeout) {
            Ok(Ok(frame)) => Ok(Some(frame)),
            Ok(Err(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(NetError::Closed),
        }
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Duplex endpoints own the whole stream: close both directions
        // (the peer still receives everything already queued before its
        // reader sees EOF). Write-half endpoints share their read side
        // with a merged inbox, so only the write direction is closed.
        let dir = if self.reader.is_some() { Shutdown::Both } else { Shutdown::Write };
        let _ = self.control.shutdown(dir);
        self.writer = None;
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// Reads and validates the 8-byte hello off a just-accepted stream,
/// using a socket read deadline so a silent or garbage dialer cannot
/// wedge the acceptor. Returns the dialer's declared worker index and
/// leaves the stream in blocking mode.
pub(crate) fn read_hello(stream: &TcpStream, config: &TcpConfig) -> Result<u32, NetError> {
    stream
        .set_read_timeout(config.io_timeout())
        .map_err(|e| io_err("set_read_timeout failed", e))?;
    let mut buf = [0u8; 8];
    (&mut (&*stream))
        .read_exact(&mut buf)
        .map_err(|e| io_err("hello read failed", e))?;
    stream.set_read_timeout(None).map_err(|e| io_err("set_read_timeout failed", e))?;
    let magic = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if magic != HELLO_MAGIC {
        return Err(NetError::Codec(format!(
            "bad hello magic {magic:#010x} (expected {HELLO_MAGIC:#010x})"
        )));
    }
    Ok(u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, MsgId, Request};

    fn frame(epoch: u64) -> Vec<u8> {
        Message::Request(Request::Epoch {
            id: MsgId { worker: 0, epoch, round: 0, attempt: 0 },
            params: vec![1.5, -2.5, epoch as f32],
        })
        .encode()
    }

    #[test]
    fn loopback_pair_round_trips_frames_in_order() {
        let stats = WireStats::new();
        let (mut a, mut b) = TcpTransport::pair(&TcpConfig::default(), stats.clone()).unwrap();
        let mut sent_bytes = 0u64;
        for e in 0..16 {
            let f = frame(e);
            sent_bytes += f.len() as u64;
            a.send(f).unwrap();
        }
        for e in 0..16 {
            assert_eq!(b.recv().unwrap(), frame(e));
        }
        // The other direction over the same sockets.
        b.send(frame(99)).unwrap();
        assert_eq!(a.recv().unwrap(), frame(99));
        let snap = stats.snapshot();
        assert_eq!(snap.messages, 17);
        assert_eq!(snap.bytes, sent_bytes + frame(99).len() as u64);
    }

    #[test]
    fn queued_frames_survive_the_sender_dropping() {
        let stats = WireStats::new();
        let (mut a, mut b) = TcpTransport::pair(&TcpConfig::default(), stats).unwrap();
        a.send(frame(7)).unwrap();
        drop(a);
        assert_eq!(b.recv().unwrap(), frame(7), "half-close drains queued frames");
        assert_eq!(b.recv(), Err(NetError::Closed));
        assert_eq!(b.recv_timeout(Duration::from_millis(50)), Err(NetError::Closed));
    }

    #[test]
    fn oversized_send_is_rejected_without_touching_the_wire() {
        let stats = WireStats::new();
        let config = TcpConfig { max_frame_len: 64, ..TcpConfig::default() };
        let (mut a, mut b) = TcpTransport::pair(&config, stats.clone()).unwrap();
        let big = Message::Request(Request::Epoch {
            id: MsgId::default(),
            params: vec![0.25; 64],
        })
        .encode();
        assert!(big.len() - 4 > 64, "fixture frame must exceed the cap");
        assert!(matches!(a.send(big), Err(NetError::FrameTooLarge { .. })));
        assert_eq!(stats.snapshot().messages, 0);
        assert_eq!(b.recv_timeout(Duration::from_millis(30)).unwrap(), None);
        // The lane still works for frames under the cap.
        let small = Message::Request(Request::Stop { id: MsgId::default() }).encode();
        a.send(small.clone()).unwrap();
        assert_eq!(b.recv().unwrap(), small);
    }

    #[test]
    fn send_after_peer_drop_eventually_reports_closed() {
        let stats = WireStats::new();
        let (mut a, b) = TcpTransport::pair(&TcpConfig::default(), stats).unwrap();
        drop(b);
        // The first sends may land in kernel buffers; the broken pipe
        // must surface within a bounded number of attempts.
        let mut closed = false;
        for _ in 0..200 {
            match a.send(frame(0)) {
                Ok(()) => std::thread::sleep(Duration::from_millis(5)),
                Err(NetError::Closed) => {
                    closed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(closed, "peer death never surfaced on the send side");
    }

    #[test]
    fn hostile_dialer_cannot_oversize_the_receiver() {
        let stats = WireStats::new();
        let config = TcpConfig { max_frame_len: 1024, ..TcpConfig::default() };
        let (a, mut b) = TcpTransport::pair(&config, stats).unwrap();
        // Write a hostile length prefix directly onto the socket,
        // bypassing the send-side cap.
        let mut raw = a.control.try_clone().unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        raw.flush().unwrap();
        assert!(matches!(
            b.recv_timeout(Duration::from_secs(5)),
            Err(NetError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn connect_and_hello_handshake() {
        let stats = WireStats::new();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let config = TcpConfig { connect_backoff_ms: 5, ..TcpConfig::default() };
        // Delay the accept by holding the listener in a thread that
        // sleeps first; connect must keep dialing until it lands.
        let acceptor = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            let (stream, _) = listener.accept().unwrap();
            let worker = read_hello(&stream, &TcpConfig::default()).unwrap();
            (stream, worker)
        });
        let mut t = TcpTransport::connect(addr, 3, &config, stats.clone()).unwrap();
        let (stream, worker) = acceptor.join().unwrap();
        assert_eq!(worker, 3);
        let mut peer = TcpTransport::from_stream(stream, &config, stats).unwrap();
        t.send(frame(5)).unwrap();
        assert_eq!(peer.recv().unwrap(), frame(5));
        peer.send(frame(6)).unwrap();
        assert_eq!(t.recv().unwrap(), frame(6));
    }

    #[test]
    fn connect_to_dead_port_fails_with_bounded_retry() {
        // Bind-then-drop to find a port with nothing listening.
        let addr = {
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap()
        };
        let config = TcpConfig { connect_attempts: 3, connect_backoff_ms: 1, ..TcpConfig::default() };
        let err = TcpTransport::connect(addr, 0, &config, WireStats::new()).unwrap_err();
        assert!(matches!(err, NetError::Io(_)), "got {err}");
    }

    #[test]
    fn bad_hello_magic_is_rejected() {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let dialer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&[0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0]).unwrap();
            s.flush().unwrap();
            s
        });
        let (stream, _) = listener.accept().unwrap();
        let err = read_hello(&stream, &TcpConfig::default()).unwrap_err();
        assert!(matches!(err, NetError::Codec(_)), "got {err}");
        drop(dialer.join().unwrap());
    }
}
