use std::collections::VecDeque;
use std::time::Duration;

use crate::codec;
use crate::transport::{Transport, WireStats};
use crate::NetError;

/// Deterministic message-level fault model.
///
/// Each send draws exactly one fault decision, a pure function of
/// `(seed, lane, message kind, message identity)` — no wall clock, no
/// RNG state shared across threads — so a seeded faulty run replays
/// bit-identically in a fresh process. Retransmissions carry a bumped
/// `attempt` counter and therefore draw fresh decisions, which is what
/// lets bounded retries make progress through a lossy wire.
///
/// `crashes` lists `(worker, epoch)` pairs: the worker exits its loop
/// permanently at the start of that epoch and never answers again (the
/// cluster-runtime analogue of a process kill; the master detects it by
/// retry exhaustion and proceeds on quorum).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-message drop probability in `[0, 1)`.
    pub drop: f64,
    /// Per-message duplication probability in `[0, 1)`.
    pub duplicate: f64,
    /// Per-message delay probability in `[0, 1)`; a delayed frame is
    /// held back until the next send on the same lane (a deterministic
    /// one-slot reordering, not a timed sleep).
    pub delay: f64,
    /// Seed of the fault schedule.
    pub seed: u64,
    /// `(worker, epoch)` permanent crash points.
    pub crashes: Vec<(usize, usize)>,
}

impl FaultPlan {
    /// Validates the plan: probabilities must be finite, non-negative,
    /// below 1, and sum below 1 (a message suffers at most one fault).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in
            [("drop", self.drop), ("duplicate", self.duplicate), ("delay", self.delay)]
        {
            if !p.is_finite() {
                return Err(format!("{name} probability is not finite ({p})"));
            }
            if p < 0.0 {
                return Err(format!("{name} probability {p} is negative"));
            }
            if p >= 1.0 {
                return Err(format!(
                    "{name} probability {p} >= 1 would fault every message and no retry \
                     budget could make progress"
                ));
            }
        }
        let sum = self.drop + self.duplicate + self.delay;
        if sum >= 1.0 {
            return Err(format!(
                "fault probabilities sum to {sum} >= 1; each message draws one fault, so \
                 the sum must stay below 1"
            ));
        }
        Ok(())
    }

    /// The epoch at which `worker` crashes permanently, if any (the
    /// earliest of its scheduled crash points).
    pub fn crash_epoch(&self, worker: usize) -> Option<usize> {
        self.crashes.iter().filter(|(w, _)| *w == worker).map(|&(_, e)| e).min()
    }

    /// Whether any fault is configured at all.
    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.duplicate > 0.0 || self.delay > 0.0 || !self.crashes.is_empty()
    }

    fn decide(&self, lane: u64, kind: u8, id: crate::MsgId) -> FaultAction {
        // splitmix64-style avalanche over the full message identity.
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for x in [
            lane,
            kind as u64 + 1,
            id.worker as u64 + 1,
            id.epoch.wrapping_add(1),
            id.round.wrapping_add(1),
            id.attempt as u64 + 1,
        ] {
            h ^= x;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
            h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
            h ^= h >> 33;
        }
        // 53 uniform bits → [0, 1).
        let r = (h >> 11) as f64 / (1u64 << 53) as f64;
        if r < self.drop {
            FaultAction::Drop
        } else if r < self.drop + self.duplicate {
            FaultAction::Duplicate
        } else if r < self.drop + self.duplicate + self.delay {
            FaultAction::Delay
        } else {
            FaultAction::Deliver
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultAction {
    Deliver,
    Drop,
    Duplicate,
    Delay,
}

/// Per-message timeout, bounded exponential backoff, bounded retries —
/// the master's gather policy when silence is possible (faults enabled
/// or quorum below `p`).
///
/// Attempt `a` waits `timeout_ms * backoff^a` milliseconds (saturating,
/// capped at one minute) before retransmitting; after `max_retries`
/// retransmissions the missing workers are declared dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Base per-message timeout in milliseconds.
    pub timeout_ms: u64,
    /// Retransmissions after the original send.
    pub max_retries: u32,
    /// Multiplicative backoff per attempt (>= 1).
    pub backoff: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { timeout_ms: 500, max_retries: 4, backoff: 2 }
    }
}

impl RetryPolicy {
    /// Hard ceiling on a single wait window.
    const MAX_WINDOW_MS: u64 = 60_000;

    /// Validates the policy.
    ///
    /// # Errors
    ///
    /// A description of the first violation: a zero timeout combined
    /// with retries (retransmitting into a zero-length window can never
    /// observe a response), or a backoff factor of zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.timeout_ms == 0 && self.max_retries > 0 {
            return Err(
                "zero per-message timeout with retries enabled: every wait window has \
                 zero length, so retries would exhaust instantly regardless of worker \
                 health"
                    .to_string(),
            );
        }
        if self.backoff == 0 {
            return Err("backoff factor must be at least 1".to_string());
        }
        Ok(())
    }

    /// The wait window for retransmission attempt `attempt` (0-based).
    pub fn window(&self, attempt: u32) -> Duration {
        let factor = (self.backoff as u64).saturating_pow(attempt);
        Duration::from_millis(self.timeout_ms.saturating_mul(factor).min(Self::MAX_WINDOW_MS))
    }
}

/// Fault-injecting [`Transport`] decorator.
///
/// Wraps any lane and applies the [`FaultPlan`] to outgoing frames:
///
/// * **drop** — the frame is discarded;
/// * **duplicate** — the frame is delivered twice back-to-back;
/// * **delay** — the frame is held and released immediately before the
///   *next* frame sent on this lane (one-slot reordering). A delayed
///   frame with no successor is never delivered — indistinguishable
///   from a drop, which retries already handle.
///
/// Receives pass through untouched; faulting each direction of a duplex
/// link means wrapping each endpoint's sender side.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    lane: u64,
    held: VecDeque<Vec<u8>>,
    stats: WireStats,
}

impl<T: Transport> FaultyTransport<T> {
    /// Decorates `inner`. `lane` must be unique per directed lane of the
    /// cluster so fault schedules differ across lanes.
    pub fn new(inner: T, plan: FaultPlan, lane: u64, stats: WireStats) -> Self {
        FaultyTransport { inner, plan, lane, held: VecDeque::new(), stats }
    }

    fn flush_held(&mut self) -> Result<(), NetError> {
        while let Some(frame) = self.held.pop_front() {
            self.inner.send(frame)?;
        }
        Ok(())
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn send(&mut self, frame: Vec<u8>) -> Result<(), NetError> {
        let (kind, id) = codec::peek_identity(&frame)?;
        // Any send first releases frames delayed earlier on this lane.
        self.flush_held()?;
        match self.plan.decide(self.lane, kind, id) {
            FaultAction::Deliver => self.inner.send(frame),
            FaultAction::Drop => {
                self.stats.record_drop();
                Ok(())
            }
            FaultAction::Duplicate => {
                self.stats.record_duplicate();
                self.inner.send(frame.clone())?;
                self.inner.send(frame)
            }
            FaultAction::Delay => {
                self.stats.record_delay();
                self.held.push_back(frame);
                Ok(())
            }
        }
    }

    fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        self.inner.recv()
    }

    fn recv_timeout(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, NetError> {
        self.inner.recv_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, MsgId, Request};
    use crate::transport::ChannelTransport;

    fn frame(worker: u32, epoch: u64, attempt: u32) -> Vec<u8> {
        Message::Request(Request::Stop {
            id: MsgId { worker, epoch, round: 0, attempt },
        })
        .encode()
    }

    fn plan(drop: f64, duplicate: f64, delay: f64) -> FaultPlan {
        FaultPlan { drop, duplicate, delay, seed: 42, crashes: vec![] }
    }

    #[test]
    fn decisions_are_identity_pure() {
        let p = plan(0.3, 0.2, 0.2);
        for e in 0..50u64 {
            let id = MsgId { worker: 1, epoch: e, round: 3, attempt: 0 };
            assert_eq!(p.decide(7, 1, id), p.decide(7, 1, id));
        }
    }

    #[test]
    fn fault_rates_roughly_match_probabilities() {
        let p = plan(0.25, 0.1, 0.1);
        let mut counts = [0usize; 4];
        for e in 0..20_000u64 {
            let id = MsgId { worker: 0, epoch: e, round: 0, attempt: 0 };
            let a = p.decide(0, 1, id);
            counts[match a {
                FaultAction::Deliver => 0,
                FaultAction::Drop => 1,
                FaultAction::Duplicate => 2,
                FaultAction::Delay => 3,
            }] += 1;
        }
        assert!((4_000..6_000).contains(&counts[1]), "drops {}", counts[1]);
        assert!((1_400..2_600).contains(&counts[2]), "dups {}", counts[2]);
        assert!((1_400..2_600).contains(&counts[3]), "delays {}", counts[3]);
    }

    #[test]
    fn retries_redraw_the_decision() {
        // With drop = 0.5, some message must differ across attempts.
        let p = plan(0.5, 0.0, 0.0);
        let differs = (0..100u64).any(|e| {
            let a0 = p.decide(1, 1, MsgId { worker: 0, epoch: e, round: 0, attempt: 0 });
            let a1 = p.decide(1, 1, MsgId { worker: 0, epoch: e, round: 0, attempt: 1 });
            a0 != a1
        });
        assert!(differs);
    }

    #[test]
    fn dropped_frames_never_arrive_duplicates_arrive_twice() {
        let stats = WireStats::new();
        let (raw, mut rx) = ChannelTransport::pair(64, stats.clone());
        // Probe the plan for one guaranteed drop and one guaranteed dup.
        let p = plan(0.4, 0.4, 0.0);
        let pick = |want: FaultAction| {
            (0..10_000u64)
                .find(|&e| {
                    p.decide(5, 3, MsgId { worker: 0, epoch: e, round: 0, attempt: 0 }) == want
                })
                .expect("plan produces the action somewhere")
        };
        let (e_drop, e_dup) = (pick(FaultAction::Drop), pick(FaultAction::Duplicate));
        let mut faulty = FaultyTransport::new(raw, p, 5, stats.clone());
        faulty.send(frame(0, e_drop, 0)).unwrap();
        faulty.send(frame(0, e_dup, 0)).unwrap();
        let first = rx.recv().unwrap();
        let second = rx.recv().unwrap();
        assert_eq!(first, second, "duplicate delivers the same frame twice");
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        let snap = stats.snapshot();
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.duplicated, 1);
    }

    #[test]
    fn delayed_frame_released_by_next_send() {
        let stats = WireStats::new();
        let (raw, mut rx) = ChannelTransport::pair(64, stats.clone());
        let p = plan(0.0, 0.0, 0.4);
        let e_delay = (0..10_000u64)
            .find(|&e| {
                p.decide(9, 3, MsgId { worker: 0, epoch: e, round: 0, attempt: 0 })
                    == FaultAction::Delay
            })
            .expect("plan delays something");
        let e_ok = (0..10_000u64)
            .find(|&e| {
                p.decide(9, 3, MsgId { worker: 0, epoch: e, round: 0, attempt: 0 })
                    == FaultAction::Deliver
            })
            .expect("plan delivers something");
        let mut faulty = FaultyTransport::new(raw, p, 9, stats.clone());
        let delayed = frame(0, e_delay, 0);
        let successor = frame(0, e_ok, 0);
        faulty.send(delayed.clone()).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)).unwrap(), None);
        faulty.send(successor.clone()).unwrap();
        // Held frame first, then the successor: one-slot reordering.
        assert_eq!(rx.recv().unwrap(), delayed);
        assert_eq!(rx.recv().unwrap(), successor);
        assert_eq!(stats.snapshot().delayed, 1);
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(plan(f64::NAN, 0.0, 0.0).validate().is_err());
        assert!(plan(-0.1, 0.0, 0.0).validate().is_err());
        assert!(plan(1.0, 0.0, 0.0).validate().is_err());
        assert!(plan(0.5, 0.4, 0.2).validate().is_err(), "sum >= 1");
        assert!(plan(0.1, 0.05, 0.05).validate().is_ok());
        assert!(FaultPlan::default().validate().is_ok());
    }

    #[test]
    fn retry_policy_validation_and_windows() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(RetryPolicy { timeout_ms: 0, max_retries: 1, backoff: 2 }.validate().is_err());
        assert!(RetryPolicy { timeout_ms: 0, max_retries: 0, backoff: 1 }.validate().is_ok());
        assert!(RetryPolicy { timeout_ms: 100, max_retries: 2, backoff: 0 }.validate().is_err());
        let p = RetryPolicy { timeout_ms: 100, max_retries: 3, backoff: 2 };
        assert_eq!(p.window(0), Duration::from_millis(100));
        assert_eq!(p.window(2), Duration::from_millis(400));
        // Saturating, capped.
        assert_eq!(p.window(40), Duration::from_millis(60_000));
    }

    #[test]
    fn crash_epoch_picks_earliest() {
        let p = FaultPlan { crashes: vec![(1, 5), (0, 2), (1, 3)], ..FaultPlan::default() };
        assert_eq!(p.crash_epoch(1), Some(3));
        assert_eq!(p.crash_epoch(0), Some(2));
        assert_eq!(p.crash_epoch(2), None);
        assert!(p.is_active());
        assert!(!FaultPlan::default().is_active());
    }
}
