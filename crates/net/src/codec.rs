//! The in-tree wire format.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [len: u32][kind: u8][worker: u32][epoch: u64][round: u64][attempt: u32][payload...]
//! ```
//!
//! `len` counts everything after the length field. All integers and
//! floats are little-endian; floats are shipped as raw IEEE-754 bits, so
//! an encode/decode round trip is bit-exact — the property the trainer's
//! determinism guarantee rests on. The 25-byte identity header sits at a
//! fixed offset for *every* kind, which lets the fault-injection layer
//! key its drop/duplicate/delay decisions off message identity without
//! decoding payloads.

use std::io::Read;

use crate::message::{FetchLedger, Message, MsgId, Request, Response};
use crate::NetError;

/// Bytes of the identity header (kind + worker + epoch + round + attempt).
pub const HEADER_LEN: usize = 1 + 4 + 8 + 8 + 4;

/// Default ceiling on the body length a frame may declare (bytes after
/// the 4-byte length prefix).
///
/// The largest legitimate frames are flattened parameter/gradient
/// vectors; 64 MiB holds a 16M-parameter model, far beyond anything the
/// experiment matrix ships. The cap is what keeps a hostile (or
/// corrupted) length prefix from asking the receive path to allocate an
/// unbounded buffer — every decoder and socket reader enforces it before
/// reserving memory. Transports accept a smaller cap for tests.
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

const KIND_REQ_EPOCH: u8 = 1;
const KIND_REQ_ROUND: u8 = 2;
const KIND_REQ_STOP: u8 = 3;
const KIND_RESP_EPOCH: u8 = 4;
const KIND_RESP_ROUND: u8 = 5;
const KIND_RESP_UNAVAILABLE: u8 = 6;
const KIND_RESP_FAILED: u8 = 7;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new(kind: u8, id: MsgId) -> Self {
        // Reserve the length prefix; patched in `finish`.
        let mut buf = Vec::with_capacity(4 + HEADER_LEN);
        buf.extend_from_slice(&[0u8; 4]);
        buf.push(kind);
        buf.extend_from_slice(&id.worker.to_le_bytes());
        buf.extend_from_slice(&id.epoch.to_le_bytes());
        buf.extend_from_slice(&id.round.to_le_bytes());
        buf.extend_from_slice(&id.attempt.to_le_bytes());
        Writer { buf }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn f32s(&mut self, vs: &[f32]) {
        self.u64(vs.len() as u64);
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.f32(v);
        }
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn ledger(&mut self, l: &FetchLedger) {
        self.u64(l.structure_edges);
        self.u64(l.structure_nodes);
        self.u64(l.feature_elems);
    }

    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.pos + n > self.buf.len() {
            return Err(NetError::Codec(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("exact slice")))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("exact slice")))
    }

    fn f32(&mut self) -> Result<f32, NetError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, NetError> {
        let n = self.u64()? as usize;
        // A frame holds at least 4 bytes per element; reject inflated
        // length claims before allocating.
        if n > (self.buf.len() - self.pos) / 4 {
            return Err(NetError::Codec(format!("f32 vector claims {n} elements")));
        }
        (0..n).map(|_| self.f32()).collect()
    }

    fn str(&mut self) -> Result<String, NetError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| NetError::Codec(format!("non-utf8 string payload: {e}")))
    }

    fn ledger(&mut self) -> Result<FetchLedger, NetError> {
        Ok(FetchLedger {
            structure_edges: self.u64()?,
            structure_nodes: self.u64()?,
            feature_elems: self.u64()?,
        })
    }

    fn done(&self) -> Result<(), NetError> {
        if self.pos != self.buf.len() {
            return Err(NetError::Codec(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encodes a message into a length-prefixed frame.
pub fn encode(msg: &Message) -> Vec<u8> {
    match msg {
        Message::Request(Request::Epoch { id, params }) => {
            let mut w = Writer::new(KIND_REQ_EPOCH, *id);
            w.f32s(params);
            w.finish()
        }
        Message::Request(Request::Round { id, params }) => {
            let mut w = Writer::new(KIND_REQ_ROUND, *id);
            w.f32s(params);
            w.finish()
        }
        Message::Request(Request::Stop { id }) => Writer::new(KIND_REQ_STOP, *id).finish(),
        Message::Response(Response::Epoch { id, params, loss_sum, batches, ledger }) => {
            let mut w = Writer::new(KIND_RESP_EPOCH, *id);
            w.f32s(params);
            w.f64(*loss_sum);
            w.u64(*batches);
            w.ledger(ledger);
            w.finish()
        }
        Message::Response(Response::Round { id, active, loss, grads, ledger }) => {
            let mut w = Writer::new(KIND_RESP_ROUND, *id);
            w.u8(u8::from(*active));
            w.f32(*loss);
            w.f32s(grads);
            w.ledger(ledger);
            w.finish()
        }
        Message::Response(Response::Unavailable { id }) => {
            Writer::new(KIND_RESP_UNAVAILABLE, *id).finish()
        }
        Message::Response(Response::Failed { id, error }) => {
            let mut w = Writer::new(KIND_RESP_FAILED, *id);
            w.str(error);
            w.finish()
        }
    }
}

/// Decodes a length-prefixed frame.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on truncation, length mismatch, unknown
/// kind tags, or trailing bytes, and [`NetError::FrameTooLarge`] when the
/// length prefix exceeds [`DEFAULT_MAX_FRAME_LEN`].
pub fn decode(frame: &[u8]) -> Result<Message, NetError> {
    let mut r = Reader { buf: frame, pos: 0 };
    let len = r.u32()? as usize;
    if len > DEFAULT_MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge { len, max: DEFAULT_MAX_FRAME_LEN });
    }
    if len != frame.len() - 4 {
        return Err(NetError::Codec(format!(
            "length prefix {len} disagrees with frame body {}",
            frame.len() - 4
        )));
    }
    let kind = r.u8()?;
    let id = MsgId {
        worker: r.u32()?,
        epoch: r.u64()?,
        round: r.u64()?,
        attempt: r.u32()?,
    };
    let msg = match kind {
        KIND_REQ_EPOCH => Message::Request(Request::Epoch { id, params: r.f32s()? }),
        KIND_REQ_ROUND => Message::Request(Request::Round { id, params: r.f32s()? }),
        KIND_REQ_STOP => Message::Request(Request::Stop { id }),
        KIND_RESP_EPOCH => Message::Response(Response::Epoch {
            id,
            params: r.f32s()?,
            loss_sum: r.f64()?,
            batches: r.u64()?,
            ledger: r.ledger()?,
        }),
        KIND_RESP_ROUND => {
            let active = r.u8()? != 0;
            let loss = r.f32()?;
            let grads = r.f32s()?;
            let ledger = r.ledger()?;
            Message::Response(Response::Round { id, active, loss, grads, ledger })
        }
        KIND_RESP_UNAVAILABLE => Message::Response(Response::Unavailable { id }),
        KIND_RESP_FAILED => Message::Response(Response::Failed { id, error: r.str()? }),
        other => return Err(NetError::Codec(format!("unknown message kind {other}"))),
    };
    r.done()?;
    Ok(msg)
}

/// Reads exactly `buf.len()` bytes, retrying on [`std::io::ErrorKind::Interrupted`].
///
/// Returns `Ok(false)` when the stream ends *before the first byte*
/// (clean end-of-stream at a frame boundary) and `already` is false.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], already: bool) -> Result<bool, NetError> {
    let mut pos = 0usize;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => {
                if pos == 0 && !already {
                    return Ok(false);
                }
                return Err(NetError::Codec(format!(
                    "stream ended mid-frame: got {pos} of {} bytes",
                    buf.len()
                )));
            }
            Ok(n) => pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                // A reset is the stream-level spelling of "peer died";
                // surface it as the same typed closure an EOF would.
                return Err(NetError::Closed);
            }
            Err(e) => return Err(NetError::Io(format!("frame read failed: {e}"))),
        }
    }
    Ok(true)
}

/// Reads one length-prefixed frame from a byte stream, enforcing
/// `max_frame_len` *before* allocating the body buffer.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer half-closed between frames) and the full frame — length prefix
/// included, ready for [`decode`] — otherwise.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] when the length prefix exceeds
/// `max_frame_len` (nothing is allocated), [`NetError::Codec`] when the
/// stream ends mid-frame, [`NetError::Io`] on a read failure.
pub fn read_frame<R: Read>(
    r: &mut R,
    max_frame_len: usize,
) -> Result<Option<Vec<u8>>, NetError> {
    let mut prefix = [0u8; 4];
    if !read_full(r, &mut prefix, false)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame_len {
        return Err(NetError::FrameTooLarge { len, max: max_frame_len });
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    read_full(r, &mut frame[4..], true)?;
    Ok(Some(frame))
}

/// Reads `(kind, identity)` from a frame without decoding the payload —
/// the fault layer's hook.
///
/// # Errors
///
/// Returns [`NetError::Codec`] when the frame is shorter than the fixed
/// header.
pub fn peek_identity(frame: &[u8]) -> Result<(u8, MsgId), NetError> {
    let mut r = Reader { buf: frame, pos: 0 };
    let _len = r.u32()?;
    let kind = r.u8()?;
    let id = MsgId {
        worker: r.u32()?,
        epoch: r.u64()?,
        round: r.u64()?,
        attempt: r.u32()?,
    };
    Ok((kind, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_id() -> MsgId {
        MsgId { worker: 3, epoch: 17, round: 2, attempt: 1 }
    }

    fn all_messages() -> Vec<Message> {
        let id = sample_id();
        let ledger =
            FetchLedger { structure_edges: 10, structure_nodes: 4, feature_elems: 96 };
        vec![
            Message::Request(Request::Epoch { id, params: vec![1.0, -2.5, f32::MIN_POSITIVE] }),
            Message::Request(Request::Round { id, params: vec![] }),
            Message::Request(Request::Stop { id }),
            Message::Response(Response::Epoch {
                id,
                params: vec![0.25; 7],
                loss_sum: 1.75e-3,
                batches: 9,
                ledger,
            }),
            Message::Response(Response::Round {
                id,
                active: true,
                loss: 0.693,
                grads: vec![-1.0, 0.0, 1e-30],
                ledger,
            }),
            Message::Response(Response::Unavailable { id }),
            Message::Response(Response::Failed { id, error: "oops — µ".to_string() }),
        ]
    }

    #[test]
    fn round_trip_every_kind() {
        for msg in all_messages() {
            let frame = encode(&msg);
            assert_eq!(decode(&frame).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let weird = vec![f32::NAN, -0.0, f32::INFINITY, 1e-45, 3.402_823_5e38];
        let msg = Message::Request(Request::Epoch { id: sample_id(), params: weird.clone() });
        let Message::Request(Request::Epoch { params, .. }) =
            decode(&encode(&msg)).unwrap()
        else {
            panic!("wrong kind")
        };
        for (a, b) in weird.iter().zip(&params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn peek_matches_full_decode() {
        for msg in all_messages() {
            let frame = encode(&msg);
            let (_, id) = peek_identity(&frame).unwrap();
            assert_eq!(id, msg.id());
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        for cut in 0..frame.len() {
            assert!(
                matches!(decode(&frame[..cut]), Err(NetError::Codec(_))),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn bad_kind_and_trailing_bytes_rejected() {
        let mut frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        frame[4] = 200;
        assert!(matches!(decode(&frame), Err(NetError::Codec(_))));

        let mut padded = encode(&Message::Request(Request::Stop { id: sample_id() }));
        padded.push(0);
        // Length prefix now disagrees.
        assert!(matches!(decode(&padded), Err(NetError::Codec(_))));
    }

    #[test]
    fn read_frame_round_trips_a_stream_of_frames() {
        let msgs = all_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut cur = std::io::Cursor::new(stream);
        for m in &msgs {
            let frame = read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
            assert_eq!(decode(&frame).unwrap(), *m);
        }
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap(), None, "clean EOF");
    }

    #[test]
    fn read_frame_rejects_mid_frame_eof() {
        let frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        for cut in 1..frame.len() {
            let mut cur = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN), Err(NetError::Codec(_))),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn read_frame_rejects_hostile_length_prefix_before_allocating() {
        // A 4 GiB claim backed by 4 bytes of stream: the cap must reject
        // it from the prefix alone, never reserving the claimed buffer.
        let mut hostile = (u32::MAX - 1).to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0; 8]);
        let mut cur = std::io::Cursor::new(hostile);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN),
            Err(NetError::FrameTooLarge { .. })
        ));
        // And the same prefix against a tiny custom cap.
        let small = encode(&Message::Request(Request::Epoch {
            id: sample_id(),
            params: vec![0.5; 64],
        }));
        let mut cur = std::io::Cursor::new(small);
        assert!(matches!(read_frame(&mut cur, 16), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn decode_rejects_hostile_length_prefix() {
        let mut frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&frame), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn inflated_vector_length_rejected_before_allocation() {
        let mut frame = encode(&Message::Request(Request::Epoch {
            id: sample_id(),
            params: vec![1.0],
        }));
        // Overwrite the vector length (first payload field) with u64::MAX.
        let off = 4 + HEADER_LEN;
        frame[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode(&frame), Err(NetError::Codec(_))));
    }
}
