//! The in-tree wire format.
//!
//! Every message is one *frame*:
//!
//! ```text
//! [len: u32][kind: u8][codec: u8][worker: u32][epoch: u64][round: u64][attempt: u32][payload...]
//! ```
//!
//! `len` counts everything after the length field. All fixed-width
//! integers and floats are little-endian; floats are shipped as raw
//! IEEE-754 bits, so an encode/decode round trip under a lossless codec
//! is bit-exact — the property the trainer's determinism guarantee rests
//! on. The 26-byte identity header sits at a fixed offset for *every*
//! kind and codec, which lets the fault-injection layer key its
//! drop/duplicate/delay decisions off message identity without decoding
//! payloads.
//!
//! The `codec` byte (see [`crate::compress::CodecConfig`]) makes every
//! frame self-describing: the sender packs the payload under its
//! negotiated config, and any receiver decodes from the byte alone —
//! integer side-data (vector lengths, ledger counts) turn into varints
//! under a structure codec, and `f32` vectors ship as binary16 or
//! per-block int8 codes under a feature codec. Frames from a peer
//! speaking a different format version are rejected with a typed
//! [`NetError::Codec`].

use std::io::Read;

use crate::compress::{
    dequantize_value, f16_to_f32, f32_to_f16, quantize_row, read_varint, write_varint,
    CodecConfig, FeatCodec, RowQuant, StructCodec, INT8_BLOCK,
};
use crate::message::{FetchLedger, Message, MsgId, Request, Response};
use crate::NetError;

/// Bytes of the identity header (kind + codec + worker + epoch + round +
/// attempt).
pub const HEADER_LEN: usize = 1 + 1 + 4 + 8 + 8 + 4;

/// Default ceiling on the body length a frame may declare (bytes after
/// the 4-byte length prefix) — and on the *decoded* size a compressed
/// payload may expand to.
///
/// The largest legitimate frames are flattened parameter/gradient
/// vectors; 64 MiB holds a 16M-parameter model, far beyond anything the
/// experiment matrix ships. The cap is what keeps a hostile (or
/// corrupted) length prefix from asking the receive path to allocate an
/// unbounded buffer — every decoder and socket reader enforces it before
/// reserving memory, and vector decoders re-apply it to the decoded
/// element count, so a small compressed frame cannot claim a huge
/// decompressed payload either. Transports accept a smaller cap for
/// tests.
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

pub(crate) const KIND_REQ_EPOCH: u8 = 1;
pub(crate) const KIND_REQ_ROUND: u8 = 2;
pub(crate) const KIND_REQ_STOP: u8 = 3;
pub(crate) const KIND_RESP_EPOCH: u8 = 4;
pub(crate) const KIND_RESP_ROUND: u8 = 5;
pub(crate) const KIND_RESP_UNAVAILABLE: u8 = 6;
pub(crate) const KIND_RESP_FAILED: u8 = 7;

/// Number of distinct wire-kind slots (index 0 is unused; kinds are
/// 1–7) — the size of per-kind accounting tables.
pub const NUM_KINDS: usize = 8;

/// Human-readable name of a message kind byte, for histograms and logs.
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_REQ_EPOCH => "req-epoch",
        KIND_REQ_ROUND => "req-round",
        KIND_REQ_STOP => "req-stop",
        KIND_RESP_EPOCH => "resp-epoch",
        KIND_RESP_ROUND => "resp-round",
        KIND_RESP_UNAVAILABLE => "resp-unavailable",
        KIND_RESP_FAILED => "resp-failed",
        _ => "unknown",
    }
}

struct Writer {
    buf: Vec<u8>,
    cfg: CodecConfig,
}

impl Writer {
    fn new(kind: u8, cfg: CodecConfig, id: MsgId) -> Self {
        // Reserve the length prefix; patched in `finish`.
        let mut buf = Vec::with_capacity(4 + HEADER_LEN);
        buf.extend_from_slice(&[0u8; 4]);
        buf.push(kind);
        buf.push(cfg.to_byte());
        buf.extend_from_slice(&id.worker.to_le_bytes());
        buf.extend_from_slice(&id.epoch.to_le_bytes());
        buf.extend_from_slice(&id.round.to_le_bytes());
        buf.extend_from_slice(&id.attempt.to_le_bytes());
        Writer { buf, cfg }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// An integer count / side-data field: fixed u64 under the raw
    /// structure codec, a varint under either compressed one.
    fn count(&mut self, v: u64) {
        match self.cfg.structure {
            StructCodec::None => self.u64(v),
            StructCodec::Varint | StructCodec::Rle => write_varint(&mut self.buf, v),
        }
    }

    fn f32s(&mut self, vs: &[f32]) {
        self.count(vs.len() as u64);
        match self.cfg.features {
            FeatCodec::F32 => {
                self.buf.reserve(vs.len() * 4);
                for &v in vs {
                    self.f32(v);
                }
            }
            FeatCodec::F16 => {
                self.buf.reserve(vs.len() * 2);
                for &v in vs {
                    self.buf.extend_from_slice(&f32_to_f16(v).to_le_bytes());
                }
            }
            FeatCodec::Int8 => {
                // Flat vectors have no row structure; cut into
                // INT8_BLOCK-wide blocks, each with its own header.
                for block in vs.chunks(INT8_BLOCK) {
                    let mut codes = Vec::with_capacity(block.len());
                    let q = quantize_row(block, &mut codes);
                    self.f32(q.lo);
                    self.f32(q.scale);
                    self.buf.extend_from_slice(&codes);
                }
            }
        }
    }

    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn ledger(&mut self, l: &FetchLedger) {
        self.count(l.structure_edges);
        self.count(l.structure_nodes);
        self.count(l.feature_elems);
        self.count(l.structure_wire_bytes);
        self.count(l.feature_wire_bytes);
        self.count(l.feature_bus_elems);
    }

    fn finish(mut self) -> Vec<u8> {
        let len = (self.buf.len() - 4) as u32;
        self.buf[..4].copy_from_slice(&len.to_le_bytes());
        self.buf
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    cfg: CodecConfig,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0, cfg: CodecConfig::default() }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.pos + n > self.buf.len() {
            return Err(NetError::Codec(format!(
                "truncated frame: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("exact slice")))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("exact slice")))
    }

    fn f32(&mut self) -> Result<f32, NetError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Counterpart of [`Writer::count`].
    fn count(&mut self) -> Result<u64, NetError> {
        match self.cfg.structure {
            StructCodec::None => self.u64(),
            StructCodec::Varint | StructCodec::Rle => read_varint(self.buf, &mut self.pos),
        }
    }

    fn f32s(&mut self) -> Result<Vec<f32>, NetError> {
        let n = self.count()?;
        let remaining = self.buf.len() - self.pos;
        // Reject inflated element counts before allocating: a frame
        // holds at least `min_bytes` wire bytes per element…
        let min_bytes = match self.cfg.features {
            FeatCodec::F32 => 4,
            FeatCodec::F16 => 2,
            FeatCodec::Int8 => 1,
        };
        if n > (remaining / min_bytes) as u64 {
            return Err(NetError::Codec(format!("f32 vector claims {n} elements")));
        }
        // …and the cap applies to the *decoded* size, so a compressed
        // in-cap frame cannot expand into an over-cap allocation.
        let decoded = n.saturating_mul(4);
        if decoded > DEFAULT_MAX_FRAME_LEN as u64 {
            return Err(NetError::FrameTooLarge {
                len: decoded as usize,
                max: DEFAULT_MAX_FRAME_LEN,
            });
        }
        let n = n as usize;
        match self.cfg.features {
            FeatCodec::F32 => (0..n).map(|_| self.f32()).collect(),
            FeatCodec::F16 => {
                let mut out = Vec::with_capacity(n);
                for _ in 0..n {
                    let bytes = self.take(2)?;
                    out.push(f16_to_f32(u16::from_le_bytes(
                        bytes.try_into().expect("exact slice"),
                    )));
                }
                Ok(out)
            }
            FeatCodec::Int8 => {
                let mut out = Vec::with_capacity(n);
                let mut left = n;
                while left > 0 {
                    let block = left.min(INT8_BLOCK);
                    let q = RowQuant { lo: self.f32()?, scale: self.f32()? };
                    for &code in self.take(block)? {
                        out.push(dequantize_value(code, &q));
                    }
                    left -= block;
                }
                Ok(out)
            }
        }
    }

    fn str(&mut self) -> Result<String, NetError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| NetError::Codec(format!("non-utf8 string payload: {e}")))
    }

    fn ledger(&mut self) -> Result<FetchLedger, NetError> {
        Ok(FetchLedger {
            structure_edges: self.count()?,
            structure_nodes: self.count()?,
            feature_elems: self.count()?,
            structure_wire_bytes: self.count()?,
            feature_wire_bytes: self.count()?,
            feature_bus_elems: self.count()?,
        })
    }

    fn done(&self) -> Result<(), NetError> {
        if self.pos != self.buf.len() {
            return Err(NetError::Codec(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Encodes a message into a length-prefixed frame under the default
/// (uncompressed, bit-exact) codec pair.
pub fn encode(msg: &Message) -> Vec<u8> {
    encode_with(msg, CodecConfig::default())
}

/// Encodes a message into a length-prefixed frame under `cfg`. The frame
/// records `cfg` in its codec byte, so [`decode`] needs no out-of-band
/// configuration.
pub fn encode_with(msg: &Message, cfg: CodecConfig) -> Vec<u8> {
    match msg {
        Message::Request(Request::Epoch { id, params }) => {
            let mut w = Writer::new(KIND_REQ_EPOCH, cfg, *id);
            w.f32s(params);
            w.finish()
        }
        Message::Request(Request::Round { id, params }) => {
            let mut w = Writer::new(KIND_REQ_ROUND, cfg, *id);
            w.f32s(params);
            w.finish()
        }
        Message::Request(Request::Stop { id }) => Writer::new(KIND_REQ_STOP, cfg, *id).finish(),
        Message::Response(Response::Epoch { id, params, loss_sum, batches, ledger }) => {
            let mut w = Writer::new(KIND_RESP_EPOCH, cfg, *id);
            w.f32s(params);
            w.f64(*loss_sum);
            w.count(*batches);
            w.ledger(ledger);
            w.finish()
        }
        Message::Response(Response::Round { id, active, loss, grads, ledger }) => {
            let mut w = Writer::new(KIND_RESP_ROUND, cfg, *id);
            w.u8(u8::from(*active));
            w.f32(*loss);
            w.f32s(grads);
            w.ledger(ledger);
            w.finish()
        }
        Message::Response(Response::Unavailable { id }) => {
            Writer::new(KIND_RESP_UNAVAILABLE, cfg, *id).finish()
        }
        Message::Response(Response::Failed { id, error }) => {
            let mut w = Writer::new(KIND_RESP_FAILED, cfg, *id);
            w.str(error);
            w.finish()
        }
    }
}

/// Frame length [`encode`] would produce under the default codec — the
/// "raw bytes" side of every compression-ratio meter, computed
/// arithmetically so hot paths never re-encode just to measure.
pub fn raw_frame_len(msg: &Message) -> usize {
    match msg {
        Message::Request(r) => raw_request_frame_len(r),
        Message::Response(r) => raw_response_frame_len(r),
    }
}

/// Raw ledger payload bytes: six fixed-width u64 counters.
const LEDGER_RAW_LEN: usize = 6 * 8;

/// [`raw_frame_len`] for a request without wrapping it in a [`Message`].
pub fn raw_request_frame_len(req: &Request) -> usize {
    let payload = match req {
        Request::Epoch { params, .. } | Request::Round { params, .. } => 8 + 4 * params.len(),
        Request::Stop { .. } => 0,
    };
    4 + HEADER_LEN + payload
}

/// [`raw_frame_len`] for a response without wrapping it in a [`Message`].
pub fn raw_response_frame_len(resp: &Response) -> usize {
    let payload = match resp {
        Response::Epoch { params, .. } => (8 + 4 * params.len()) + 8 + 8 + LEDGER_RAW_LEN,
        Response::Round { grads, .. } => 1 + 4 + (8 + 4 * grads.len()) + LEDGER_RAW_LEN,
        Response::Unavailable { .. } => 0,
        Response::Failed { error, .. } => 4 + error.len(),
    };
    4 + HEADER_LEN + payload
}

/// Decodes a length-prefixed frame, honouring whatever codec pair its
/// codec byte declares.
///
/// # Errors
///
/// Returns [`NetError::Codec`] on truncation, length mismatch, unknown
/// kind tags, unknown or version-mismatched codec bytes, or trailing
/// bytes, and [`NetError::FrameTooLarge`] when the length prefix — or
/// the *decoded* size a compressed payload would expand to — exceeds
/// [`DEFAULT_MAX_FRAME_LEN`].
pub fn decode(frame: &[u8]) -> Result<Message, NetError> {
    let mut r = Reader::new(frame);
    let len = r.u32()? as usize;
    if len > DEFAULT_MAX_FRAME_LEN {
        return Err(NetError::FrameTooLarge { len, max: DEFAULT_MAX_FRAME_LEN });
    }
    if len != frame.len() - 4 {
        return Err(NetError::Codec(format!(
            "length prefix {len} disagrees with frame body {}",
            frame.len() - 4
        )));
    }
    let kind = r.u8()?;
    r.cfg = CodecConfig::from_byte(r.u8()?)?;
    let id = MsgId {
        worker: r.u32()?,
        epoch: r.u64()?,
        round: r.u64()?,
        attempt: r.u32()?,
    };
    let msg = match kind {
        KIND_REQ_EPOCH => Message::Request(Request::Epoch { id, params: r.f32s()? }),
        KIND_REQ_ROUND => Message::Request(Request::Round { id, params: r.f32s()? }),
        KIND_REQ_STOP => Message::Request(Request::Stop { id }),
        KIND_RESP_EPOCH => Message::Response(Response::Epoch {
            id,
            params: r.f32s()?,
            loss_sum: r.f64()?,
            batches: r.count()?,
            ledger: r.ledger()?,
        }),
        KIND_RESP_ROUND => {
            let active = r.u8()? != 0;
            let loss = r.f32()?;
            let grads = r.f32s()?;
            let ledger = r.ledger()?;
            Message::Response(Response::Round { id, active, loss, grads, ledger })
        }
        KIND_RESP_UNAVAILABLE => Message::Response(Response::Unavailable { id }),
        KIND_RESP_FAILED => Message::Response(Response::Failed { id, error: r.str()? }),
        other => return Err(NetError::Codec(format!("unknown message kind {other}"))),
    };
    r.done()?;
    Ok(msg)
}

/// Reads exactly `buf.len()` bytes, retrying on [`std::io::ErrorKind::Interrupted`].
///
/// Returns `Ok(false)` when the stream ends *before the first byte*
/// (clean end-of-stream at a frame boundary) and `already` is false.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], already: bool) -> Result<bool, NetError> {
    let mut pos = 0usize;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => {
                if pos == 0 && !already {
                    return Ok(false);
                }
                return Err(NetError::Codec(format!(
                    "stream ended mid-frame: got {pos} of {} bytes",
                    buf.len()
                )));
            }
            Ok(n) => pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::ConnectionReset
                        | std::io::ErrorKind::ConnectionAborted
                ) =>
            {
                // A reset is the stream-level spelling of "peer died";
                // surface it as the same typed closure an EOF would.
                return Err(NetError::Closed);
            }
            Err(e) => return Err(NetError::Io(format!("frame read failed: {e}"))),
        }
    }
    Ok(true)
}

/// Reads one length-prefixed frame from a byte stream, enforcing
/// `max_frame_len` *before* allocating the body buffer.
///
/// Returns `Ok(None)` on a clean end-of-stream at a frame boundary (the
/// peer half-closed between frames) and the full frame — length prefix
/// included, ready for [`decode`] — otherwise.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] when the length prefix exceeds
/// `max_frame_len` (nothing is allocated), [`NetError::Codec`] when the
/// stream ends mid-frame, [`NetError::Io`] on a read failure.
pub fn read_frame<R: Read>(
    r: &mut R,
    max_frame_len: usize,
) -> Result<Option<Vec<u8>>, NetError> {
    let mut prefix = [0u8; 4];
    if !read_full(r, &mut prefix, false)? {
        return Ok(None);
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_frame_len {
        return Err(NetError::FrameTooLarge { len, max: max_frame_len });
    }
    let mut frame = vec![0u8; 4 + len];
    frame[..4].copy_from_slice(&prefix);
    read_full(r, &mut frame[4..], true)?;
    Ok(Some(frame))
}

/// Reads `(kind, identity)` from a frame without decoding the payload —
/// the fault layer's hook. The codec byte is skipped, not validated, so
/// identity-keyed fault decisions stay independent of compression mode.
///
/// # Errors
///
/// Returns [`NetError::Codec`] when the frame is shorter than the fixed
/// header.
pub fn peek_identity(frame: &[u8]) -> Result<(u8, MsgId), NetError> {
    let mut r = Reader::new(frame);
    let _len = r.u32()?;
    let kind = r.u8()?;
    let _codec = r.u8()?;
    let id = MsgId {
        worker: r.u32()?,
        epoch: r.u64()?,
        round: r.u64()?,
        attempt: r.u32()?,
    };
    Ok((kind, id))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_id() -> MsgId {
        MsgId { worker: 3, epoch: 17, round: 2, attempt: 1 }
    }

    fn sample_ledger() -> FetchLedger {
        FetchLedger {
            structure_edges: 10,
            structure_nodes: 4,
            feature_elems: 96,
            structure_wire_bytes: 52,
            feature_wire_bytes: 384,
            feature_bus_elems: 48,
        }
    }

    fn all_messages() -> Vec<Message> {
        let id = sample_id();
        let ledger = sample_ledger();
        vec![
            Message::Request(Request::Epoch { id, params: vec![1.0, -2.5, f32::MIN_POSITIVE] }),
            Message::Request(Request::Round { id, params: vec![] }),
            Message::Request(Request::Stop { id }),
            Message::Response(Response::Epoch {
                id,
                params: vec![0.25; 7],
                loss_sum: 1.75e-3,
                batches: 9,
                ledger,
            }),
            Message::Response(Response::Round {
                id,
                active: true,
                loss: 0.693,
                grads: vec![-1.0, 0.0, 1e-30],
                ledger,
            }),
            Message::Response(Response::Unavailable { id }),
            Message::Response(Response::Failed { id, error: "oops — µ".to_string() }),
        ]
    }

    fn all_configs() -> Vec<CodecConfig> {
        let mut v = Vec::new();
        for s in [StructCodec::None, StructCodec::Varint, StructCodec::Rle] {
            for f in [FeatCodec::F32, FeatCodec::F16, FeatCodec::Int8] {
                v.push(CodecConfig { structure: s, features: f });
            }
        }
        v
    }

    #[test]
    fn round_trip_every_kind() {
        for msg in all_messages() {
            let frame = encode(&msg);
            assert_eq!(decode(&frame).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn raw_frame_len_matches_default_encode() {
        for msg in all_messages() {
            assert_eq!(raw_frame_len(&msg), encode(&msg).len(), "{msg:?}");
        }
    }

    #[test]
    fn lossless_configs_round_trip_bit_exactly() {
        for cfg in all_configs().into_iter().filter(|c| c.lossless()) {
            for msg in all_messages() {
                let frame = encode_with(&msg, cfg);
                assert_eq!(decode(&frame).unwrap(), msg, "{cfg:?} {msg:?}");
            }
        }
    }

    #[test]
    fn quantized_configs_round_trip_non_float_fields_exactly() {
        for cfg in all_configs().into_iter().filter(|c| !c.lossless()) {
            for msg in all_messages() {
                let back = decode(&encode_with(&msg, cfg)).unwrap();
                assert_eq!(back.id(), msg.id(), "{cfg:?}");
                match (&msg, &back) {
                    (
                        Message::Response(Response::Epoch {
                            loss_sum, batches, ledger, params, ..
                        }),
                        Message::Response(Response::Epoch {
                            loss_sum: ls2,
                            batches: b2,
                            ledger: l2,
                            params: p2,
                            ..
                        }),
                    ) => {
                        assert_eq!(loss_sum.to_bits(), ls2.to_bits());
                        assert_eq!(batches, b2);
                        assert_eq!(ledger, l2);
                        assert_eq!(params.len(), p2.len());
                    }
                    (
                        Message::Response(Response::Round { active, ledger, grads, .. }),
                        Message::Response(Response::Round {
                            active: a2, ledger: l2, grads: g2, ..
                        }),
                    ) => {
                        assert_eq!(active, a2);
                        assert_eq!(ledger, l2);
                        assert_eq!(grads.len(), g2.len());
                    }
                    (Message::Request(Request::Epoch { params, .. }),
                     Message::Request(Request::Epoch { params: p2, .. })) => {
                        assert_eq!(params.len(), p2.len());
                    }
                    _ => assert_eq!(&msg, &back, "payload-free kinds must be exact"),
                }
            }
        }
    }

    #[test]
    fn compression_shrinks_the_frames_it_claims_to() {
        // A big, smooth parameter vector: int8 must get close to 4x on
        // the payload; varint side-data must not grow any frame.
        let params: Vec<f32> = (0..4096).map(|i| (i as f32) * 1e-3).collect();
        let msg = Message::Response(Response::Epoch {
            id: sample_id(),
            params,
            loss_sum: 0.5,
            batches: 64,
            ledger: sample_ledger(),
        });
        let raw = encode(&msg).len();
        for cfg in all_configs() {
            let wire = encode_with(&msg, cfg).len();
            assert!(wire <= raw, "{cfg:?} grew the frame: {wire} > {raw}");
        }
        let int8 = encode_with(
            &msg,
            CodecConfig { structure: StructCodec::Varint, features: FeatCodec::Int8 },
        )
        .len();
        assert!(
            (raw as f64) / (int8 as f64) >= 3.5,
            "int8 ratio {:.2} below 3.5",
            (raw as f64) / (int8 as f64)
        );
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        let weird = vec![f32::NAN, -0.0, f32::INFINITY, 1e-45, 3.402_823_5e38];
        let msg = Message::Request(Request::Epoch { id: sample_id(), params: weird.clone() });
        let Message::Request(Request::Epoch { params, .. }) =
            decode(&encode(&msg)).unwrap()
        else {
            panic!("wrong kind")
        };
        for (a, b) in weird.iter().zip(&params) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn peek_matches_full_decode() {
        for cfg in all_configs() {
            for msg in all_messages() {
                let frame = encode_with(&msg, cfg);
                let (_, id) = peek_identity(&frame).unwrap();
                assert_eq!(id, msg.id());
            }
        }
    }

    #[test]
    fn version_mismatch_is_a_typed_codec_error() {
        let mut frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        // Codec byte sits right after the kind byte.
        frame[5] = 0x30; // version nibble 3: a future format
        assert!(matches!(decode(&frame), Err(NetError::Codec(_))));
        frame[5] = 0x03; // version nibble 0: a past format
        assert!(matches!(decode(&frame), Err(NetError::Codec(_))));
    }

    #[test]
    fn truncated_frames_rejected() {
        let frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        for cut in 0..frame.len() {
            assert!(
                matches!(decode(&frame[..cut]), Err(NetError::Codec(_))),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn truncated_compressed_frames_rejected() {
        for cfg in all_configs() {
            let frame = encode_with(
                &Message::Request(Request::Epoch { id: sample_id(), params: vec![0.5; 100] }),
                cfg,
            );
            for cut in 0..frame.len() {
                assert!(
                    decode(&frame[..cut]).is_err(),
                    "{cfg:?}: cut at {cut} accepted"
                );
            }
        }
    }

    #[test]
    fn bad_kind_and_trailing_bytes_rejected() {
        let mut frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        frame[4] = 200;
        assert!(matches!(decode(&frame), Err(NetError::Codec(_))));

        let mut padded = encode(&Message::Request(Request::Stop { id: sample_id() }));
        padded.push(0);
        // Length prefix now disagrees.
        assert!(matches!(decode(&padded), Err(NetError::Codec(_))));
    }

    #[test]
    fn read_frame_round_trips_a_stream_of_frames() {
        let msgs = all_messages();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode(m));
        }
        let mut cur = std::io::Cursor::new(stream);
        for m in &msgs {
            let frame = read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
            assert_eq!(decode(&frame).unwrap(), *m);
        }
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap(), None, "clean EOF");
    }

    #[test]
    fn read_frame_rejects_mid_frame_eof() {
        let frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        for cut in 1..frame.len() {
            let mut cur = std::io::Cursor::new(frame[..cut].to_vec());
            assert!(
                matches!(read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN), Err(NetError::Codec(_))),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn read_frame_rejects_hostile_length_prefix_before_allocating() {
        // A 4 GiB claim backed by 4 bytes of stream: the cap must reject
        // it from the prefix alone, never reserving the claimed buffer.
        let mut hostile = (u32::MAX - 1).to_le_bytes().to_vec();
        hostile.extend_from_slice(&[0; 8]);
        let mut cur = std::io::Cursor::new(hostile);
        assert!(matches!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN),
            Err(NetError::FrameTooLarge { .. })
        ));
        // And the same prefix against a tiny custom cap.
        let small = encode(&Message::Request(Request::Epoch {
            id: sample_id(),
            params: vec![0.5; 64],
        }));
        let mut cur = std::io::Cursor::new(small);
        assert!(matches!(read_frame(&mut cur, 16), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn decode_rejects_hostile_length_prefix() {
        let mut frame = encode(&Message::Request(Request::Stop { id: sample_id() }));
        frame[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&frame), Err(NetError::FrameTooLarge { .. })));
    }

    #[test]
    fn inflated_vector_length_rejected_before_allocation() {
        let mut frame = encode(&Message::Request(Request::Epoch {
            id: sample_id(),
            params: vec![1.0],
        }));
        // Overwrite the vector length (first payload field) with u64::MAX.
        let off = 4 + HEADER_LEN;
        frame[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode(&frame), Err(NetError::Codec(_))));
    }

    #[test]
    fn decoded_size_cap_applies_to_compressed_claims() {
        // An int8 frame small enough on the wire whose element count
        // would decode past the 64 MiB cap: rejected as FrameTooLarge
        // before the decoded buffer is reserved. Build it by hand — a
        // varint count of 32M elements with a (lying) short body.
        let cfg = CodecConfig { structure: StructCodec::Varint, features: FeatCodec::Int8 };
        let mut frame = encode_with(
            &Message::Request(Request::Epoch { id: sample_id(), params: vec![] }),
            cfg,
        );
        // Replace the empty count varint with 32M and pad a body big
        // enough to pass the bytes-per-element screen (32M one-byte
        // codes would need 32 MiB of body; fake it with the length
        // prefix honest about on-wire size).
        frame.truncate(4 + HEADER_LEN);
        write_varint(&mut frame, 32 << 20);
        frame.resize(4 + HEADER_LEN + 5 + (33 << 20), 0);
        let len = (frame.len() - 4) as u32;
        frame[..4].copy_from_slice(&len.to_le_bytes());
        assert!(
            matches!(decode(&frame), Err(NetError::FrameTooLarge { .. })),
            "a 33 MiB wire frame expanding past the 64 MiB decoded cap must be rejected"
        );
    }
}
