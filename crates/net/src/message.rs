use crate::codec;
use crate::NetError;

/// Identity of one protocol message: which worker, which synchronization
/// unit, which delivery attempt.
///
/// The identity rides in a fixed position of every frame so both the
/// deduplicating receiver and the fault layer can key decisions off it
/// without decoding the payload. `round` is `0` for epoch-granular
/// messages; `attempt` counts retransmissions of the same logical message
/// (0 = first send).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsgId {
    /// Worker index the message is addressed to / originates from.
    pub worker: u32,
    /// Training epoch the message belongs to.
    pub epoch: u64,
    /// Gradient-averaging round within the epoch (0 under model
    /// averaging).
    pub round: u64,
    /// Retransmission attempt (0 = original send).
    pub attempt: u32,
}

impl MsgId {
    /// The `(epoch, round)` synchronization unit this message belongs to,
    /// ordered lexicographically — receivers use it to spot stale frames.
    pub fn unit(&self) -> (u64, u64) {
        (self.epoch, self.round)
    }
}

/// Remote graph-data fetch counts a worker performed since its previous
/// response — the raw quantities behind the paper's communication-cost
/// metric, shipped back to the master on every response so wire-observed
/// traffic can be reconciled against the [`CommTracker`]-style meters.
///
/// [`CommTracker`]: https://docs.rs/splpg-dist
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchLedger {
    /// Edges pulled from remote partitions.
    pub structure_edges: u64,
    /// Node identifiers pulled alongside those edges.
    pub structure_nodes: u64,
    /// Feature elements (`f32` scalars) pulled from the master's store.
    pub feature_elems: u64,
    /// On-wire bytes those structure fetches cost under the negotiated
    /// codec (equals the raw byte model when compression is off).
    pub structure_wire_bytes: u64,
    /// On-wire bytes the feature fetches cost under the negotiated
    /// codec (equals the raw byte model when compression is off).
    pub feature_wire_bytes: u64,
    /// Feature elements served zero-copy over the shared-memory bus
    /// instead of the wire — the "local bus" plane of the comm-cost
    /// ablation. These elements are *not* double-counted in
    /// `feature_elems`.
    pub feature_bus_elems: u64,
}

impl FetchLedger {
    /// Element-wise sum.
    pub fn add(&mut self, other: &FetchLedger) {
        self.structure_edges += other.structure_edges;
        self.structure_nodes += other.structure_nodes;
        self.feature_elems += other.feature_elems;
        self.structure_wire_bytes += other.structure_wire_bytes;
        self.feature_wire_bytes += other.feature_wire_bytes;
        self.feature_bus_elems += other.feature_bus_elems;
    }

    /// Element-wise difference `self - base` (saturating).
    pub fn since(&self, base: &FetchLedger) -> FetchLedger {
        FetchLedger {
            structure_edges: self.structure_edges.saturating_sub(base.structure_edges),
            structure_nodes: self.structure_nodes.saturating_sub(base.structure_nodes),
            feature_elems: self.feature_elems.saturating_sub(base.feature_elems),
            structure_wire_bytes: self
                .structure_wire_bytes
                .saturating_sub(base.structure_wire_bytes),
            feature_wire_bytes: self.feature_wire_bytes.saturating_sub(base.feature_wire_bytes),
            feature_bus_elems: self.feature_bus_elems.saturating_sub(base.feature_bus_elems),
        }
    }
}

/// Master→worker messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one full local epoch starting from `params` and report the
    /// trained replica (model averaging).
    Epoch {
        /// Message identity.
        id: MsgId,
        /// Flattened global parameters to start the epoch from.
        params: Vec<f32>,
    },
    /// Run one mini-batch round starting from `params` and report the
    /// local gradient (gradient averaging).
    Round {
        /// Message identity.
        id: MsgId,
        /// Flattened global parameters to compute the batch gradient at.
        params: Vec<f32>,
    },
    /// Training is over; exit the worker loop.
    Stop {
        /// Message identity.
        id: MsgId,
    },
}

impl Request {
    /// The message identity.
    pub fn id(&self) -> MsgId {
        match self {
            Request::Epoch { id, .. } | Request::Round { id, .. } | Request::Stop { id } => *id,
        }
    }
}

/// Worker→master messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed local epoch (model averaging).
    Epoch {
        /// Message identity (echoes the request's unit).
        id: MsgId,
        /// Flattened locally-trained parameters.
        params: Vec<f32>,
        /// Sum of per-batch losses over the epoch (f64 accumulation).
        loss_sum: f64,
        /// Number of mini-batches run.
        batches: u64,
        /// Remote fetches performed since the previous response.
        ledger: FetchLedger,
    },
    /// A completed mini-batch round (gradient averaging).
    Round {
        /// Message identity (echoes the request's unit).
        id: MsgId,
        /// Whether this worker had a batch left this round; inactive
        /// workers contribute zero gradients to keep the averaging
        /// divisor at `p`.
        active: bool,
        /// Batch loss (meaningless when `active` is false).
        loss: f32,
        /// Flattened gradients in canonical parameter order (empty when
        /// `active` is false).
        grads: Vec<f32>,
        /// Remote fetches performed since the previous response.
        ledger: FetchLedger,
    },
    /// The worker is injected-down for this epoch: it answers (so the
    /// master need not wait out a timeout) but contributes nothing.
    Unavailable {
        /// Message identity (echoes the request's unit).
        id: MsgId,
    },
    /// The worker hit an unrecoverable internal error and is exiting.
    Failed {
        /// Message identity (echoes the request's unit).
        id: MsgId,
        /// Human-readable error description.
        error: String,
    },
}

impl Response {
    /// The message identity.
    pub fn id(&self) -> MsgId {
        match self {
            Response::Epoch { id, .. }
            | Response::Round { id, .. }
            | Response::Unavailable { id }
            | Response::Failed { id, .. } => *id,
        }
    }

    /// Rewrites the delivery-attempt field, leaving the unit untouched.
    ///
    /// A cached response re-sent for a retransmitted request must carry
    /// the *new* attempt number: deterministic fault injection keys its
    /// decision on the full identity, and echoing the original attempt
    /// would reproduce the original drop on every retry, forever.
    pub fn set_attempt(&mut self, attempt: u32) {
        match self {
            Response::Epoch { id, .. }
            | Response::Round { id, .. }
            | Response::Unavailable { id }
            | Response::Failed { id, .. } => id.attempt = attempt,
        }
    }
}

/// Any protocol message — what actually travels over a [`Transport`].
///
/// [`Transport`]: crate::Transport
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Master→worker.
    Request(Request),
    /// Worker→master.
    Response(Response),
}

impl Message {
    /// Encodes into a length-prefixed frame.
    pub fn encode(&self) -> Vec<u8> {
        codec::encode(self)
    }

    /// Decodes a length-prefixed frame.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] on truncated or malformed frames.
    pub fn decode(frame: &[u8]) -> Result<Message, NetError> {
        codec::decode(frame)
    }

    /// The message identity.
    pub fn id(&self) -> MsgId {
        match self {
            Message::Request(r) => r.id(),
            Message::Response(r) => r.id(),
        }
    }
}
