//! Property-style tests on samplers, negative sampling and metrics, run as
//! seeded loops.

use splpg_gnn::{metrics, FullGraphAccess, NeighborSampler, PerSourceNegativeSampler};
use splpg_graph::{Graph, NodeId};
use splpg_rng::{Rng, SeedableRng};

const CASES: u64 = 32;

fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(seed)
}

/// A random simple graph with 4..40 nodes and 1..4n edges.
fn rand_graph(r: &mut splpg_rng::rngs::StdRng) -> Graph {
    let n = r.gen_range(4usize..40);
    let m = r.gen_range(1..4 * n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    while edges.len() < m {
        let u = r.gen_range(0..n as NodeId);
        let v = r.gen_range(0..n as NodeId);
        if u != v {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).unwrap()
}

fn rand_scores(r: &mut splpg_rng::rngs::StdRng, lo: usize, hi: usize, bound: f32) -> Vec<f32> {
    let len = r.gen_range(lo..hi);
    (0..len).map(|_| r.gen_range(-bound..bound)).collect()
}

#[test]
fn sampled_batches_always_validate() {
    for case in 0..CASES {
        let mut r = rng(case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        let layers = r.gen_range(1usize..4);
        let fanout = if r.gen_bool(0.5) { Some(r.gen_range(1usize..6)) } else { None };
        let seeds: Vec<NodeId> = (0..4).map(|i| (i * 7 % n) as NodeId).collect();
        let sampler = NeighborSampler::new(vec![fanout; layers]);
        let access = FullGraphAccess::new(&g);
        let batch = sampler.sample(&access, &seeds, &mut r);
        batch.validate().unwrap();
        assert_eq!(batch.blocks.len(), layers, "case {case}");
    }
}

#[test]
fn fanout_limits_per_destination_edges() {
    for case in 0..CASES {
        let mut r = rng(1000 + case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        let fanout = r.gen_range(1usize..5);
        let seeds: Vec<NodeId> = (0..n.min(6)).map(|i| i as NodeId).collect();
        let sampler = NeighborSampler::new(vec![Some(fanout)]);
        let access = FullGraphAccess::new(&g);
        let batch = sampler.sample(&access, &seeds, &mut r);
        let block = &batch.blocks[0];
        let mut per_dst = vec![0usize; block.num_dst];
        for &d in &block.edge_dst {
            per_dst[d as usize] += 1;
        }
        assert!(per_dst.iter().all(|&c| c <= fanout), "case {case}");
    }
}

#[test]
fn block_edges_exist_in_graph() {
    for case in 0..CASES {
        let mut r = rng(2000 + case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        let seeds: Vec<NodeId> = vec![0, (n / 2) as NodeId];
        let sampler = NeighborSampler::full(2);
        let access = FullGraphAccess::new(&g);
        let batch = sampler.sample(&access, &seeds, &mut r);
        for block in &batch.blocks {
            for (&s, &d) in block.edge_src.iter().zip(&block.edge_dst) {
                let gs = block.src_ids[s as usize];
                let gd = block.src_ids[d as usize];
                assert!(g.has_edge(gs, gd), "case {case}: block edge {gs}-{gd} not in graph");
            }
        }
    }
}

#[test]
fn negatives_never_collide_with_edges() {
    for case in 0..CASES {
        let mut r = rng(3000 + case);
        let g = rand_graph(&mut r);
        let n = g.num_nodes();
        if g.num_edges() == 0 {
            continue;
        }
        let sampler = PerSourceNegativeSampler::global(n);
        let access = FullGraphAccess::new(&g);
        for v in 0..(n as NodeId).min(8) {
            // Skip sources connected to everything.
            if g.degree(v) + 1 >= n {
                continue;
            }
            if let Ok(d) = sampler.sample_destination(&access, v, &mut r) {
                assert!(!g.has_edge(v, d), "case {case}");
                assert_ne!(d, v, "case {case}");
            }
        }
    }
}

#[test]
fn hits_is_monotone_in_k() {
    for case in 0..CASES {
        let mut r = rng(4000 + case);
        let pos = rand_scores(&mut r, 1, 40, 5.0);
        let neg = rand_scores(&mut r, 2, 60, 5.0);
        let h1 = metrics::hits_at_k(&pos, &neg, 1).unwrap();
        let h_mid = metrics::hits_at_k(&pos, &neg, neg.len() / 2 + 1).unwrap();
        let h_all = metrics::hits_at_k(&pos, &neg, neg.len()).unwrap();
        assert!(h1 <= h_mid + 1e-12, "case {case}");
        assert!(h_mid <= h_all + 1e-12, "case {case}");
    }
}

#[test]
fn auc_and_mrr_bounded() {
    for case in 0..CASES {
        let mut r = rng(5000 + case);
        let pos = rand_scores(&mut r, 1, 30, 5.0);
        let neg = rand_scores(&mut r, 1, 30, 5.0);
        let a = metrics::auc(&pos, &neg).unwrap();
        assert!((0.0..=1.0).contains(&a), "case {case}");
        let m = metrics::mrr(&pos, &neg).unwrap();
        assert!(m > 0.0 && m <= 1.0, "case {case}");
    }
}

#[test]
fn shifting_all_scores_preserves_metrics() {
    for case in 0..CASES {
        let mut r = rng(6000 + case);
        let pos = rand_scores(&mut r, 1, 20, 2.0);
        let neg = rand_scores(&mut r, 2, 30, 2.0);
        let shift = r.gen_range(-3.0f32..3.0);
        // Rank metrics are invariant to monotone transforms.
        let pos2: Vec<f32> = pos.iter().map(|&x| x + shift).collect();
        let neg2: Vec<f32> = neg.iter().map(|&x| x + shift).collect();
        let a1 = metrics::auc(&pos, &neg).unwrap();
        let a2 = metrics::auc(&pos2, &neg2).unwrap();
        assert!((a1 - a2).abs() < 1e-9, "case {case}");
        let h1 = metrics::hits_at_k(&pos, &neg, 2).unwrap();
        let h2 = metrics::hits_at_k(&pos2, &neg2, 2).unwrap();
        assert!((h1 - h2).abs() < 1e-9, "case {case}");
    }
}
