//! Property-based tests on samplers, negative sampling and metrics.

use proptest::prelude::*;
use rand::SeedableRng;
use splpg_gnn::{
    metrics, FullGraphAccess, NeighborSampler, PerSourceNegativeSampler,
};
use splpg_graph::{Graph, NodeId};

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (4usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId).prop_filter("no loops", |(u, v)| u != v),
            1..4 * n,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sampled_batches_always_validate(
        (n, edges) in arb_graph(),
        seed in 0u64..500,
        layers in 1usize..4,
        fanout in proptest::option::of(1usize..6),
    ) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seeds: Vec<NodeId> = (0..4).map(|i| (i * 7 % n) as NodeId).collect();
        let sampler = NeighborSampler::new(vec![fanout; layers]);
        let mut access = FullGraphAccess::new(&g);
        let batch = sampler.sample(&mut access, &seeds, &mut rng);
        batch.validate().unwrap();
        prop_assert_eq!(batch.blocks.len(), layers);
    }

    #[test]
    fn fanout_limits_per_destination_edges(
        (n, edges) in arb_graph(),
        seed in 0u64..500,
        fanout in 1usize..5,
    ) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seeds: Vec<NodeId> = (0..n.min(6)).map(|i| i as NodeId).collect();
        let sampler = NeighborSampler::new(vec![Some(fanout)]);
        let mut access = FullGraphAccess::new(&g);
        let batch = sampler.sample(&mut access, &seeds, &mut rng);
        let block = &batch.blocks[0];
        let mut per_dst = vec![0usize; block.num_dst];
        for &d in &block.edge_dst {
            per_dst[d as usize] += 1;
        }
        prop_assert!(per_dst.iter().all(|&c| c <= fanout));
    }

    #[test]
    fn block_edges_exist_in_graph((n, edges) in arb_graph(), seed in 0u64..500) {
        let g = Graph::from_edges(n, &edges).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let seeds: Vec<NodeId> = vec![0, (n / 2) as NodeId];
        let sampler = NeighborSampler::full(2);
        let mut access = FullGraphAccess::new(&g);
        let batch = sampler.sample(&mut access, &seeds, &mut rng);
        for block in &batch.blocks {
            for (&s, &d) in block.edge_src.iter().zip(&block.edge_dst) {
                let gs = block.src_ids[s as usize];
                let gd = block.src_ids[d as usize];
                prop_assert!(g.has_edge(gs, gd), "block edge {gs}-{gd} not in graph");
            }
        }
    }

    #[test]
    fn negatives_never_collide_with_edges((n, edges) in arb_graph(), seed in 0u64..500) {
        let g = Graph::from_edges(n, &edges).unwrap();
        prop_assume!(g.num_edges() > 0);
        // Skip sources connected to everything.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sampler = PerSourceNegativeSampler::global(n);
        let mut access = FullGraphAccess::new(&g);
        for v in 0..(n as NodeId).min(8) {
            if g.degree(v) + 1 >= n {
                continue;
            }
            if let Ok(d) = sampler.sample_destination(&mut access, v, &mut rng) {
                prop_assert!(!g.has_edge(v, d));
                prop_assert_ne!(d, v);
            }
        }
    }

    #[test]
    fn hits_is_monotone_in_k(
        pos in proptest::collection::vec(-5.0f32..5.0, 1..40),
        neg in proptest::collection::vec(-5.0f32..5.0, 2..60),
    ) {
        let h1 = metrics::hits_at_k(&pos, &neg, 1).unwrap();
        let h_mid = metrics::hits_at_k(&pos, &neg, neg.len() / 2 + 1).unwrap();
        let h_all = metrics::hits_at_k(&pos, &neg, neg.len()).unwrap();
        prop_assert!(h1 <= h_mid + 1e-12);
        prop_assert!(h_mid <= h_all + 1e-12);
    }

    #[test]
    fn auc_and_mrr_bounded(
        pos in proptest::collection::vec(-5.0f32..5.0, 1..30),
        neg in proptest::collection::vec(-5.0f32..5.0, 1..30),
    ) {
        let a = metrics::auc(&pos, &neg).unwrap();
        prop_assert!((0.0..=1.0).contains(&a));
        let m = metrics::mrr(&pos, &neg).unwrap();
        prop_assert!(m > 0.0 && m <= 1.0);
    }

    #[test]
    fn shifting_all_scores_preserves_metrics(
        pos in proptest::collection::vec(-2.0f32..2.0, 1..20),
        neg in proptest::collection::vec(-2.0f32..2.0, 2..30),
        shift in -3.0f32..3.0,
    ) {
        // Rank metrics are invariant to monotone transforms.
        let pos2: Vec<f32> = pos.iter().map(|&x| x + shift).collect();
        let neg2: Vec<f32> = neg.iter().map(|&x| x + shift).collect();
        let a1 = metrics::auc(&pos, &neg).unwrap();
        let a2 = metrics::auc(&pos2, &neg2).unwrap();
        prop_assert!((a1 - a2).abs() < 1e-9);
        let h1 = metrics::hits_at_k(&pos, &neg, 2).unwrap();
        let h2 = metrics::hits_at_k(&pos2, &neg2, 2).unwrap();
        prop_assert!((h1 - h2).abs() < 1e-9);
    }
}
