use std::collections::HashMap;

use rand::Rng;
use splpg_graph::NodeId;

use crate::{Block, GraphAccess, MiniBatch};

/// Multi-layer neighbor sampler producing message-flow [`Block`]s.
///
/// `fanouts[h]` caps the neighbors drawn at hop `h + 1` from the seeds
/// (`None` = full neighborhood). The paper's GraphSAGE setting samples
/// 25/10/5 nodes from the first/second/third hop, i.e. `[Some(25),
/// Some(10), Some(5)]`; its GCN uses full neighborhoods
/// (`vec![None; 3]`, via [`NeighborSampler::full`]).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_gnn::{FullGraphAccess, NeighborSampler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5)])?;
/// let mut access = FullGraphAccess::new(&g);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let sampler = NeighborSampler::full(2);
/// let batch = sampler.sample(&mut access, &[0], &mut rng);
/// assert_eq!(batch.blocks.len(), 2);
/// assert_eq!(batch.seeds, vec![0]);
/// batch.validate().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborSampler {
    fanouts: Vec<Option<usize>>,
}

impl NeighborSampler {
    /// Sampler with explicit per-hop fanouts (hop 1 = adjacent to seeds).
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty.
    pub fn new(fanouts: Vec<Option<usize>>) -> Self {
        assert!(!fanouts.is_empty(), "at least one layer required");
        NeighborSampler { fanouts }
    }

    /// Full-neighborhood sampler with `layers` hops.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn full(layers: usize) -> Self {
        Self::new(vec![None; layers])
    }

    /// The paper's GraphSAGE fanouts: 25, 10, 5 for hops 1, 2, 3.
    pub fn paper_sage() -> Self {
        Self::new(vec![Some(25), Some(10), Some(5)])
    }

    /// Number of layers (= blocks produced).
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Samples a mini-batch of blocks for `seeds`.
    ///
    /// Duplicate seeds are collapsed. Blocks are returned input-side first,
    /// so `batch.blocks[0].src_ids` lists the nodes whose features must be
    /// materialized.
    pub fn sample<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &mut A,
        seeds: &[NodeId],
        rng: &mut R,
    ) -> MiniBatch {
        let mut unique_seeds: Vec<NodeId> = Vec::new();
        let mut seen: HashMap<NodeId, u32> = HashMap::new();
        for &s in seeds {
            if let std::collections::hash_map::Entry::Vacant(e) = seen.entry(s) {
                e.insert(unique_seeds.len() as u32);
                unique_seeds.push(s);
            }
        }

        // Build from the output side (hop 1) towards the input.
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        let mut frontier = unique_seeds.clone();
        for &fanout in &self.fanouts {
            let num_dst = frontier.len();
            let mut src_ids = frontier.clone();
            let mut src_index: HashMap<NodeId, u32> =
                src_ids.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            let mut edge_src = Vec::new();
            let mut edge_dst = Vec::new();
            let mut edge_weight = Vec::new();
            for (dst_idx, &dst) in frontier.iter().enumerate() {
                for (nbr, w) in access.sample_neighbors(dst, fanout, rng) {
                    let src_idx = *src_index.entry(nbr).or_insert_with(|| {
                        src_ids.push(nbr);
                        (src_ids.len() - 1) as u32
                    });
                    edge_src.push(src_idx);
                    edge_dst.push(dst_idx as u32);
                    edge_weight.push(w);
                }
            }
            let src_degree = src_ids.iter().map(|&v| access.degree(v) as f32).collect();
            blocks_rev.push(Block {
                src_ids: src_ids.clone(),
                num_dst,
                edge_src,
                edge_dst,
                edge_weight,
                src_degree,
            });
            frontier = src_ids;
        }
        blocks_rev.reverse();
        MiniBatch { blocks: blocks_rev, seeds: unique_seeds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullGraphAccess;
    use rand::SeedableRng;
    use splpg_graph::Graph;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(0)
    }

    fn star_plus_path() -> Graph {
        // Node 0 is a hub over 1..=10; path 10-11-12.
        let mut edges: Vec<(NodeId, NodeId)> = (1..=10).map(|i| (0, i)).collect();
        edges.push((10, 11));
        edges.push((11, 12));
        Graph::from_edges(13, &edges).unwrap()
    }

    #[test]
    fn full_sampler_covers_khop() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(2).sample(&mut a, &[12], &mut rng());
        batch.validate().unwrap();
        // 2 hops from 12: {12, 11, 10}.
        let mut input: Vec<NodeId> = batch.input_nodes().to_vec();
        input.sort_unstable();
        assert_eq!(input, vec![10, 11, 12]);
    }

    #[test]
    fn fanout_caps_neighbors() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::new(vec![Some(3)]).sample(&mut a, &[0], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.blocks[0].num_edges(), 3);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(1).sample(&mut a, &[5, 5, 0, 5], &mut rng());
        assert_eq!(batch.seeds, vec![5, 0]);
        batch.validate().unwrap();
    }

    #[test]
    fn blocks_chain_correctly() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(3).sample(&mut a, &[12, 0], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.blocks.len(), 3);
        // The last block's dst prefix is the seeds.
        assert_eq!(batch.blocks[2].dst_ids(), &[12, 0]);
    }

    #[test]
    fn isolated_seed_yields_empty_edges() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(2).sample(&mut a, &[2], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.total_edges(), 0);
        assert_eq!(batch.input_nodes(), &[2]);
    }

    #[test]
    fn degrees_recorded_for_all_srcs() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(1).sample(&mut a, &[11], &mut rng());
        let b = &batch.blocks[0];
        for (i, &v) in b.src_ids.iter().enumerate() {
            assert_eq!(b.src_degree[i], g.degree(v) as f32);
        }
    }

    #[test]
    fn paper_sage_shape() {
        let s = NeighborSampler::paper_sage();
        assert_eq!(s.num_layers(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_fanouts_panic() {
        let _ = NeighborSampler::new(vec![]);
    }
}
