use std::collections::BTreeMap;

use splpg_rng::Rng;
use splpg_graph::NodeId;

use crate::{Block, GraphAccess, MiniBatch};

/// Frontier size below which fan-out subsampling stays inline: a
/// per-node shuffle costs ~100ns, so smaller frontiers can't amortize a
/// thread spawn.
const PAR_FRONTIER_THRESHOLD: usize = 512;

/// Multi-layer neighbor sampler producing message-flow [`Block`]s.
///
/// `fanouts[h]` caps the neighbors drawn at hop `h + 1` from the seeds
/// (`None` = full neighborhood). The paper's GraphSAGE setting samples
/// 25/10/5 nodes from the first/second/third hop, i.e. `[Some(25),
/// Some(10), Some(5)]`; its GCN uses full neighborhoods
/// (`vec![None; 3]`, via [`NeighborSampler::full`]).
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_gnn::{FullGraphAccess, NeighborSampler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5)])?;
/// let mut access = FullGraphAccess::new(&g);
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
/// let sampler = NeighborSampler::full(2);
/// let batch = sampler.sample(&mut access, &[0], &mut rng);
/// assert_eq!(batch.blocks.len(), 2);
/// assert_eq!(batch.seeds, vec![0]);
/// batch.validate().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborSampler {
    fanouts: Vec<Option<usize>>,
}

impl NeighborSampler {
    /// Sampler with explicit per-hop fanouts (hop 1 = adjacent to seeds).
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty.
    pub fn new(fanouts: Vec<Option<usize>>) -> Self {
        assert!(!fanouts.is_empty(), "at least one layer required");
        NeighborSampler { fanouts }
    }

    /// Full-neighborhood sampler with `layers` hops.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn full(layers: usize) -> Self {
        Self::new(vec![None; layers])
    }

    /// The paper's GraphSAGE fanouts: 25, 10, 5 for hops 1, 2, 3.
    pub fn paper_sage() -> Self {
        Self::new(vec![Some(25), Some(10), Some(5)])
    }

    /// Number of layers (= blocks produced).
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Samples a mini-batch of blocks for `seeds`.
    ///
    /// Duplicate seeds are collapsed. Blocks are returned input-side first,
    /// so `batch.blocks[0].src_ids` lists the nodes whose features must be
    /// materialized.
    ///
    /// Each hop fetches neighbor lists sequentially through `access` (so
    /// remote implementations meter exactly as before) and then fan-out
    /// subsamples them across the global [`splpg_par`] pool. Every
    /// destination node shuffles with its own RNG stream derived from one
    /// per-hop draw on `rng` (see [`splpg_rng::derive_stream`]), so the
    /// sampled batch depends only on the seed — never on the thread
    /// count.
    pub fn sample<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &mut A,
        seeds: &[NodeId],
        rng: &mut R,
    ) -> MiniBatch {
        let mut unique_seeds: Vec<NodeId> = Vec::new();
        let mut seen: BTreeMap<NodeId, u32> = BTreeMap::new();
        for &s in seeds {
            if let std::collections::btree_map::Entry::Vacant(e) = seen.entry(s) {
                e.insert(unique_seeds.len() as u32);
                unique_seeds.push(s);
            }
        }

        // Build from the output side (hop 1) towards the input. Each hop's
        // frontier is the previous block's `src_ids`, borrowed in place:
        // the per-hop scratch (`src_ids`, edge arrays) is built once and
        // moved into the `Block`, never cloned.
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        for &fanout in &self.fanouts {
            let frontier: &[NodeId] = match blocks_rev.last() {
                Some(prev) => &prev.src_ids,
                None => &unique_seeds,
            };
            let num_dst = frontier.len();
            // Phase 1 — fetch (sequential): the metered remote operation.
            let mut lists: Vec<Vec<(NodeId, f32)>> =
                frontier.iter().map(|&dst| access.neighbors(dst)).collect();
            // Phase 2 — subsample (parallel, deterministic by stream).
            if let Some(k) = fanout {
                let hop_seed: u64 = rng.gen();
                splpg_par::global().parallel_for_mut(
                    &mut lists,
                    1,
                    PAR_FRONTIER_THRESHOLD,
                    |start, chunk| {
                        for (off, nbrs) in chunk.iter_mut().enumerate() {
                            if nbrs.len() > k {
                                let mut r =
                                    splpg_rng::derive_stream(hop_seed, (start + off) as u64);
                                partial_shuffle(nbrs, k, &mut r);
                                nbrs.truncate(k);
                            }
                        }
                    },
                );
            }
            // Phase 3 — assemble (sequential): global-to-block indexing.
            let mut src_ids = frontier.to_vec();
            let mut src_index: BTreeMap<NodeId, u32> =
                src_ids.iter().enumerate().map(|(i, &v)| (v, i as u32)).collect();
            let mut edge_src = Vec::new();
            let mut edge_dst = Vec::new();
            let mut edge_weight = Vec::new();
            for (dst_idx, sampled) in lists.into_iter().enumerate() {
                for (nbr, w) in sampled {
                    let src_idx = *src_index.entry(nbr).or_insert_with(|| {
                        src_ids.push(nbr);
                        (src_ids.len() - 1) as u32
                    });
                    edge_src.push(src_idx);
                    edge_dst.push(dst_idx as u32);
                    edge_weight.push(w);
                }
            }
            let src_degree = src_ids.iter().map(|&v| access.degree(v) as f32).collect();
            blocks_rev.push(Block {
                src_ids,
                num_dst,
                edge_src,
                edge_dst,
                edge_weight,
                src_degree,
            });
        }
        blocks_rev.reverse();
        MiniBatch { blocks: blocks_rev, seeds: unique_seeds }
    }
}

/// Fisher–Yates over the first `k` positions only: they end up holding a
/// uniform `k`-subset in uniform order, exactly as a full shuffle
/// followed by `truncate(k)` would, at `O(k)` draws instead of `O(n)`.
fn partial_shuffle<T, R: Rng + ?Sized>(items: &mut [T], k: usize, rng: &mut R) {
    let n = items.len();
    for i in 0..k.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullGraphAccess;
    use splpg_rng::SeedableRng;
    use splpg_graph::Graph;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(0)
    }

    fn star_plus_path() -> Graph {
        // Node 0 is a hub over 1..=10; path 10-11-12.
        let mut edges: Vec<(NodeId, NodeId)> = (1..=10).map(|i| (0, i)).collect();
        edges.push((10, 11));
        edges.push((11, 12));
        Graph::from_edges(13, &edges).unwrap()
    }

    #[test]
    fn full_sampler_covers_khop() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(2).sample(&mut a, &[12], &mut rng());
        batch.validate().unwrap();
        // 2 hops from 12: {12, 11, 10}.
        let mut input: Vec<NodeId> = batch.input_nodes().to_vec();
        input.sort_unstable();
        assert_eq!(input, vec![10, 11, 12]);
    }

    #[test]
    fn fanout_caps_neighbors() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::new(vec![Some(3)]).sample(&mut a, &[0], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.blocks[0].num_edges(), 3);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(1).sample(&mut a, &[5, 5, 0, 5], &mut rng());
        assert_eq!(batch.seeds, vec![5, 0]);
        batch.validate().unwrap();
    }

    #[test]
    fn blocks_chain_correctly() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(3).sample(&mut a, &[12, 0], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.blocks.len(), 3);
        // The last block's dst prefix is the seeds.
        assert_eq!(batch.blocks[2].dst_ids(), &[12, 0]);
    }

    #[test]
    fn isolated_seed_yields_empty_edges() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(2).sample(&mut a, &[2], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.total_edges(), 0);
        assert_eq!(batch.input_nodes(), &[2]);
    }

    #[test]
    fn degrees_recorded_for_all_srcs() {
        let g = star_plus_path();
        let mut a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(1).sample(&mut a, &[11], &mut rng());
        let b = &batch.blocks[0];
        for (i, &v) in b.src_ids.iter().enumerate() {
            assert_eq!(b.src_degree[i], g.degree(v) as f32);
        }
    }

    #[test]
    fn paper_sage_shape() {
        let s = NeighborSampler::paper_sage();
        assert_eq!(s.num_layers(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_fanouts_panic() {
        let _ = NeighborSampler::new(vec![]);
    }

    #[test]
    fn batches_identical_across_thread_counts() {
        // 600 hub nodes each with 8 spokes: frontier crosses the
        // parallel threshold at hop 1.
        let hubs = 600u32;
        let spokes = 8u32;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for h in 0..hubs {
            for s in 0..spokes {
                edges.push((h, hubs + h * spokes + s));
            }
        }
        let g = Graph::from_edges((hubs + hubs * spokes) as usize, &edges).unwrap();
        let seeds: Vec<NodeId> = (0..hubs).collect();
        let sampler = NeighborSampler::new(vec![Some(3)]);
        let run = |threads: usize| {
            splpg_par::set_num_threads(threads);
            let mut a = FullGraphAccess::new(&g);
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(42);
            let batch = sampler.sample(&mut a, &seeds, &mut r);
            splpg_par::set_num_threads(0);
            batch
        };
        let single = run(1);
        let eight = run(8);
        assert_eq!(single.seeds, eight.seeds);
        for (b1, b8) in single.blocks.iter().zip(&eight.blocks) {
            assert_eq!(b1.src_ids, b8.src_ids);
            assert_eq!(b1.edge_src, b8.edge_src);
            assert_eq!(b1.edge_dst, b8.edge_dst);
            assert_eq!(b1.edge_weight, b8.edge_weight);
        }
    }

    #[test]
    fn partial_shuffle_matches_prefix_distribution() {
        // Every element must be reachable into the prefix.
        let mut seen = [false; 10];
        for trial in 0..200 {
            let mut v: Vec<usize> = (0..10).collect();
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(trial);
            partial_shuffle(&mut v, 3, &mut r);
            for &x in &v[..3] {
                seen[x] = true;
            }
            // Prefix stays duplicate-free.
            let mut p = v[..3].to_vec();
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), 3);
        }
        assert!(seen.iter().all(|&b| b), "all elements reachable in prefix");
    }
}
