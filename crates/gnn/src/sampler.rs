use splpg_rng::Rng;
use splpg_graph::NodeId;

use crate::{Block, GraphAccess, MiniBatch};

/// Minimum frontier nodes per sampling worker: a per-node fetch +
/// shuffle costs ~100ns, so smaller shares cannot amortize a thread
/// spawn.
const PAR_FRONTIER_THRESHOLD: usize = 512;

/// Sentinel for "node never stamped" in the dense first-touch map.
const UNSTAMPED: u64 = 0;

/// Per-batch counters of how much neighbor expansion a mini-batch build
/// performed.
///
/// `expansions` counts neighbor-list fetches, i.e. one per **distinct**
/// frontier node per hop in the cooperative build — the quantity the
/// GSplit-style shared-frontier dedup minimizes. Comparing against the
/// same counter from [`NeighborSampler::sample_per_seed_blocks`] (where
/// each seed block expands its own frontier and cross-block duplicates
/// are fetched once *per block*) measures exactly what cooperation
/// saves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Neighbor-list fetches summed over hops.
    pub expansions: u64,
    /// Edges kept after fan-out subsampling, summed over hops.
    pub sampled_edges: u64,
}

/// Reusable scratch for [`NeighborSampler::sample_with`]: per-worker
/// neighbor buffers and the dense first-touch index map. Hold one per
/// trainer (next to the tape arena) so steady-state sampling performs no
/// allocations beyond the output blocks themselves.
#[derive(Debug, Default)]
pub struct SamplerScratch {
    /// One scratch per sampling worker; grown to the worker count in use.
    workers: Vec<WorkerScratch>,
    /// `node_pos[v]` = block-local index of global node `v`, valid only
    /// when `node_stamp[v]` equals the current epoch.
    node_pos: Vec<u32>,
    /// Epoch stamps validating `node_pos` (0 = never stamped).
    node_stamp: Vec<u64>,
    /// Monotone epoch counter; bumping it invalidates the whole map in
    /// O(1) instead of clearing `num_nodes` entries per hop.
    epoch: u64,
}

/// One worker's flattened fetch results for a hop: neighbor entries back
/// to back in `nbrs`, with `segs[i] = (start, kept)` delimiting the
/// (fan-out-subsampled prefix of the) `i`-th owned frontier node's list.
#[derive(Debug, Default)]
struct WorkerScratch {
    nbrs: Vec<(NodeId, f32)>,
    segs: Vec<(usize, usize)>,
}

impl SamplerScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new first-touch epoch sized for `num_nodes`.
    fn begin_epoch(&mut self, num_nodes: usize) -> u64 {
        if self.node_pos.len() < num_nodes {
            self.node_pos.resize(num_nodes, 0);
            self.node_stamp.resize(num_nodes, UNSTAMPED);
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Multi-layer neighbor sampler producing message-flow [`Block`]s.
///
/// `fanouts[h]` caps the neighbors drawn at hop `h + 1` from the seeds
/// (`None` = full neighborhood). The paper's GraphSAGE setting samples
/// 25/10/5 nodes from the first/second/third hop, i.e. `[Some(25),
/// Some(10), Some(5)]`; its GCN uses full neighborhoods
/// (`vec![None; 3]`, via [`NeighborSampler::full`]).
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_graph::Graph;
/// use splpg_gnn::{FullGraphAccess, NeighborSampler};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(6, &[(0,1),(1,2),(2,3),(3,4),(4,5)])?;
/// let access = FullGraphAccess::new(&g);
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
/// let sampler = NeighborSampler::full(2);
/// let batch = sampler.sample(&access, &[0], &mut rng);
/// assert_eq!(batch.blocks.len(), 2);
/// assert_eq!(batch.seeds, vec![0]);
/// batch.validate().unwrap();
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborSampler {
    fanouts: Vec<Option<usize>>,
}

impl NeighborSampler {
    /// Sampler with explicit per-hop fanouts (hop 1 = adjacent to seeds).
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty.
    pub fn new(fanouts: Vec<Option<usize>>) -> Self {
        assert!(!fanouts.is_empty(), "at least one layer required");
        NeighborSampler { fanouts }
    }

    /// Full-neighborhood sampler with `layers` hops.
    ///
    /// # Panics
    ///
    /// Panics if `layers == 0`.
    pub fn full(layers: usize) -> Self {
        Self::new(vec![None; layers])
    }

    /// The paper's GraphSAGE fanouts: 25, 10, 5 for hops 1, 2, 3.
    pub fn paper_sage() -> Self {
        Self::new(vec![Some(25), Some(10), Some(5)])
    }

    /// Number of layers (= blocks produced).
    pub fn num_layers(&self) -> usize {
        self.fanouts.len()
    }

    /// Samples a mini-batch of blocks for `seeds` using fresh scratch.
    ///
    /// Convenience wrapper over [`NeighborSampler::sample_with`]; hot
    /// loops should hold a [`SamplerScratch`] and call that instead.
    pub fn sample<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &A,
        seeds: &[NodeId],
        rng: &mut R,
    ) -> MiniBatch {
        let mut scratch = SamplerScratch::new();
        self.sample_with(access, seeds, rng, &mut scratch)
    }

    /// Samples a mini-batch of blocks for `seeds`, reusing `scratch`.
    ///
    /// Duplicate seeds are collapsed. Blocks are returned input-side
    /// first, so `batch.blocks[0].src_ids` lists the nodes whose features
    /// must be materialized.
    ///
    /// The build is cooperative in the GSplit sense: each hop expands the
    /// *globally deduplicated* frontier exactly once per distinct node,
    /// no matter how many seeds reach it. The frontier is
    /// range-partitioned over pool workers
    /// ([`splpg_par::partition_items`]); each worker fetches and
    /// fan-out-subsamples its contiguous share into its own scratch, and
    /// a single ordered reduction then merges the per-worker results by
    /// scanning frontier positions ascending — so the assembled block is
    /// a pure function of the frontier, never of the partitioning. Every
    /// frontier node shuffles with its own RNG stream keyed by
    /// `(hop seed, node id)` (see [`splpg_rng::derive_stream`]; one seed
    /// is drawn from `rng` per hop), so the sampled batch is bitwise
    /// identical at any thread count *and* to the per-seed-block
    /// reference build ([`NeighborSampler::sample_per_seed_blocks`]).
    pub fn sample_with<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &A,
        seeds: &[NodeId],
        rng: &mut R,
        scratch: &mut SamplerScratch,
    ) -> MiniBatch {
        self.sample_with_stats(access, seeds, rng, scratch).0
    }

    /// [`NeighborSampler::sample_with`] also returning expansion
    /// counters (used by the kernel bench to report cooperative-dedup
    /// savings).
    pub fn sample_with_stats<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &A,
        seeds: &[NodeId],
        rng: &mut R,
        scratch: &mut SamplerScratch,
    ) -> (MiniBatch, SampleStats) {
        let hop_seeds = self.draw_hop_seeds(rng);
        self.sample_hops(access, seeds, &hop_seeds, scratch)
    }

    /// Naive per-seed-block reference build: `num_blocks` contiguous
    /// blocks of the (deduplicated) seeds each expand their own
    /// multi-hop frontier independently, so a node reached from several
    /// blocks is expanded once *per block*. This is the redundant
    /// expansion pattern the cooperative build eliminates; it exists as
    /// the baseline for the dedup property test and the bench's
    /// expansion counters. Because RNG streams are keyed by node id (not
    /// frontier position), every block samples the same neighbors for a
    /// shared node, and the per-layer union of the returned batches'
    /// nodes and edges equals the cooperative batch's exactly.
    ///
    /// Consumes the same per-hop seed draws from `rng` as one
    /// [`NeighborSampler::sample_with`] call.
    pub fn sample_per_seed_blocks<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &A,
        seeds: &[NodeId],
        rng: &mut R,
        num_blocks: usize,
    ) -> (Vec<MiniBatch>, SampleStats) {
        let hop_seeds = self.draw_hop_seeds(rng);
        let mut scratch = SamplerScratch::new();
        let unique = dedup_seeds(seeds, &mut scratch, access.num_nodes());
        let ranges = splpg_par::partition_items(unique.len(), num_blocks.max(1));
        let mut batches = Vec::with_capacity(ranges.len());
        let mut stats = SampleStats::default();
        for r in ranges {
            let (batch, s) = self.sample_hops(access, &unique[r], &hop_seeds, &mut scratch);
            stats.expansions += s.expansions;
            stats.sampled_edges += s.sampled_edges;
            batches.push(batch);
        }
        (batches, stats)
    }

    /// One `u64` per layer, drawn unconditionally so every build path
    /// (cooperative or per-seed-block) advances `rng` identically.
    fn draw_hop_seeds<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        self.fanouts.iter().map(|_| rng.gen()).collect()
    }

    /// The cooperative multi-hop build over pre-drawn per-hop seeds.
    fn sample_hops<A: GraphAccess>(
        &self,
        access: &A,
        seeds: &[NodeId],
        hop_seeds: &[u64],
        scratch: &mut SamplerScratch,
    ) -> (MiniBatch, SampleStats) {
        let num_nodes = access.num_nodes();
        let unique_seeds = dedup_seeds(seeds, scratch, num_nodes);
        let mut stats = SampleStats::default();

        // Build from the output side (hop 1) towards the input. Each
        // hop's frontier is the previous block's `src_ids`, borrowed in
        // place and expanded exactly once per distinct node.
        let mut blocks_rev: Vec<Block> = Vec::with_capacity(self.fanouts.len());
        for (&fanout, &hop_seed) in self.fanouts.iter().zip(hop_seeds) {
            let frontier: &[NodeId] = match blocks_rev.last() {
                Some(prev) => &prev.src_ids,
                None => &unique_seeds,
            };
            let num_dst = frontier.len();
            stats.expansions += num_dst as u64;

            // Phase 1 — fetch + subsample, range-partitioned across
            // workers. Chunk boundaries decide only which worker fetches
            // a node; its sampled list is keyed by `(hop_seed, node)`.
            let parts = (num_dst / PAR_FRONTIER_THRESHOLD)
                .clamp(1, splpg_par::effective_threads());
            let ranges = splpg_par::partition_items(num_dst, parts);
            if scratch.workers.len() < ranges.len() {
                scratch.workers.resize_with(ranges.len(), WorkerScratch::default);
            }
            let fetch = |w0: usize, workers: &mut [WorkerScratch]| {
                for (i, ws) in workers.iter_mut().enumerate() {
                    ws.nbrs.clear();
                    ws.segs.clear();
                    for &v in &frontier[ranges[w0 + i].clone()] {
                        let start = ws.nbrs.len();
                        access.neighbors_into(v, &mut ws.nbrs);
                        let len = ws.nbrs.len() - start;
                        let mut kept = len;
                        if let Some(k) = fanout {
                            if len > k {
                                let mut r = splpg_rng::derive_stream(hop_seed, u64::from(v));
                                partial_shuffle(&mut ws.nbrs[start..start + len], k, &mut r);
                                ws.nbrs.truncate(start + k);
                                kept = k;
                            }
                        }
                        ws.segs.push((start, kept));
                    }
                }
            };
            {
                let live = &mut scratch.workers[..ranges.len()];
                if ranges.len() > 1 {
                    splpg_par::Pool::new(ranges.len()).parallel_for_mut(live, 1, 1, fetch);
                } else {
                    fetch(0, live);
                }
            }

            // Phase 2 — ordered reduction: scan workers (= frontier
            // ranges) in partition order, indexing discoveries
            // first-touch into the block. The scan order equals a
            // sequential pass over the whole frontier, so the result is
            // independent of `parts`.
            let total: usize = scratch.workers[..ranges.len()]
                .iter()
                .map(|ws| ws.segs.iter().map(|&(_, kept)| kept).sum::<usize>())
                .sum();
            stats.sampled_edges += total as u64;
            let mut src_ids = Vec::with_capacity(num_dst + total);
            src_ids.extend_from_slice(frontier);
            let mut edge_src = Vec::with_capacity(total);
            let mut edge_dst = Vec::with_capacity(total);
            let mut edge_weight = Vec::with_capacity(total);
            let epoch = scratch.begin_epoch(num_nodes);
            // Split-borrow the scratch fields: the dense map is written
            // while the worker buffers are only read.
            let SamplerScratch { workers, node_pos, node_stamp, .. } = &mut *scratch;
            for (i, &v) in frontier.iter().enumerate() {
                node_stamp[v as usize] = epoch;
                node_pos[v as usize] =
                    u32::try_from(i).expect("invariant: frontier size fits u32 (node ids are u32)");
            }
            let mut dst_idx = 0u32;
            for ws in &workers[..ranges.len()] {
                for &(start, kept) in &ws.segs {
                    for &(nbr, weight) in &ws.nbrs[start..start + kept] {
                        let at = nbr as usize;
                        let src_idx = if node_stamp[at] == epoch {
                            node_pos[at]
                        } else {
                            let idx = u32::try_from(src_ids.len())
                                .expect("invariant: batch node count fits u32 (node ids are u32)");
                            node_stamp[at] = epoch;
                            node_pos[at] = idx;
                            src_ids.push(nbr);
                            idx
                        };
                        edge_src.push(src_idx);
                        edge_dst.push(dst_idx);
                        edge_weight.push(weight);
                    }
                    dst_idx += 1;
                }
            }
            debug_assert_eq!(dst_idx as usize, num_dst);
            let src_degree = src_ids.iter().map(|&v| access.degree(v) as f32).collect();
            blocks_rev.push(Block {
                src_ids,
                num_dst,
                edge_src,
                edge_dst,
                edge_weight,
                src_degree,
            });
        }
        blocks_rev.reverse();
        (MiniBatch { blocks: blocks_rev, seeds: unique_seeds }, stats)
    }
}

/// First-occurrence deduplication of `seeds` via the scratch epoch map.
fn dedup_seeds(seeds: &[NodeId], scratch: &mut SamplerScratch, num_nodes: usize) -> Vec<NodeId> {
    let epoch = scratch.begin_epoch(num_nodes);
    let mut unique = Vec::with_capacity(seeds.len());
    for &s in seeds {
        let at = s as usize;
        if scratch.node_stamp[at] != epoch {
            scratch.node_stamp[at] = epoch;
            scratch.node_pos[at] = u32::try_from(unique.len())
                .expect("invariant: unique seed count fits u32 (node ids are u32)");
            unique.push(s);
        }
    }
    unique
}

/// Fisher–Yates over the first `k` positions only: they end up holding a
/// uniform `k`-subset in uniform order, exactly as a full shuffle
/// followed by `truncate(k)` would, at `O(k)` draws instead of `O(n)`.
fn partial_shuffle<T, R: Rng + ?Sized>(items: &mut [T], k: usize, rng: &mut R) {
    let n = items.len();
    for i in 0..k.min(n.saturating_sub(1)) {
        let j = rng.gen_range(i..n);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullGraphAccess;
    use splpg_rng::SeedableRng;
    use splpg_graph::Graph;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(0)
    }

    fn star_plus_path() -> Graph {
        // Node 0 is a hub over 1..=10; path 10-11-12.
        let mut edges: Vec<(NodeId, NodeId)> = (1..=10).map(|i| (0, i)).collect();
        edges.push((10, 11));
        edges.push((11, 12));
        Graph::from_edges(13, &edges).unwrap()
    }

    #[test]
    fn full_sampler_covers_khop() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(2).sample(&a, &[12], &mut rng());
        batch.validate().unwrap();
        // 2 hops from 12: {12, 11, 10}.
        let mut input: Vec<NodeId> = batch.input_nodes().to_vec();
        input.sort_unstable();
        assert_eq!(input, vec![10, 11, 12]);
    }

    #[test]
    fn fanout_caps_neighbors() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::new(vec![Some(3)]).sample(&a, &[0], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.blocks[0].num_edges(), 3);
    }

    #[test]
    fn duplicate_seeds_collapse() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(1).sample(&a, &[5, 5, 0, 5], &mut rng());
        assert_eq!(batch.seeds, vec![5, 0]);
        batch.validate().unwrap();
    }

    #[test]
    fn blocks_chain_correctly() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(3).sample(&a, &[12, 0], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.blocks.len(), 3);
        // The last block's dst prefix is the seeds.
        assert_eq!(batch.blocks[2].dst_ids(), &[12, 0]);
    }

    #[test]
    fn isolated_seed_yields_empty_edges() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(2).sample(&a, &[2], &mut rng());
        batch.validate().unwrap();
        assert_eq!(batch.total_edges(), 0);
        assert_eq!(batch.input_nodes(), &[2]);
    }

    #[test]
    fn degrees_recorded_for_all_srcs() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let batch = NeighborSampler::full(1).sample(&a, &[11], &mut rng());
        let b = &batch.blocks[0];
        for (i, &v) in b.src_ids.iter().enumerate() {
            assert_eq!(b.src_degree[i], g.degree(v) as f32);
        }
    }

    #[test]
    fn paper_sage_shape() {
        let s = NeighborSampler::paper_sage();
        assert_eq!(s.num_layers(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_fanouts_panic() {
        let _ = NeighborSampler::new(vec![]);
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let sampler = NeighborSampler::new(vec![Some(4), Some(2)]);
        let mut scratch = SamplerScratch::new();
        for seed in 0..8u64 {
            let mut r1 = splpg_rng::rngs::StdRng::seed_from_u64(seed);
            let mut r2 = splpg_rng::rngs::StdRng::seed_from_u64(seed);
            let fresh = sampler.sample(&a, &[0, 12, 5], &mut r1);
            let reused = sampler.sample_with(&a, &[0, 12, 5], &mut r2, &mut scratch);
            assert_eq!(fresh.seeds, reused.seeds);
            for (bf, br) in fresh.blocks.iter().zip(&reused.blocks) {
                assert_eq!(bf.src_ids, br.src_ids);
                assert_eq!(bf.edge_src, br.edge_src);
                assert_eq!(bf.edge_dst, br.edge_dst);
                assert_eq!(bf.edge_weight, br.edge_weight);
            }
        }
    }

    #[test]
    fn batches_identical_across_thread_counts() {
        // 600 hub nodes each with 8 spokes: frontier crosses the
        // parallel threshold at hop 1.
        let hubs = 600u32;
        let spokes = 8u32;
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for h in 0..hubs {
            for s in 0..spokes {
                edges.push((h, hubs + h * spokes + s));
            }
        }
        let g = Graph::from_edges((hubs + hubs * spokes) as usize, &edges).unwrap();
        let seeds: Vec<NodeId> = (0..hubs).collect();
        let sampler = NeighborSampler::new(vec![Some(3)]);
        let run = |threads: usize| {
            splpg_par::set_num_threads(threads);
            let a = FullGraphAccess::new(&g);
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(42);
            let batch = sampler.sample(&a, &seeds, &mut r);
            splpg_par::set_num_threads(0);
            batch
        };
        let single = run(1);
        let eight = run(8);
        assert_eq!(single.seeds, eight.seeds);
        for (b1, b8) in single.blocks.iter().zip(&eight.blocks) {
            assert_eq!(b1.src_ids, b8.src_ids);
            assert_eq!(b1.edge_src, b8.edge_src);
            assert_eq!(b1.edge_dst, b8.edge_dst);
            assert_eq!(b1.edge_weight, b8.edge_weight);
        }
    }

    /// Canonical per-layer view of one or more batches for set
    /// comparison: sorted distinct global node ids plus sorted global-id
    /// edge triples (src, dst, exact weight bits).
    type CanonLayer = (Vec<NodeId>, Vec<(NodeId, NodeId, u32)>);

    fn canonical_layers(batches: &[&MiniBatch]) -> Vec<CanonLayer> {
        let layers = batches[0].blocks.len();
        let mut out = Vec::with_capacity(layers);
        for l in 0..layers {
            let mut nodes: Vec<NodeId> = Vec::new();
            let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::new();
            for b in batches {
                let blk = &b.blocks[l];
                nodes.extend_from_slice(&blk.src_ids);
                for e in 0..blk.num_edges() {
                    edges.push((
                        blk.src_ids[blk.edge_src[e] as usize],
                        blk.src_ids[blk.edge_dst[e] as usize],
                        blk.edge_weight[e].to_bits(),
                    ));
                }
            }
            nodes.sort_unstable();
            nodes.dedup();
            edges.sort_unstable();
            edges.dedup();
            out.push((nodes, edges));
        }
        out
    }

    /// Community graph where seeds share many 2-hop neighbors, so the
    /// per-seed-block build performs redundant expansions the
    /// cooperative build provably avoids.
    fn community_graph() -> (Graph, Vec<NodeId>) {
        // 40 communities of 30 members; members link to two of their
        // community's 5 ring-connected cores, cores link across
        // communities in a global cycle.
        let comms = 40u32;
        let cores = 5u32;
        let members = 30u32;
        let n = comms * (cores + members);
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for c in 0..comms {
            let base = c * (cores + members);
            for k in 0..cores {
                edges.push((base + k, base + (k + 1) % cores));
            }
            for m in 0..members {
                let v = base + cores + m;
                edges.push((v, base + m % cores));
                edges.push((v, base + (m + 1) % cores));
            }
            let next = ((c + 1) % comms) * (cores + members);
            edges.push((base, next));
        }
        let g = Graph::from_edges(n as usize, &edges).unwrap();
        // Interleave communities in the seed order so every contiguous
        // seed block spans all of them — the naive per-block build then
        // re-expands each community's cores once per block.
        let seeds: Vec<NodeId> = (0..members)
            .flat_map(|m| (0..comms).map(move |c| c * (cores + members) + cores + m))
            .collect();
        (g, seeds)
    }

    #[test]
    fn cooperative_build_matches_naive_per_seed_blocks() {
        let (g, seeds) = community_graph();
        let a = FullGraphAccess::new(&g);
        let sampler = NeighborSampler::new(vec![Some(2), Some(3)]);
        let run_coop = |threads: usize| {
            splpg_par::set_num_threads(threads);
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(7);
            let mut scratch = SamplerScratch::new();
            let out = sampler.sample_with_stats(&a, &seeds, &mut r, &mut scratch);
            splpg_par::set_num_threads(0);
            out
        };
        let (coop1, stats1) = run_coop(1);
        let (coop4, stats4) = run_coop(4);
        // Bitwise identical cooperative batches at 1 vs 4 threads.
        assert_eq!(stats1, stats4);
        assert_eq!(coop1.seeds, coop4.seeds);
        for (b1, b4) in coop1.blocks.iter().zip(&coop4.blocks) {
            assert_eq!(b1.src_ids, b4.src_ids);
            assert_eq!(b1.num_dst, b4.num_dst);
            assert_eq!(b1.edge_src, b4.edge_src);
            assert_eq!(b1.edge_dst, b4.edge_dst);
            assert_eq!(
                b1.edge_weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                b4.edge_weight.iter().map(|w| w.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                b1.src_degree.iter().map(|d| d.to_bits()).collect::<Vec<_>>(),
                b4.src_degree.iter().map(|d| d.to_bits()).collect::<Vec<_>>()
            );
        }
        coop1.validate().unwrap();
        // Same hop_seed draws → naive per-seed-block union must equal
        // the cooperative batch as per-layer node/edge sets.
        let mut r = splpg_rng::rngs::StdRng::seed_from_u64(7);
        let (naive, naive_stats) = sampler.sample_per_seed_blocks(&a, &seeds, &mut r, 8);
        assert_eq!(naive.len(), 8);
        for nb in &naive {
            nb.validate().unwrap();
        }
        let naive_refs: Vec<&MiniBatch> = naive.iter().collect();
        assert_eq!(canonical_layers(&[&coop1]), canonical_layers(&naive_refs));
        // Cooperation strictly reduces expansions on this graph.
        assert!(
            stats1.expansions < naive_stats.expansions,
            "cooperative {} !< naive {}",
            stats1.expansions,
            naive_stats.expansions
        );
    }

    #[test]
    fn per_seed_block_count_clamps_to_seeds() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let sampler = NeighborSampler::full(1);
        let (batches, _) = sampler.sample_per_seed_blocks(&a, &[0, 12], &mut rng(), 16);
        assert_eq!(batches.len(), 2);
        let (none, stats) = sampler.sample_per_seed_blocks(&a, &[], &mut rng(), 4);
        assert!(none.is_empty());
        assert_eq!(stats, SampleStats::default());
    }

    #[test]
    fn stats_count_distinct_frontier_expansions() {
        let g = star_plus_path();
        let a = FullGraphAccess::new(&g);
        let mut scratch = SamplerScratch::new();
        // Seeds {1, 2} both neighbor only the hub 0: hop 1 expands the 2
        // seeds, hop 2 expands {1, 2, 0} = 3 distinct nodes.
        let (batch, stats) = NeighborSampler::full(2)
            .sample_with_stats(&a, &[1, 2], &mut rng(), &mut scratch);
        batch.validate().unwrap();
        assert_eq!(stats.expansions, 2 + 3);
        assert_eq!(stats.sampled_edges, batch.total_edges() as u64);
    }

    #[test]
    fn partial_shuffle_matches_prefix_distribution() {
        // Every element must be reachable into the prefix.
        let mut seen = [false; 10];
        for trial in 0..200 {
            let mut v: Vec<usize> = (0..10).collect();
            let mut r = splpg_rng::rngs::StdRng::seed_from_u64(trial);
            partial_shuffle(&mut v, 3, &mut r);
            for &x in &v[..3] {
                seen[x] = true;
            }
            // Prefix stays duplicate-free.
            let mut p = v[..3].to_vec();
            p.sort_unstable();
            p.dedup();
            assert_eq!(p.len(), 3);
        }
        assert!(seen.iter().all(|&b| b), "all elements reachable in prefix");
    }
}
