//! Classical link-prediction heuristics (paper Section II-A): similarity
//! scores computed directly from graph structure, no learning.
//!
//! These are the pre-GNN baselines the literature compares against —
//! common neighbors, Jaccard, preferential attachment, Adamic–Adar — and
//! they calibrate the synthetic datasets: a dataset where GNNs cannot beat
//! common neighbors is too easy or too hard to be informative.

use splpg_graph::{Edge, Graph, NodeId};

/// A structural similarity score for node pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// `|N(u) ∩ N(v)|`.
    CommonNeighbors,
    /// `|N(u) ∩ N(v)| / |N(u) ∪ N(v)|`.
    Jaccard,
    /// `d_u * d_v`.
    PreferentialAttachment,
    /// `Σ_{w ∈ N(u) ∩ N(v)} 1 / ln d_w`.
    AdamicAdar,
}

impl Heuristic {
    /// All heuristics, in the order the survey literature lists them.
    pub const ALL: [Heuristic; 4] = [
        Heuristic::CommonNeighbors,
        Heuristic::Jaccard,
        Heuristic::PreferentialAttachment,
        Heuristic::AdamicAdar,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Heuristic::CommonNeighbors => "common-neighbors",
            Heuristic::Jaccard => "jaccard",
            Heuristic::PreferentialAttachment => "preferential-attachment",
            Heuristic::AdamicAdar => "adamic-adar",
        }
    }

    /// Scores the pair `(u, v)` on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn score(&self, graph: &Graph, u: NodeId, v: NodeId) -> f64 {
        match self {
            Heuristic::CommonNeighbors => common_neighbors(graph, u, v).len() as f64,
            Heuristic::Jaccard => {
                let common = common_neighbors(graph, u, v).len() as f64;
                let union =
                    (graph.degree(u) + graph.degree(v)) as f64 - common;
                if union == 0.0 {
                    0.0
                } else {
                    common / union
                }
            }
            Heuristic::PreferentialAttachment => {
                (graph.degree(u) as f64) * (graph.degree(v) as f64)
            }
            Heuristic::AdamicAdar => common_neighbors(graph, u, v)
                .into_iter()
                .map(|w| {
                    let d = graph.degree(w) as f64;
                    if d > 1.0 {
                        1.0 / d.ln()
                    } else {
                        0.0
                    }
                })
                .sum(),
        }
    }

    /// Scores a list of edges.
    pub fn score_edges(&self, graph: &Graph, edges: &[Edge]) -> Vec<f32> {
        edges.iter().map(|e| self.score(graph, e.src, e.dst) as f32).collect()
    }
}

impl std::fmt::Display for Heuristic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sorted intersection of two neighbor lists.
fn common_neighbors(graph: &Graph, u: NodeId, v: NodeId) -> Vec<NodeId> {
    let a = graph.neighbors(u);
    let b = graph.neighbors(v);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_graph::Graph;

    /// 0 and 1 share neighbors {2, 3}; 4 is pendant on 0.
    fn graph() -> Graph {
        Graph::from_edges(5, &[(0, 2), (0, 3), (1, 2), (1, 3), (0, 4)]).unwrap()
    }

    #[test]
    fn common_neighbors_count() {
        let g = graph();
        assert_eq!(Heuristic::CommonNeighbors.score(&g, 0, 1), 2.0);
        assert_eq!(Heuristic::CommonNeighbors.score(&g, 2, 4), 1.0); // share 0
        assert_eq!(Heuristic::CommonNeighbors.score(&g, 3, 4), 1.0);
    }

    #[test]
    fn jaccard_normalizes() {
        let g = graph();
        // N(0) = {2,3,4}, N(1) = {2,3}: common 2, union 3.
        assert!((Heuristic::Jaccard.score(&g, 0, 1) - 2.0 / 3.0).abs() < 1e-12);
        // Isolated-ish pair with no neighbors in common and zero union is 0.
        let g2 = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(Heuristic::Jaccard.score(&g2, 2, 2), 0.0);
    }

    #[test]
    fn preferential_attachment_is_degree_product() {
        let g = graph();
        assert_eq!(Heuristic::PreferentialAttachment.score(&g, 0, 1), 6.0);
    }

    #[test]
    fn adamic_adar_weights_rare_neighbors() {
        let g = graph();
        // Common neighbors of (0,1) are 2 and 3, both degree 2.
        let expect = 2.0 / 2.0f64.ln();
        assert!((Heuristic::AdamicAdar.score(&g, 0, 1) - expect).abs() < 1e-12);
        // Degree-1 common neighbors contribute 0 (ln 1 = 0 guard).
        let chain = Graph::from_edges(3, &[(0, 2), (1, 2)]).unwrap();
        let aa = Heuristic::AdamicAdar.score(&chain, 0, 1);
        assert!((aa - 1.0 / 2.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn heuristics_separate_planted_structure() {
        // On a two-community graph, intra pairs should outscore cross
        // pairs on average for neighborhood-based heuristics.
        let mut edges = Vec::new();
        for c in [0u32, 8] {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    edges.push((c + i, c + j));
                }
            }
        }
        edges.push((0, 8));
        let g = Graph::from_edges(16, &edges).unwrap();
        for h in [Heuristic::CommonNeighbors, Heuristic::Jaccard, Heuristic::AdamicAdar] {
            let intra = h.score(&g, 1, 2);
            let cross = h.score(&g, 1, 9);
            assert!(intra > cross, "{h} failed: intra {intra} <= cross {cross}");
        }
    }

    #[test]
    fn score_edges_vectorized() {
        let g = graph();
        let edges = vec![Edge::new(0, 1), Edge::new(2, 3)];
        let scores = Heuristic::CommonNeighbors.score_edges(&g, &edges);
        assert_eq!(scores.len(), 2);
        assert_eq!(scores[0], 2.0);
        assert_eq!(scores[1], 2.0); // 2 and 3 share {0, 1}
    }

    #[test]
    fn names_and_display() {
        assert_eq!(Heuristic::ALL.len(), 4);
        assert_eq!(Heuristic::Jaccard.to_string(), "jaccard");
    }
}
