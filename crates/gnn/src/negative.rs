use splpg_rng::Rng;
use splpg_graph::{Edge, NodeId};

use crate::{GnnError, GraphAccess};

/// Per-source uniform negative sampler — the paper's training-time scheme
/// (Section II-B): for each positive source node, draw destination nodes
/// uniformly at random from a *sample space*, rejecting actual neighbors.
///
/// The sample space is the crux of the paper's analysis:
///
/// * **global** (all nodes of the original graph) — what centralized
///   training and SpLPG use; SpLPG draws the destination from the union of
///   its own partition and the sparsified remote partitions, whose node
///   sets together cover the entire graph;
/// * **local** (only the worker's partition) — what the vanilla distributed
///   baselines are limited to, causing the accuracy drop of Figure 3.
#[derive(Debug, Clone)]
pub struct PerSourceNegativeSampler {
    space: Vec<NodeId>,
}

impl PerSourceNegativeSampler {
    /// Sampler drawing destinations from an explicit node set.
    ///
    /// # Panics
    ///
    /// Panics if `space` is empty.
    pub fn new(space: Vec<NodeId>) -> Self {
        assert!(!space.is_empty(), "sample space must be non-empty");
        PerSourceNegativeSampler { space }
    }

    /// Sampler whose space is the full `0..num_nodes` universe.
    pub fn global(num_nodes: usize) -> Self {
        Self::new((0..num_nodes as NodeId).collect())
    }

    /// Size of the sample space.
    pub fn space_size(&self) -> usize {
        self.space.len()
    }

    /// Draws one negative destination for `source`, rejecting self-pairs
    /// and existing edges in `access`.
    ///
    /// # Errors
    ///
    /// [`GnnError::NegativeSampling`] if no valid destination is found
    /// within the attempt budget (e.g. the source is connected to the whole
    /// space).
    pub fn sample_destination<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &A,
        source: NodeId,
        rng: &mut R,
    ) -> Result<NodeId, GnnError> {
        let attempts = 20 + 4 * self.space.len();
        for _ in 0..attempts {
            let dst = self.space[rng.gen_range(0..self.space.len())];
            if dst != source && !access.has_edge(source, dst) {
                return Ok(dst);
            }
        }
        Err(GnnError::NegativeSampling(format!(
            "no valid negative destination for source {source} in space of {}",
            self.space.len()
        )))
    }

    /// Draws one negative edge per positive edge, using the positive's
    /// source endpoint (per-source uniform).
    ///
    /// # Errors
    ///
    /// Propagates [`GnnError::NegativeSampling`] from any draw.
    pub fn sample_for_edges<A: GraphAccess, R: Rng + ?Sized>(
        &self,
        access: &A,
        positives: &[Edge],
        rng: &mut R,
    ) -> Result<Vec<Edge>, GnnError> {
        positives
            .iter()
            .map(|e| {
                let dst = self.sample_destination(access, e.src, rng)?;
                Ok(Edge::new(e.src, dst))
            })
            .collect()
    }
}

/// Global-uniform negative sampling over an accessible graph — the paper's
/// evaluation-time scheme: source and destination both uniform over all
/// nodes, rejecting self-pairs and existing edges. Unlike
/// [`splpg_graph::EdgeSplit`]'s split-time generator this works through
/// [`GraphAccess`] so metered accessors price it.
///
/// # Errors
///
/// [`GnnError::NegativeSampling`] if the attempt budget is exhausted.
pub fn global_uniform_negatives<A: GraphAccess, R: Rng + ?Sized>(
    access: &A,
    count: usize,
    rng: &mut R,
) -> Result<Vec<Edge>, GnnError> {
    let n = access.num_nodes();
    if n < 2 {
        return Err(GnnError::NegativeSampling("graph too small".to_string()));
    }
    let mut out = Vec::with_capacity(count);
    let budget = 100 * (count + 10);
    let mut attempts = 0;
    while out.len() < count {
        attempts += 1;
        if attempts > budget {
            return Err(GnnError::NegativeSampling(
                "attempt budget exhausted; graph may be too dense".to_string(),
            ));
        }
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u == v || access.has_edge(u, v) {
            continue;
        }
        out.push(Edge::new(u, v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullGraphAccess;
    use splpg_rng::SeedableRng;
    use splpg_graph::Graph;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(3)
    }

    fn graph() -> Graph {
        Graph::from_edges(8, &[(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)]).unwrap()
    }

    #[test]
    fn destinations_avoid_neighbors_and_self() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        let s = PerSourceNegativeSampler::global(8);
        let mut r = rng();
        for _ in 0..100 {
            let d = s.sample_destination(&a, 1, &mut r).unwrap();
            assert_ne!(d, 1);
            assert!(!g.has_edge(1, d), "destination {d} is a neighbor");
        }
    }

    #[test]
    fn restricted_space_respected() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        // Local space = partition {4..8}.
        let s = PerSourceNegativeSampler::new(vec![4, 5, 6, 7]);
        let mut r = rng();
        for _ in 0..50 {
            let d = s.sample_destination(&a, 4, &mut r).unwrap();
            assert!((4..8).contains(&d));
            assert!(!g.has_edge(4, d));
        }
    }

    #[test]
    fn saturated_source_errors() {
        // Node 0 in a triangle with space {0,1,2}: all non-self nodes are
        // neighbors.
        let g = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]).unwrap();
        let a = FullGraphAccess::new(&g);
        let s = PerSourceNegativeSampler::new(vec![0, 1, 2]);
        assert!(matches!(
            s.sample_destination(&a, 0, &mut rng()),
            Err(GnnError::NegativeSampling(_))
        ));
    }

    #[test]
    fn per_edge_sampling_preserves_sources() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        let s = PerSourceNegativeSampler::global(8);
        let positives = g.edges().to_vec();
        let negs = s.sample_for_edges(&a, &positives, &mut rng()).unwrap();
        assert_eq!(negs.len(), positives.len());
        for (p, n) in positives.iter().zip(&negs) {
            assert!(n.src == p.src || n.dst == p.src, "negative must share the source");
            assert!(!g.has_edge(n.src, n.dst));
        }
    }

    #[test]
    fn global_uniform_rejects_edges() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        let negs = global_uniform_negatives(&a, 30, &mut rng()).unwrap();
        assert_eq!(negs.len(), 30);
        for e in &negs {
            assert!(!g.has_edge(e.src, e.dst));
            assert!(!e.is_loop());
        }
    }

    #[test]
    fn global_uniform_tiny_graph_errors() {
        let g = Graph::empty(1);
        let a = FullGraphAccess::new(&g);
        assert!(global_uniform_negatives(&a, 1, &mut rng()).is_err());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_space_panics() {
        let _ = PerSourceNegativeSampler::new(vec![]);
    }
}
