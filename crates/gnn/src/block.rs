use splpg_graph::NodeId;

/// A bipartite message-flow block for one GNN layer (DGL's "MFG").
///
/// Destination nodes are a **prefix** of the source nodes (every dst also
/// appears as a src at the same index), which lets models read the previous
/// layer's self-embedding as the first `num_dst` rows of the source
/// embedding matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Global ids of source (input) rows; the first `num_dst` entries equal
    /// `dst_ids`.
    pub src_ids: Vec<NodeId>,
    /// Number of destination (output) rows.
    pub num_dst: usize,
    /// Per-edge index into `src_ids` (message sender).
    pub edge_src: Vec<u32>,
    /// Per-edge index into the dst prefix (message receiver).
    pub edge_dst: Vec<u32>,
    /// Per-edge weight (1.0 for unweighted graphs; sparsified subgraphs
    /// carry Spielman–Srivastava weights).
    pub edge_weight: Vec<f32>,
    /// Global (full-graph) degree of each source node, used by GCN's
    /// symmetric normalization.
    pub src_degree: Vec<f32>,
}

impl Block {
    /// Destination global ids (the prefix of `src_ids`).
    pub fn dst_ids(&self) -> &[NodeId] {
        &self.src_ids[..self.num_dst]
    }

    /// Number of source rows.
    pub fn num_src(&self) -> usize {
        self.src_ids.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Checks internal consistency (prefix property, index ranges).
    pub fn validate(&self) -> Result<(), String> {
        if self.num_dst > self.src_ids.len() {
            return Err(format!(
                "num_dst {} exceeds src count {}",
                self.num_dst,
                self.src_ids.len()
            ));
        }
        if self.edge_src.len() != self.edge_dst.len()
            || self.edge_src.len() != self.edge_weight.len()
        {
            return Err("edge arrays must be parallel".to_string());
        }
        if self.src_degree.len() != self.src_ids.len() {
            return Err("one degree per source node required".to_string());
        }
        for &s in &self.edge_src {
            if (s as usize) >= self.src_ids.len() {
                return Err(format!("edge src index {s} out of range"));
            }
        }
        for &d in &self.edge_dst {
            if (d as usize) >= self.num_dst {
                return Err(format!("edge dst index {d} out of range"));
            }
        }
        Ok(())
    }
}

/// A sampled mini-batch: one [`Block`] per GNN layer.
///
/// `blocks[0]` is the outermost (input-side) block whose `src_ids` are the
/// nodes whose raw features must be materialized; `blocks.last()`'s dst
/// prefix equals the seed nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatch {
    /// Per-layer blocks, input side first.
    pub blocks: Vec<Block>,
    /// Seed (output) nodes, equal to the last block's dst prefix.
    pub seeds: Vec<NodeId>,
}

impl MiniBatch {
    /// Global ids whose input features feed the first layer.
    pub fn input_nodes(&self) -> &[NodeId] {
        match self.blocks.first() {
            Some(b) => &b.src_ids,
            None => &self.seeds,
        }
    }

    /// Total edges across blocks (proxy for computational-graph size).
    pub fn total_edges(&self) -> usize {
        self.blocks.iter().map(Block::num_edges).sum()
    }

    /// Validates every block and the seed/prefix correspondence.
    pub fn validate(&self) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            b.validate().map_err(|e| format!("block {i}: {e}"))?;
        }
        if let Some(last) = self.blocks.last() {
            if last.dst_ids() != self.seeds.as_slice() {
                return Err("last block dst prefix must equal seeds".to_string());
            }
        }
        for w in self.blocks.windows(2) {
            // The next block consumes exactly the previous block's outputs.
            if w[1].src_ids != w[0].src_ids[..w[0].num_dst] {
                return Err("consecutive blocks must chain src -> prior dst".to_string());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> Block {
        Block {
            src_ids: vec![7, 9, 3],
            num_dst: 2,
            edge_src: vec![2, 1],
            edge_dst: vec![0, 1],
            edge_weight: vec![1.0, 0.5],
            src_degree: vec![3.0, 2.0, 1.0],
        }
    }

    #[test]
    fn accessors() {
        let b = block();
        assert_eq!(b.dst_ids(), &[7, 9]);
        assert_eq!(b.num_src(), 3);
        assert_eq!(b.num_edges(), 2);
        b.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_indices() {
        let mut b = block();
        b.edge_dst[0] = 5;
        assert!(b.validate().is_err());
        let mut b2 = block();
        b2.edge_src[0] = 9;
        assert!(b2.validate().is_err());
        let mut b3 = block();
        b3.num_dst = 10;
        assert!(b3.validate().is_err());
    }

    #[test]
    fn minibatch_input_nodes() {
        let b = block();
        let mb = MiniBatch { seeds: vec![7, 9], blocks: vec![b] };
        assert_eq!(mb.input_nodes(), &[7, 9, 3]);
        assert_eq!(mb.total_edges(), 2);
        mb.validate().unwrap();
    }

    #[test]
    fn minibatch_seed_mismatch_detected() {
        let b = block();
        let mb = MiniBatch { seeds: vec![7, 3], blocks: vec![b] };
        assert!(mb.validate().is_err());
    }
}
