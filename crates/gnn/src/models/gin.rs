use splpg_rng::{Rng, RngCore};
use splpg_nn::{Binding, Mlp, ParamSet};
use splpg_tensor::{Tape, Tensor, Var};

use crate::models::GnnModel;
use crate::Block;

/// One GIN layer: a learnable-epsilon sum aggregator followed by an MLP.
#[derive(Debug, Clone)]
struct GinLayer {
    mlp: Mlp,
    epsilon: usize,
}

/// Graph isomorphism network (Xu et al., "How powerful are graph neural
/// networks?"), generalized to link prediction à la You et al.:
/// `h'_v = MLP( (1 + eps) h_v + sum_{u in N(v)} w_{uv} h_u )` with a
/// learnable `eps` per layer and a 2-layer MLP update.
///
/// GIN's sum aggregation is the most expressive of the standard
/// aggregators, which makes it a useful stress test for the sparsified
/// negative-sample pipeline (sums are sensitive to missing edges in a way
/// means are not).
#[derive(Debug, Clone)]
pub struct Gin {
    layers: Vec<GinLayer>,
    dropout: f32,
    out_dim: usize,
}

impl Gin {
    /// Registers a GIN with layer sizes `dims` in `params`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        dims: &[usize],
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "gin needs input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| GinLayer {
                mlp: Mlp::new(params, &format!("gin.{i}.mlp"), &[w[0], w[1], w[1]], rng),
                epsilon: params.register(format!("gin.{i}.eps"), Tensor::zeros(1, 1)),
            })
            .collect();
        Gin { layers, dropout, out_dim: *dims.last().expect("non-empty dims") }
    }
}

impl GnnModel for Gin {
    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        blocks: &[Block],
        mut dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut h = input;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            if let Some(rng) = dropout_rng.as_deref_mut() {
                if self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
            // Weighted neighbor sum.
            let msgs = tape.gather_rows(h, &block.edge_src);
            let weighted = tape.scale_rows(msgs, &block.edge_weight);
            let agg = tape.segment_sum(weighted, &block.edge_dst, block.num_dst);
            // (1 + eps) * h_self: broadcast the scalar epsilon by building
            // a per-row factor column from it on the tape.
            let self_idx: Vec<u32> = (0..block.num_dst as u32).collect();
            let h_self = tape.gather_rows(h, &self_idx);
            // eps_col = gather the 1x1 epsilon to [num_dst, 1].
            let eps_rows = vec![0u32; block.num_dst];
            let eps_col = tape.gather_rows(binding.var(layer.epsilon), &eps_rows);
            let eps_term = tape.mul_col_broadcast(h_self, eps_col);
            let self_plus = tape.add(h_self, eps_term); // (1 + eps) h_v
            let combined = tape.add(self_plus, agg);
            h = layer.mlp.forward(tape, binding, combined);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::path_batch;
    use splpg_rng::SeedableRng;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn forward_shapes() {
        let mut params = ParamSet::new();
        let gin = Gin::new(&mut params, &[4, 8, 3], 0.0, &mut rng());
        assert_eq!(gin.num_layers(), 2);
        assert_eq!(gin.output_dim(), 3);
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let out = gin.forward(&mut tape, &binding, x, &batch.blocks, None);
        assert_eq!(tape.value(out).shape(), (1, 3));
    }

    #[test]
    fn sum_aggregation_with_zero_eps() {
        // One dst with two unit-weight neighbors and zero eps: the MLP sees
        // h_v + h_u1 + h_u2 exactly.
        let block = Block {
            src_ids: vec![0, 1, 2],
            num_dst: 1,
            edge_src: vec![1, 2],
            edge_dst: vec![0, 0],
            edge_weight: vec![1.0, 1.0],
            src_degree: vec![2.0, 1.0, 1.0],
        };
        let mut params = ParamSet::new();
        let gin = Gin::new(&mut params, &[1, 1], 0.0, &mut rng());
        // Make the MLP the identity-ish: set first linear to [1], bias 0,
        // second linear [1], bias 0 (mlp dims are [1, 1, 1]).
        for idx in 0..params.len() {
            let name = params.name(idx).to_string();
            let t = params.value_mut(idx);
            if name.contains("weight") {
                for v in t.data_mut() {
                    *v = 1.0;
                }
            } else if name.contains("bias") {
                for v in t.data_mut() {
                    *v = 0.0;
                }
            }
        }
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![5.0, 2.0, 3.0]).unwrap());
        let out = gin.forward(&mut tape, &binding, x, &[block], None);
        // relu((5 + 2 + 3) * 1) * 1 = 10 through the 2-layer identity MLP.
        assert!((tape.value(out).get(0, 0) - 10.0).abs() < 1e-5);
    }

    #[test]
    fn epsilon_receives_gradient() {
        let mut params = ParamSet::new();
        let gin = Gin::new(&mut params, &[4, 4], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(3, 4, |r, c| (r + c) as f32 * 0.2));
        let out = gin.forward(&mut tape, &binding, x, &batch.blocks[..1], None);
        let loss = tape.mean_all(out);
        let mut grads = tape.backward(loss);
        let gs = binding.collect_grads(&params, &mut grads);
        // The epsilon parameter is the last registered one for layer 0.
        let eps_idx = (0..params.len())
            .find(|&i| params.name(i) == "gin.0.eps")
            .expect("eps registered");
        assert!(gs[eps_idx].norm_sq() > 0.0, "epsilon got no gradient");
    }
}
