use splpg_rng::{Rng, RngCore};
use splpg_nn::{glorot_uniform, Binding, ParamSet};
use splpg_tensor::{Tape, Var};

use crate::models::{with_self_loops, GnnModel};
use crate::Block;

/// One GAT layer's parameters (single attention head).
#[derive(Debug, Clone, Copy)]
struct GatLayer {
    weight: usize,
    attn_left: usize,
    attn_right: usize,
    bias: usize,
}

/// Graph attention network (Veličković et al.) with optional multi-head
/// attention.
///
/// Per-head attention logits: `e_ij = LeakyReLU( a_l · (W h_i) + a_r ·
/// (W h_j) )`, softmax-normalized over each destination's in-edges
/// (self-loops included); head outputs are concatenated (each head
/// producing `out_dim / heads` features, the standard GAT arrangement).
/// Edge weights of sparsified graphs are folded into the unnormalized
/// attention as an additive `ln w` bias, which reduces to
/// weight-proportional attention mass.
#[derive(Debug, Clone)]
pub struct Gat {
    /// Per layer, one parameter set per head.
    layers: Vec<Vec<GatLayer>>,
    dropout: f32,
    out_dim: usize,
    negative_slope: f32,
}

impl Gat {
    /// Registers a single-head GAT with layer sizes `dims` in `params`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        dims: &[usize],
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        Self::with_heads(params, dims, 1, dropout, rng)
    }

    /// Registers a multi-head GAT: every layer runs `heads` attention
    /// heads of width `dims[k + 1] / heads` and concatenates them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given, `heads == 0`, or any
    /// output width is not divisible by `heads`.
    pub fn with_heads<R: Rng + ?Sized>(
        params: &mut ParamSet,
        dims: &[usize],
        heads: usize,
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "gat needs input and output dims");
        assert!(heads > 0, "gat needs at least one head");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                assert!(
                    w[1] % heads == 0,
                    "layer {i} output width {} not divisible by {heads} heads",
                    w[1]
                );
                let head_dim = w[1] / heads;
                (0..heads)
                    .map(|h| GatLayer {
                        weight: params.register(
                            format!("gat.{i}.h{h}.weight"),
                            glorot_uniform(w[0], head_dim, rng),
                        ),
                        attn_left: params.register(
                            format!("gat.{i}.h{h}.attn_l"),
                            glorot_uniform(head_dim, 1, rng),
                        ),
                        attn_right: params.register(
                            format!("gat.{i}.h{h}.attn_r"),
                            glorot_uniform(head_dim, 1, rng),
                        ),
                        bias: params.register(
                            format!("gat.{i}.h{h}.bias"),
                            splpg_tensor::Tensor::zeros(1, head_dim),
                        ),
                    })
                    .collect()
            })
            .collect();
        Gat { layers, dropout, out_dim: *dims.last().expect("non-empty dims"), negative_slope: 0.2 }
    }

    /// Heads per layer.
    pub fn heads(&self) -> usize {
        self.layers.first().map_or(1, Vec::len)
    }

    /// Runs one attention head over a block, returning `[num_dst, head_dim]`.
    #[allow(clippy::too_many_arguments)]
    fn head_forward(
        tape: &mut Tape,
        binding: &Binding,
        layer: &GatLayer,
        h: Var,
        e_src: &[u32],
        e_dst: &[u32],
        ln_weight_bias: Option<Var>,
        num_dst: usize,
        negative_slope: f32,
    ) -> Var {
        let z = tape.matmul(h, binding.var(layer.weight));
        let al = tape.matmul(z, binding.var(layer.attn_left)); // [src, 1]
        let ar = tape.matmul(z, binding.var(layer.attn_right));
        // e_ij = LeakyReLU(a_l . z_i + a_r . z_j), i = dst, j = src.
        let term_dst = tape.gather_rows(al, e_dst);
        let term_src = tape.gather_rows(ar, e_src);
        let logits_raw = tape.add(term_dst, term_src);
        let mut logits = tape.leaky_relu(logits_raw, negative_slope);
        if let Some(bias) = ln_weight_bias {
            logits = tape.add(logits, bias);
        }
        let alpha = tape.segment_softmax(logits, e_dst, num_dst);
        let msgs = tape.gather_rows(z, e_src);
        let weighted = tape.mul_col_broadcast(msgs, alpha);
        let agg = tape.segment_sum(weighted, e_dst, num_dst);
        tape.add_bias(agg, binding.var(layer.bias))
    }
}

impl GnnModel for Gat {
    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        blocks: &[Block],
        mut dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut h = input;
        for (i, (heads, block)) in self.layers.iter().zip(blocks).enumerate() {
            if let Some(rng) = dropout_rng.as_deref_mut() {
                if self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
            let (e_src, e_dst, e_w) = with_self_loops(block);
            // Sparsifier edge weights bias the attention mass: e += ln w.
            let ln_weight_bias = if e_w.iter().any(|&w| w != 1.0) {
                let lnw: Vec<f32> = e_w.iter().map(|&w| w.max(1e-12).ln()).collect();
                Some(tape.leaf(
                    splpg_tensor::Tensor::from_vec(lnw.len(), 1, lnw).expect("column shape"),
                ))
            } else {
                None
            };
            let mut head_outputs = heads.iter().map(|layer| {
                Self::head_forward(
                    tape,
                    binding,
                    layer,
                    h,
                    &e_src,
                    &e_dst,
                    ln_weight_bias,
                    block.num_dst,
                    self.negative_slope,
                )
            });
            let first = head_outputs.next().expect("at least one head");
            let mut heads_remaining: Vec<Var> = head_outputs.collect();
            h = first;
            for head in heads_remaining.drain(..) {
                h = tape.concat_cols(h, head);
            }
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

/// One GATv2 layer's parameters.
#[derive(Debug, Clone, Copy)]
struct GatV2Layer {
    weight_left: usize,
    weight_right: usize,
    attn: usize,
    bias: usize,
}

/// GATv2 (Brody et al.): *dynamic* attention that applies the
/// nonlinearity before the attention projection:
/// `e_ij = a · LeakyReLU( W_l h_i + W_r h_j )`, aggregating `W_r h_j`.
#[derive(Debug, Clone)]
pub struct GatV2 {
    layers: Vec<GatV2Layer>,
    dropout: f32,
    out_dim: usize,
    negative_slope: f32,
}

impl GatV2 {
    /// Registers a single-head GATv2 with layer sizes `dims` in `params`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        dims: &[usize],
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "gatv2 needs input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| GatV2Layer {
                weight_left: params
                    .register(format!("gatv2.{i}.w_l"), glorot_uniform(w[0], w[1], rng)),
                weight_right: params
                    .register(format!("gatv2.{i}.w_r"), glorot_uniform(w[0], w[1], rng)),
                attn: params.register(format!("gatv2.{i}.attn"), glorot_uniform(w[1], 1, rng)),
                bias: params
                    .register(format!("gatv2.{i}.bias"), splpg_tensor::Tensor::zeros(1, w[1])),
            })
            .collect();
        GatV2 {
            layers,
            dropout,
            out_dim: *dims.last().expect("non-empty dims"),
            negative_slope: 0.2,
        }
    }
}

impl GnnModel for GatV2 {
    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        blocks: &[Block],
        mut dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut h = input;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            if let Some(rng) = dropout_rng.as_deref_mut() {
                if self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
            let (e_src, e_dst, e_w) = with_self_loops(block);
            let zl = tape.matmul(h, binding.var(layer.weight_left));
            let zr = tape.matmul(h, binding.var(layer.weight_right));
            let s_dst = tape.gather_rows(zl, &e_dst);
            let s_src = tape.gather_rows(zr, &e_src);
            let s = tape.add(s_dst, s_src);
            let act = tape.leaky_relu(s, self.negative_slope);
            let mut logits = tape.matmul(act, binding.var(layer.attn));
            if e_w.iter().any(|&w| w != 1.0) {
                let lnw: Vec<f32> = e_w.iter().map(|&w| w.max(1e-12).ln()).collect();
                let bias = tape.leaf(
                    splpg_tensor::Tensor::from_vec(lnw.len(), 1, lnw).expect("column shape"),
                );
                logits = tape.add(logits, bias);
            }
            let alpha = tape.segment_softmax(logits, &e_dst, block.num_dst);
            let msgs = tape.gather_rows(zr, &e_src);
            let weighted = tape.mul_col_broadcast(msgs, alpha);
            let agg = tape.segment_sum(weighted, &e_dst, block.num_dst);
            h = tape.add_bias(agg, binding.var(layer.bias));
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::path_batch;
    use splpg_rng::SeedableRng;
    use splpg_tensor::Tensor;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(2)
    }

    #[test]
    fn gat_forward_shapes() {
        let mut params = ParamSet::new();
        let gat = Gat::new(&mut params, &[4, 8, 3], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let out = gat.forward(&mut tape, &binding, x, &batch.blocks, None);
        assert_eq!(tape.value(out).shape(), (1, 3));
    }

    #[test]
    fn gatv2_forward_shapes() {
        let mut params = ParamSet::new();
        let gat = GatV2::new(&mut params, &[4, 8, 3], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let out = gat.forward(&mut tape, &binding, x, &batch.blocks, None);
        assert_eq!(tape.value(out).shape(), (1, 3));
    }

    #[test]
    fn gat_attention_sums_to_one_effectively() {
        // With identical inputs everywhere, the aggregated output equals
        // the single message value (attention is a convex combination).
        let mut params = ParamSet::new();
        let gat = Gat::new(&mut params, &[2, 2], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        // Constant features: every z row identical, so output = z row.
        let x = tape.leaf(Tensor::from_fn(3, 2, |_, c| if c == 0 { 1.0 } else { -2.0 }));
        let out = gat.forward(&mut tape, &binding, x, &batch.blocks[..1], None);
        let z = Tensor::from_vec(1, 2, vec![1.0, -2.0])
            .unwrap()
            .matmul(params.value(0));
        for (a, b) in tape.value(out).row(0).iter().zip(z.row(0)) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn gat_gradients_reach_attention_params() {
        let mut params = ParamSet::new();
        let gat = Gat::new(&mut params, &[4, 3], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(3, 4, |r, c| ((r + 1) * (c + 1)) as f32 * 0.1));
        let out = gat.forward(&mut tape, &binding, x, &batch.blocks[..1], None);
        let loss = tape.mean_all(out);
        let mut grads = tape.backward(loss);
        let gs = binding.collect_grads(&params, &mut grads);
        // weight, attn_l, attn_r all participate.
        assert!(gs[0].norm_sq() > 0.0, "weight grad missing");
        // Attention gradients can be tiny but must exist structurally.
        assert_eq!(gs.len(), 4);
    }

    #[test]
    fn gatv2_differs_from_gat_outputs() {
        let mut p1 = ParamSet::new();
        let gat = Gat::new(&mut p1, &[4, 3], 0.0, &mut rng());
        let mut p2 = ParamSet::new();
        let gatv2 = GatV2::new(&mut p2, &[4, 3], 0.0, &mut rng());
        let batch = path_batch();
        let x0 = Tensor::from_fn(3, 4, |r, c| (r as f32 - c as f32) * 0.2);

        let mut tape1 = Tape::new();
        let b1 = p1.bind(&mut tape1);
        let xv1 = tape1.leaf(x0.clone());
        let o1 = gat.forward(&mut tape1, &b1, xv1, &batch.blocks[..1], None);

        let mut tape2 = Tape::new();
        let b2 = p2.bind(&mut tape2);
        let xv2 = tape2.leaf(x0);
        let o2 = gatv2.forward(&mut tape2, &b2, xv2, &batch.blocks[..1], None);

        assert_ne!(tape1.value(o1).data(), tape2.value(o2).data());
    }

    #[test]
    fn weighted_edges_bias_attention() {
        // Two identical neighbors, one with weight 1000x the other: the
        // heavy edge should dominate the attention mass.
        let block = Block {
            src_ids: vec![0, 1, 2],
            num_dst: 1,
            edge_src: vec![1, 2],
            edge_dst: vec![0, 0],
            edge_weight: vec![1000.0, 1.0],
            src_degree: vec![2.0, 1.0, 1.0],
        };
        let mut params = ParamSet::new();
        let gat = Gat::new(&mut params, &[1, 1], 0.0, &mut rng());
        // Freeze the attention to isolate the edge-weight bias: with a_l =
        // a_r = 0 and W = 1 the logits reduce to ln w, so alpha is
        // proportional to the edge weights {1000, 1, 1(self)}.
        params.value_mut(0).data_mut()[0] = 1.0; // weight
        params.value_mut(1).data_mut()[0] = 0.0; // attn_l
        params.value_mut(2).data_mut()[0] = 0.0; // attn_r
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        // Distinct neighbor features so the output reveals the mix.
        let x = tape.leaf(Tensor::from_vec(3, 1, vec![0.0, 10.0, -10.0]).unwrap());
        let out = gat.forward(&mut tape, &binding, x, &[block], None);
        // Expected: (1000*10 + 1*(-10) + 1*0) / 1002 ~= 9.97.
        let val = tape.value(out).get(0, 0);
        assert!(val > 9.5, "attention ignored edge weights: {val}");
    }
}

#[cfg(test)]
mod multihead_tests {
    use super::*;
    use crate::models::test_support::path_batch;
    use crate::models::GnnModel;
    use splpg_rng::SeedableRng;
    use splpg_tensor::{Tape, Tensor};

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(41)
    }

    #[test]
    fn multihead_forward_shapes() {
        let mut params = ParamSet::new();
        let gat = Gat::with_heads(&mut params, &[4, 8, 4], 4, 0.0, &mut rng());
        assert_eq!(gat.heads(), 4);
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let out = gat.forward(&mut tape, &binding, x, &batch.blocks, None);
        assert_eq!(tape.value(out).shape(), (1, 4));
    }

    #[test]
    fn single_head_is_default() {
        let mut params = ParamSet::new();
        let gat = Gat::new(&mut params, &[4, 4], 0.0, &mut rng());
        assert_eq!(gat.heads(), 1);
    }

    #[test]
    fn multihead_differs_from_single_head() {
        let batch = path_batch();
        let x0 = Tensor::from_fn(3, 4, |r, c| (r as f32 + 1.0) * (c as f32 - 1.5) * 0.1);
        let run = |heads: usize| {
            let mut params = ParamSet::new();
            let gat = Gat::with_heads(&mut params, &[4, 4], heads, 0.0, &mut rng());
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let x = tape.leaf(x0.clone());
            let out = gat.forward(&mut tape, &binding, x, &batch.blocks[..1], None);
            tape.value(out).clone()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn multihead_gradients_reach_every_head() {
        let mut params = ParamSet::new();
        let gat = Gat::with_heads(&mut params, &[4, 6], 2, 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(3, 4, |r, c| ((r * 4 + c) as f32) * 0.1));
        let out = gat.forward(&mut tape, &binding, x, &batch.blocks[..1], None);
        let loss = tape.mean_all(out);
        let mut grads = tape.backward(loss);
        let gs = binding.collect_grads(&params, &mut grads);
        // Both heads' weight matrices (indices 0 and 4) must receive signal.
        assert!(gs[0].norm_sq() > 0.0, "head 0 weight got no gradient");
        assert!(gs[4].norm_sq() > 0.0, "head 1 weight got no gradient");
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn indivisible_width_panics() {
        let mut params = ParamSet::new();
        let _ = Gat::with_heads(&mut params, &[4, 5], 2, 0.0, &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least one head")]
    fn zero_heads_panics() {
        let mut params = ParamSet::new();
        let _ = Gat::with_heads(&mut params, &[4, 4], 0, 0.0, &mut rng());
    }
}
