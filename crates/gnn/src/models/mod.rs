//! GNN model implementations: GCN, GraphSAGE, GAT, GATv2.
//!
//! Every model implements [`GnnModel`]: a layered forward pass over
//! message-flow [`Block`]s following the neighborhood-aggregation update of
//! Eq. (1) in the paper. Models register their parameters in a shared
//! [`splpg_nn::ParamSet`], so the distributed engine can flatten/average
//! them uniformly.

mod gat;
mod gcn;
mod gin;
mod sage;

pub use gat::{Gat, GatV2};
pub use gcn::Gcn;
pub use gin::Gin;
pub use sage::GraphSage;

use splpg_rng::RngCore;
use splpg_nn::Binding;
use splpg_tensor::{Tape, Var};

use crate::Block;

/// A layered GNN encoder producing seed-node embeddings from block input
/// features.
pub trait GnnModel {
    /// Number of message-passing layers (blocks consumed per forward).
    fn num_layers(&self) -> usize;

    /// Embedding dimensionality of the output.
    fn output_dim(&self) -> usize;

    /// Runs the forward pass.
    ///
    /// `input` must be the `[num_input_nodes, in_dim]` features of
    /// `blocks[0].src_ids`; the result is `[num_seeds, output_dim]` for the
    /// last block's dst prefix. `dropout_rng` enables dropout (training
    /// mode) when provided.
    ///
    /// # Panics
    ///
    /// Panics if `blocks.len() != num_layers()` or shapes are inconsistent.
    fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        blocks: &[Block],
        dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var;
}

/// Appends a self-loop edge `(i -> i)` for every destination to the block's
/// edge lists. GCN/GAT-style layers need each node to attend to itself;
/// the dst prefix property guarantees `i` is a valid source index.
///
/// Returns `(edge_src, edge_dst, edge_weight)` with self-loops of weight 1.
pub(crate) fn with_self_loops(block: &Block) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
    let extra = block.num_dst;
    let mut src = Vec::with_capacity(block.edge_src.len() + extra);
    let mut dst = Vec::with_capacity(src.capacity());
    let mut w = Vec::with_capacity(src.capacity());
    src.extend_from_slice(&block.edge_src);
    dst.extend_from_slice(&block.edge_dst);
    w.extend_from_slice(&block.edge_weight);
    for i in 0..extra as u32 {
        src.push(i);
        dst.push(i);
        w.push(1.0);
    }
    (src, dst, w)
}

#[cfg(test)]
pub(crate) mod test_support {
    use splpg_graph::NodeId;

    use crate::Block;

    /// A tiny two-layer batch over a path 0-1-2 seeded at node 0.
    pub fn path_batch() -> crate::MiniBatch {
        // Layer 2 (output): seeds {0}, srcs {0, 1}.
        let b2 = Block {
            src_ids: vec![0, 1],
            num_dst: 1,
            edge_src: vec![1],
            edge_dst: vec![0],
            edge_weight: vec![1.0],
            src_degree: vec![1.0, 2.0],
        };
        // Layer 1 (input): dsts {0, 1}, srcs {0, 1, 2}.
        let b1 = Block {
            src_ids: vec![0, 1, 2],
            num_dst: 2,
            edge_src: vec![1, 0, 2],
            edge_dst: vec![0, 1, 1],
            edge_weight: vec![1.0, 1.0, 1.0],
            src_degree: vec![1.0, 2.0, 1.0],
        };
        let mb = crate::MiniBatch { blocks: vec![b1, b2], seeds: vec![0 as NodeId] };
        mb.validate().unwrap();
        mb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_loops_appended_per_dst() {
        let batch = test_support::path_batch();
        let b = &batch.blocks[0];
        let (src, dst, w) = with_self_loops(b);
        assert_eq!(src.len(), b.num_edges() + b.num_dst);
        // The appended loops are (0,0) and (1,1) with weight 1.
        assert_eq!(&src[b.num_edges()..], &[0, 1]);
        assert_eq!(&dst[b.num_edges()..], &[0, 1]);
        assert!(w[b.num_edges()..].iter().all(|&x| x == 1.0));
    }
}
