use splpg_rng::{Rng, RngCore};
use splpg_nn::{Binding, Linear, ParamSet};
use splpg_tensor::{Tape, Var};

use crate::models::{with_self_loops, GnnModel};
use crate::Block;

/// Graph convolutional network (Kipf & Welling) with symmetric
/// normalization and self-loops.
///
/// Layer update: `H' = ReLU( Â H W + b )` with
/// `Â_{ij} = w_{ij} / sqrt((d_i + 1)(d_j + 1))` — degrees come from the
/// full graph (recorded per block by the sampler), matching DGL's
/// `GraphConv(norm='both')` on self-loop-augmented graphs. Edge weights
/// `w_{ij}` honour sparsified subgraphs.
///
/// The paper trains a 3-layer GCN with hidden size 256 and full
/// neighborhoods.
#[derive(Debug, Clone)]
pub struct Gcn {
    layers: Vec<Linear>,
    dropout: f32,
    out_dim: usize,
}

impl Gcn {
    /// Registers a GCN with layer sizes `dims` (input + one entry per
    /// layer output) in `params`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        dims: &[usize],
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "gcn needs input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("gcn.{i}"), w[0], w[1], rng))
            .collect();
        Gcn { layers, dropout, out_dim: *dims.last().expect("non-empty dims") }
    }

    fn propagate(tape: &mut Tape, h_src: Var, block: &Block) -> Var {
        let (e_src, e_dst, e_w) = with_self_loops(block);
        // Symmetric normalization with self-loop-adjusted degrees.
        let norm: Vec<f32> = e_src
            .iter()
            .zip(&e_dst)
            .zip(&e_w)
            .map(|((&s, &d), &w)| {
                let ds = block.src_degree[s as usize] + 1.0;
                let dd = block.src_degree[d as usize] + 1.0;
                w / (ds * dd).sqrt()
            })
            .collect();
        let msgs = tape.gather_rows(h_src, &e_src);
        let scaled = tape.scale_rows(msgs, &norm);
        tape.segment_sum(scaled, &e_dst, block.num_dst)
    }
}

impl GnnModel for Gcn {
    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        blocks: &[Block],
        mut dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut h = input;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            if let Some(rng) = dropout_rng.as_deref_mut() {
                if self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
            let agg = Self::propagate(tape, h, block);
            h = layer.forward(tape, binding, agg);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::path_batch;
    use splpg_rng::SeedableRng;
    use splpg_tensor::Tensor;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(0)
    }

    #[test]
    fn forward_shapes() {
        let mut params = ParamSet::new();
        let gcn = Gcn::new(&mut params, &[4, 8, 3], 0.0, &mut rng());
        assert_eq!(gcn.num_layers(), 2);
        assert_eq!(gcn.output_dim(), 3);
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let out = gcn.forward(&mut tape, &binding, x, &batch.blocks, None);
        assert_eq!(tape.value(out).shape(), (1, 3));
    }

    #[test]
    fn identical_inputs_give_identical_embeddings() {
        // Symmetric star: both leaves of a 2-leaf star get equal embeddings.
        let block = Block {
            src_ids: vec![1, 2, 0],
            num_dst: 2,
            edge_src: vec![2, 2],
            edge_dst: vec![0, 1],
            edge_weight: vec![1.0, 1.0],
            src_degree: vec![1.0, 1.0, 2.0],
        };
        let mut params = ParamSet::new();
        let gcn = Gcn::new(&mut params, &[2, 2], 0.0, &mut rng());
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_vec(3, 2, vec![1.0, 2.0, 1.0, 2.0, 5.0, -1.0]).unwrap());
        let out = gcn.forward(&mut tape, &binding, x, &[block], None);
        let v = tape.value(out);
        assert_eq!(v.row(0), v.row(1));
    }

    #[test]
    fn gradients_reach_all_layers() {
        let mut params = ParamSet::new();
        // Seed chosen so the ReLU path stays live through both hops.
        let mut r = splpg_rng::rngs::StdRng::seed_from_u64(1);
        let gcn = Gcn::new(&mut params, &[4, 6, 2], 0.0, &mut r);
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(3, 4, |r, c| (r + c) as f32 * 0.3 - 0.5));
        let out = gcn.forward(&mut tape, &binding, x, &batch.blocks, None);
        let loss = tape.mean_all(out);
        let mut grads = tape.backward(loss);
        let gs = binding.collect_grads(&params, &mut grads);
        // First layer's weight must receive signal through two hops.
        assert!(gs[0].norm_sq() > 0.0, "no gradient to first layer");
    }

    #[test]
    fn dropout_only_in_training_mode() {
        let mut params = ParamSet::new();
        let gcn = Gcn::new(&mut params, &[4, 2], 0.9, &mut rng());
        let batch = path_batch();
        let run = |train: bool| {
            let mut tape = Tape::new();
            let binding = params.bind(&mut tape);
            let x = tape.leaf(Tensor::ones(3, 4));
            let mut r = rng();
            let d: Option<&mut dyn RngCore> = if train { Some(&mut r) } else { None };
            let out = gcn.forward(&mut tape, &binding, x, &batch.blocks[..1], d);
            tape.value(out).clone()
        };
        // Eval mode is deterministic.
        assert_eq!(run(false), run(false));
    }

    #[test]
    #[should_panic(expected = "one block per layer")]
    fn wrong_block_count_panics() {
        let mut params = ParamSet::new();
        let gcn = Gcn::new(&mut params, &[4, 4, 4], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let _ = gcn.forward(&mut tape, &binding, x, &batch.blocks[..1], None);
    }
}
