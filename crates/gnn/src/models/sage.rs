use splpg_rng::{Rng, RngCore};
use splpg_nn::{Binding, Linear, ParamSet};
use splpg_tensor::{Tape, Var};

use crate::models::GnnModel;
use crate::Block;

/// GraphSAGE (Hamilton et al.) with the mean aggregator.
///
/// Layer update: `h'_v = ReLU( W · [h_v || mean_{u in N(v)} w_{uv} h_u] +
/// b )`. The mean is weight-normalized so sparsified subgraphs (whose edges
/// carry Spielman–Srivastava weights) aggregate consistently. Zero-degree
/// destinations aggregate a zero vector.
///
/// The paper's representative model: 3 layers, hidden 256, fanouts 25/10/5.
#[derive(Debug, Clone)]
pub struct GraphSage {
    layers: Vec<Linear>,
    dropout: f32,
    out_dim: usize,
}

impl GraphSage {
    /// Registers a GraphSAGE model with layer sizes `dims` in `params`.
    /// Each layer's linear transform takes the concatenated
    /// `[self || neighbor-mean]` (twice the input width).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        dims: &[usize],
        dropout: f32,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "graphsage needs input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(params, &format!("sage.{i}"), 2 * w[0], w[1], rng))
            .collect();
        GraphSage { layers, dropout, out_dim: *dims.last().expect("non-empty dims") }
    }

    /// Weighted neighbor mean for one block.
    fn aggregate(tape: &mut Tape, h_src: Var, block: &Block) -> Var {
        // Weighted sum of neighbor messages per destination...
        let msgs = tape.gather_rows(h_src, &block.edge_src);
        let weighted = tape.scale_rows(msgs, &block.edge_weight);
        let summed = tape.segment_sum(weighted, &block.edge_dst, block.num_dst);
        // ...normalized by each destination's received weight.
        let mut weight_sum = vec![0.0f32; block.num_dst];
        for (&d, &w) in block.edge_dst.iter().zip(&block.edge_weight) {
            weight_sum[d as usize] += w;
        }
        let inv: Vec<f32> =
            weight_sum.iter().map(|&s| if s > 0.0 { 1.0 / s } else { 0.0 }).collect();
        tape.scale_rows(summed, &inv)
    }
}

impl GnnModel for GraphSage {
    fn num_layers(&self) -> usize {
        self.layers.len()
    }

    fn output_dim(&self) -> usize {
        self.out_dim
    }

    fn forward(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        blocks: &[Block],
        mut dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        assert_eq!(blocks.len(), self.layers.len(), "one block per layer");
        let mut h = input;
        for (i, (layer, block)) in self.layers.iter().zip(blocks).enumerate() {
            if let Some(rng) = dropout_rng.as_deref_mut() {
                if self.dropout > 0.0 {
                    h = tape.dropout(h, self.dropout, rng);
                }
            }
            let h_neigh = Self::aggregate(tape, h, block);
            let self_idx: Vec<u32> = (0..block.num_dst as u32).collect();
            let h_self = tape.gather_rows(h, &self_idx);
            let cat = tape.concat_cols(h_self, h_neigh);
            h = layer.forward(tape, binding, cat);
            if i + 1 < self.layers.len() {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::path_batch;
    use splpg_rng::SeedableRng;
    use splpg_tensor::Tensor;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn forward_shapes() {
        let mut params = ParamSet::new();
        let sage = GraphSage::new(&mut params, &[4, 8, 3], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        let out = sage.forward(&mut tape, &binding, x, &batch.blocks, None);
        assert_eq!(tape.value(out).shape(), (1, 3));
    }

    #[test]
    fn mean_aggregation_exact_on_known_block() {
        // One dst (index 0) with two neighbors carrying features [2] and
        // [4]: the weighted mean with unit weights is [3].
        let block = Block {
            src_ids: vec![0, 1, 2],
            num_dst: 1,
            edge_src: vec![1, 2],
            edge_dst: vec![0, 0],
            edge_weight: vec![1.0, 1.0],
            src_degree: vec![2.0, 1.0, 1.0],
        };
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(3, 1, vec![10.0, 2.0, 4.0]).unwrap());
        let agg = GraphSage::aggregate(&mut tape, h, &block);
        assert_eq!(tape.value(agg).data(), &[3.0]);
    }

    #[test]
    fn weighted_mean_respects_edge_weights() {
        let block = Block {
            src_ids: vec![0, 1, 2],
            num_dst: 1,
            edge_src: vec![1, 2],
            edge_dst: vec![0, 0],
            edge_weight: vec![3.0, 1.0],
            src_degree: vec![2.0, 1.0, 1.0],
        };
        let mut tape = Tape::new();
        let h = tape.leaf(Tensor::from_vec(3, 1, vec![0.0, 2.0, 6.0]).unwrap());
        let agg = GraphSage::aggregate(&mut tape, h, &block);
        // (3*2 + 1*6) / 4 = 3
        assert_eq!(tape.value(agg).data(), &[3.0]);
    }

    #[test]
    fn isolated_destination_gets_zero_neighborhood() {
        let block = Block {
            src_ids: vec![5],
            num_dst: 1,
            edge_src: vec![],
            edge_dst: vec![],
            edge_weight: vec![],
            src_degree: vec![0.0],
        };
        let mut params = ParamSet::new();
        let sage = GraphSage::new(&mut params, &[2, 2], 0.0, &mut rng());
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_vec(1, 2, vec![1.0, -1.0]).unwrap());
        let out = sage.forward(&mut tape, &binding, x, &[block], None);
        // Must not be NaN (no division by zero).
        assert!(tape.value(out).data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gradients_flow_through_two_layers() {
        let mut params = ParamSet::new();
        let sage = GraphSage::new(&mut params, &[4, 6, 2], 0.0, &mut rng());
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.1));
        let out = sage.forward(&mut tape, &binding, x, &batch.blocks, None);
        let loss = tape.mean_all(out);
        let mut grads = tape.backward(loss);
        let gs = binding.collect_grads(&params, &mut grads);
        assert!(gs[0].norm_sq() > 0.0);
    }
}
