//! Link-prediction evaluation metrics.
//!
//! The paper reports **Hits@100** following the OGB protocol: a positive
//! test edge counts as a hit if its score ranks above the K-th highest
//! negative score. AUC is provided as a secondary metric.

use crate::GnnError;

/// Hits@K: fraction of positive scores strictly greater than the K-th
/// largest negative score. With fewer than `k` negatives, every positive
/// above the minimum negative counts (degenerate but well-defined).
///
/// # Errors
///
/// [`GnnError::EmptyInput`] if either list is empty or `k == 0`.
///
/// # Examples
///
/// ```
/// use splpg_gnn::metrics::hits_at_k;
/// let pos = [0.9, 0.5, 0.1];
/// let neg = [0.8, 0.4, 0.3, 0.2];
/// // K = 2: threshold is the 2nd-highest negative (0.4).
/// let h = hits_at_k(&pos, &neg, 2).unwrap();
/// assert!((h - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn hits_at_k(pos_scores: &[f32], neg_scores: &[f32], k: usize) -> Result<f64, GnnError> {
    if pos_scores.is_empty() || neg_scores.is_empty() {
        return Err(GnnError::EmptyInput("hits@k needs positive and negative scores".into()));
    }
    if k == 0 {
        return Err(GnnError::EmptyInput("k must be positive".into()));
    }
    let mut neg = neg_scores.to_vec();
    neg.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let threshold = neg[k.min(neg.len()) - 1];
    let hits = pos_scores.iter().filter(|&&s| s > threshold).count();
    Ok(hits as f64 / pos_scores.len() as f64)
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) estimator,
/// with tie correction.
///
/// # Errors
///
/// [`GnnError::EmptyInput`] if either list is empty.
pub fn auc(pos_scores: &[f32], neg_scores: &[f32]) -> Result<f64, GnnError> {
    if pos_scores.is_empty() || neg_scores.is_empty() {
        return Err(GnnError::EmptyInput("auc needs positive and negative scores".into()));
    }
    let mut all: Vec<(f32, bool)> = pos_scores
        .iter()
        .map(|&s| (s, true))
        .chain(neg_scores.iter().map(|&s| (s, false)))
        .collect();
    all.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    // Average ranks over tie groups.
    let n = all.len();
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && all[j + 1].0 == all[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for item in &all[i..=j] {
            if item.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let np = pos_scores.len() as f64;
    let nn = neg_scores.len() as f64;
    Ok((rank_sum_pos - np * (np + 1.0) / 2.0) / (np * nn))
}

/// Mean reciprocal rank: for each positive, its rank among `{positive} ∪
/// negatives` by descending score (rank 1 = above every negative);
/// the metric is the mean of `1/rank`. Ties rank the positive below the
/// tied negatives (pessimistic, matching OGB's evaluator).
///
/// # Errors
///
/// [`GnnError::EmptyInput`] if either list is empty.
pub fn mrr(pos_scores: &[f32], neg_scores: &[f32]) -> Result<f64, GnnError> {
    if pos_scores.is_empty() || neg_scores.is_empty() {
        return Err(GnnError::EmptyInput("mrr needs positive and negative scores".into()));
    }
    let mut neg = neg_scores.to_vec();
    neg.sort_unstable_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let total: f64 = pos_scores
        .iter()
        .map(|&p| {
            // Number of negatives with score >= p (pessimistic ties).
            let above = neg.partition_point(|&n| n >= p);
            1.0 / (above as f64 + 1.0)
        })
        .sum();
    Ok(total / pos_scores.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation() {
        let pos = [1.0, 0.9, 0.8];
        let neg = [0.1, 0.2, 0.3];
        assert_eq!(hits_at_k(&pos, &neg, 1).unwrap(), 1.0);
        assert_eq!(auc(&pos, &neg).unwrap(), 1.0);
    }

    #[test]
    fn inverted_separation() {
        let pos = [0.1, 0.2];
        let neg = [0.8, 0.9];
        assert_eq!(hits_at_k(&pos, &neg, 1).unwrap(), 0.0);
        assert_eq!(auc(&pos, &neg).unwrap(), 0.0);
    }

    #[test]
    fn random_scores_auc_half() {
        use splpg_rng::{Rng, SeedableRng};
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let pos: Vec<f32> = (0..2000).map(|_| rng.gen()).collect();
        let neg: Vec<f32> = (0..2000).map(|_| rng.gen()).collect();
        let a = auc(&pos, &neg).unwrap();
        assert!((a - 0.5).abs() < 0.03, "auc {a}");
    }

    #[test]
    fn hits_threshold_behaviour() {
        let pos = [0.45, 0.55];
        let neg = [0.6, 0.5, 0.4];
        // K = 1: threshold 0.6 -> 0 hits.
        assert_eq!(hits_at_k(&pos, &neg, 1).unwrap(), 0.0);
        // K = 2: threshold 0.5 -> one hit (0.55).
        assert_eq!(hits_at_k(&pos, &neg, 2).unwrap(), 0.5);
        // K = 3: threshold 0.4 -> both hit.
        assert_eq!(hits_at_k(&pos, &neg, 3).unwrap(), 1.0);
    }

    #[test]
    fn k_larger_than_negatives_uses_min() {
        // With k beyond the negative count the threshold degrades to the
        // minimum negative, so both positives (0.45, 0.55 > 0.4) hit.
        let pos = [0.45, 0.55];
        let neg = [0.5, 0.4];
        assert_eq!(hits_at_k(&pos, &neg, 100).unwrap(), 1.0);
    }

    #[test]
    fn ties_are_averaged_in_auc() {
        // All scores equal: AUC must be exactly 0.5.
        let pos = [0.5, 0.5];
        let neg = [0.5, 0.5, 0.5];
        assert!((auc(&pos, &neg).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(hits_at_k(&[], &[0.1], 1).is_err());
        assert!(hits_at_k(&[0.1], &[], 1).is_err());
        assert!(hits_at_k(&[0.1], &[0.1], 0).is_err());
        assert!(auc(&[], &[0.1]).is_err());
        assert!(mrr(&[], &[0.1]).is_err());
    }

    #[test]
    fn mrr_known_ranks() {
        // Positive 0.9 ranks 1 (no negative above); positive 0.25 has two
        // negatives above -> rank 3.
        let pos = [0.9, 0.25];
        let neg = [0.5, 0.3, 0.1];
        let expect = (1.0 + 1.0 / 3.0) / 2.0;
        assert!((mrr(&pos, &neg).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn mrr_ties_are_pessimistic() {
        let pos = [0.5];
        let neg = [0.5, 0.1];
        // The tied negative counts as above -> rank 2.
        assert!((mrr(&pos, &neg).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mrr_perfect_is_one() {
        assert_eq!(mrr(&[0.9, 0.8], &[0.1, 0.2]).unwrap(), 1.0);
    }
}
