//! Full-graph inference: compute embeddings for *every* node with one
//! layered pass instead of per-seed sampling.
//!
//! Evaluation repeatedly scores held-out edges; sampling a fresh
//! computational graph per edge chunk recomputes shared neighborhoods many
//! times. For full-neighbor evaluation the layered pass is equivalent and
//! asymptotically cheaper: layer `k` is computed once for all nodes, then
//! reused (what DGL calls "offline inference").

use splpg_graph::{Edge, Graph, NodeId};
use splpg_nn::ParamSet;
use splpg_tensor::{Tape, Tensor};

use crate::{Block, EdgePredictor, GnnModel, LinkPredictor};

/// Builds the single full-graph block (every node is both src and dst,
/// every edge present in both directions, plus recorded degrees).
fn full_block(graph: &Graph) -> Block {
    let n = graph.num_nodes();
    let mut edge_src = Vec::with_capacity(2 * graph.num_edges());
    let mut edge_dst = Vec::with_capacity(2 * graph.num_edges());
    let mut edge_weight = Vec::with_capacity(2 * graph.num_edges());
    for v in 0..n as NodeId {
        let nbrs = graph.neighbors(v);
        match graph.neighbor_weights(v) {
            Some(ws) => {
                for (&u, &w) in nbrs.iter().zip(ws) {
                    edge_src.push(u);
                    edge_dst.push(v);
                    edge_weight.push(w);
                }
            }
            None => {
                for &u in nbrs {
                    edge_src.push(u);
                    edge_dst.push(v);
                    edge_weight.push(1.0);
                }
            }
        }
    }
    Block {
        src_ids: (0..n as NodeId).collect(),
        num_dst: n,
        edge_src,
        edge_dst,
        edge_weight,
        src_degree: (0..n as NodeId).map(|v| graph.degree(v) as f32).collect(),
    }
}

/// Computes the `[num_nodes, output_dim]` embedding matrix of every node
/// under full neighborhoods (evaluation mode, no dropout).
///
/// Equivalent to running the model with a full-neighbor sampler seeded at
/// every node at once.
pub fn infer_all_embeddings(
    model: &dyn GnnModel,
    params: &ParamSet,
    graph: &Graph,
    features: &Tensor,
) -> Tensor {
    let mut tape = Tape::new();
    infer_all_embeddings_with(&mut tape, model, params, graph, features)
}

/// [`infer_all_embeddings`] on a caller-provided tape, reset in place —
/// repeated evaluation passes reuse one arena instead of reallocating the
/// full-graph working set each time.
pub fn infer_all_embeddings_with(
    tape: &mut Tape,
    model: &dyn GnnModel,
    params: &ParamSet,
    graph: &Graph,
    features: &Tensor,
) -> Tensor {
    let block = full_block(graph);
    let blocks = vec![block; model.num_layers()];
    tape.reset();
    let binding = params.bind(tape);
    let x = tape.leaf_copy(features);
    let out = model.forward(tape, &binding, x, &blocks, None);
    tape.value(out).clone()
}

/// Scores `edges` from a precomputed embedding matrix.
pub fn score_from_embeddings(
    predictor: &EdgePredictor,
    params: &ParamSet,
    embeddings: &Tensor,
    edges: &[Edge],
) -> Vec<f32> {
    let mut tape = Tape::new();
    score_from_embeddings_with(&mut tape, predictor, params, embeddings, edges)
}

/// [`score_from_embeddings`] on a caller-provided tape, reset in place.
pub fn score_from_embeddings_with(
    tape: &mut Tape,
    predictor: &EdgePredictor,
    params: &ParamSet,
    embeddings: &Tensor,
    edges: &[Edge],
) -> Vec<f32> {
    tape.reset();
    let binding = params.bind(tape);
    let emb = tape.leaf_copy(embeddings);
    let us: Vec<u32> = edges.iter().map(|e| e.src).collect();
    let vs: Vec<u32> = edges.iter().map(|e| e.dst).collect();
    let h_u = tape.gather_rows(emb, &us);
    let h_v = tape.gather_rows(emb, &vs);
    let logits = predictor.score(tape, &binding, h_u, h_v);
    tape.value(logits).data().to_vec()
}

/// Convenience: full-graph evaluation of a [`LinkPredictor`].
pub fn score_edges_full_graph(
    model: &LinkPredictor,
    params: &ParamSet,
    graph: &Graph,
    features: &Tensor,
    edges: &[Edge],
) -> Vec<f32> {
    let embeddings = infer_all_embeddings(model.gnn(), params, graph, features);
    score_from_embeddings(model.predictor(), params, &embeddings, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{ModelKind, TrainConfig};
    use crate::{FullFeatureAccess, FullGraphAccess, NeighborSampler};
    use splpg_rng::SeedableRng;
    use splpg_graph::FeatureMatrix;

    fn fixture() -> (Graph, FeatureMatrix) {
        let g = Graph::from_edges(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (0, 7), (1, 5)],
        )
        .unwrap();
        let f = FeatureMatrix::from_rows(
            (0..8).map(|i| (0..4).map(|d| ((i + d) % 3) as f32 - 1.0).collect()).collect(),
        )
        .unwrap();
        (g, f)
    }

    fn feature_tensor(f: &FeatureMatrix) -> Tensor {
        Tensor::from_vec(f.num_rows(), f.dim(), f.as_slice().to_vec()).unwrap()
    }

    #[test]
    fn full_block_is_symmetric_and_complete() {
        let (g, _) = fixture();
        let b = full_block(&g);
        b.validate().unwrap();
        assert_eq!(b.num_src(), 8);
        assert_eq!(b.num_edges(), 2 * g.num_edges());
    }

    #[test]
    fn matches_sampled_full_neighbor_evaluation() {
        // The layered full-graph pass must agree with the per-seed
        // full-neighbor sampler exactly (both see complete neighborhoods).
        let (g, f) = fixture();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let config = TrainConfig { layers: 2, hidden: 8, ..TrainConfig::default() };
        let mut params = ParamSet::new();
        let model = config.build_model(ModelKind::Gcn, f.dim(), &mut params, &mut rng);
        let edges = vec![Edge::new(0, 3), Edge::new(2, 6), Edge::new(1, 7)];

        let fast = score_edges_full_graph(&model, &params, &g, &feature_tensor(&f), &edges);

        let ga = FullGraphAccess::new(&g);
        let mut fa = FullFeatureAccess::new(&f);
        let mut r = splpg_rng::rngs::StdRng::seed_from_u64(1);
        let mut tape = Tape::new();
        let mut scratch = crate::SamplerScratch::new();
        let slow = crate::trainer::score_edges(
            &model,
            &params,
            &ga,
            &mut fa,
            &NeighborSampler::full(2),
            &edges,
            &mut r,
            &mut tape,
            &mut scratch,
        );
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-4, "full-graph {a} vs sampled {b}");
        }
    }

    #[test]
    fn embeddings_shape() {
        let (g, f) = fixture();
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(2);
        let config = TrainConfig { layers: 2, hidden: 6, ..TrainConfig::default() };
        let mut params = ParamSet::new();
        let model = config.build_model(ModelKind::GraphSage, f.dim(), &mut params, &mut rng);
        let emb = infer_all_embeddings(model.gnn(), &params, &g, &feature_tensor(&f));
        assert_eq!(emb.shape(), (8, 6));
    }

    #[test]
    fn works_for_every_architecture() {
        let (g, f) = fixture();
        for kind in ModelKind::ALL {
            let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(3);
            let config = TrainConfig { layers: 2, hidden: 4, ..TrainConfig::default() };
            let mut params = ParamSet::new();
            let model = config.build_model(kind, f.dim(), &mut params, &mut rng);
            let emb = infer_all_embeddings(model.gnn(), &params, &g, &feature_tensor(&f));
            assert!(emb.data().iter().all(|v| v.is_finite()), "{kind} produced non-finite");
        }
    }
}
