//! Graph neural networks for link prediction.
//!
//! This crate is the Rust counterpart of the DGL + PyTorch model zoo the
//! SpLPG paper trains:
//!
//! * [`GraphAccess`] / [`FeatureAccess`] — the seam between models and
//!   graph storage. Local adapters ([`FullGraphAccess`],
//!   [`FullFeatureAccess`]) wrap in-memory structures; the distributed
//!   engine provides metered implementations that price every remote fetch,
//!   which is how the paper's communication-cost numbers are reproduced.
//! * [`NeighborSampler`] — builds per-layer bipartite [`Block`]s
//!   (message-flow graphs) from seed nodes, with per-hop fanouts
//!   (the paper samples 25/10/5) or full neighborhoods.
//! * Negative sampling — [`PerSourceNegativeSampler`] (training,
//!   "per-source uniform") and [`global_uniform_negatives`] (evaluation,
//!   "global uniform"), with restrictable sample spaces to reproduce the
//!   *local negative sample* pathology of Section III-B.
//! * Models — [`Gcn`], [`GraphSage`], [`Gat`], [`GatV2`] implementing
//!   [`GnnModel`]; [`EdgePredictor`] (dot product or MLP) computes edge
//!   scores from pairwise embeddings (Eq. (2)).
//! * [`metrics`] — Hits@K (the paper's accuracy metric) and AUC.
//! * [`LinkPredictor`] + [`trainer`] — end-to-end scoring and a
//!   single-process training loop (the "centralized" baseline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod block;
pub mod heuristics;
pub mod inference;
pub mod metrics;
mod models;
mod negative;
mod predictor;
mod sampler;
pub mod trainer;

pub use access::{FeatureAccess, FullFeatureAccess, FullGraphAccess, GraphAccess};
pub use block::{Block, MiniBatch};
pub use models::{Gat, GatV2, Gcn, Gin, GnnModel, GraphSage};
pub use negative::{global_uniform_negatives, PerSourceNegativeSampler};
pub use predictor::{edges_to_pairs, EdgePredictor, LinkPredictor};
pub use sampler::{NeighborSampler, SampleStats, SamplerScratch};

use splpg_graph::NodeId;

/// Errors from sampling and model evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GnnError {
    /// Sampling could not draw the requested negatives.
    NegativeSampling(String),
    /// A batch referenced a node outside the accessible graph.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Nodes available.
        num_nodes: usize,
    },
    /// Metric computation received empty inputs.
    EmptyInput(String),
}

impl std::fmt::Display for GnnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GnnError::NegativeSampling(msg) => write!(f, "negative sampling failed: {msg}"),
            GnnError::NodeOutOfRange { node, num_nodes } => {
                write!(f, "node {node} out of range for graph with {num_nodes} nodes")
            }
            GnnError::EmptyInput(msg) => write!(f, "empty input: {msg}"),
        }
    }
}

impl std::error::Error for GnnError {}
