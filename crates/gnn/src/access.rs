use splpg_rng::seq::SliceRandom;
use splpg_rng::Rng;
use splpg_graph::{FeatureMatrix, Graph, NodeId};
use splpg_tensor::Tensor;

/// Access to graph structure during sampling.
///
/// Methods take `&self` and the trait requires `Sync` so the parallel
/// sampler can fetch neighbor lists from several pool workers at once.
/// Implementations still *meter* what they serve — the distributed
/// engine's accessors count every byte of structure a worker pulls from
/// the master's shared memory, exactly the communication-cost metric of
/// the paper — but do so through interior mutability (atomic counters, a
/// mutex-guarded cache), which is what makes shared-reference access
/// sound.
pub trait GraphAccess: Sync {
    /// Number of nodes in the accessible universe (global id space).
    fn num_nodes(&self) -> usize;

    /// Degree of `v` in the accessible graph.
    fn degree(&self, v: NodeId) -> usize;

    /// Full weighted neighbor list of `v`.
    fn neighbors(&self, v: NodeId) -> Vec<(NodeId, f32)> {
        let mut out = Vec::new();
        self.neighbors_into(v, &mut out);
        out
    }

    /// Appends the full weighted neighbor list of `v` to `out` — the
    /// allocation-free primitive the sampler's per-worker scratch uses
    /// (implementations meter here exactly as for [`Self::neighbors`]).
    fn neighbors_into(&self, v: NodeId, out: &mut Vec<(NodeId, f32)>);

    /// Whether edge `(u, v)` exists in the accessible graph (used for
    /// negative-sample rejection).
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool;

    /// Samples up to `fanout` neighbors of `v` without replacement
    /// (`None` = full neighborhood). Implementations that fetch remotely
    /// should meter only the sampled neighbors — DGL's samplers likewise
    /// perform remote sampling server-side and ship only the result.
    fn sample_neighbors<R: Rng + ?Sized>(
        &self,
        v: NodeId,
        fanout: Option<usize>,
        rng: &mut R,
    ) -> Vec<(NodeId, f32)> {
        let mut nbrs = self.neighbors(v);
        if let Some(k) = fanout {
            if nbrs.len() > k {
                nbrs.shuffle(rng);
                nbrs.truncate(k);
            }
        }
        nbrs
    }
}

/// Access to node features during batch materialization.
///
/// `&mut self` for the same metering reason as [`GraphAccess`]: feature
/// rows dominate transfer volume (4 bytes per float, hundreds to thousands
/// of floats per node).
pub trait FeatureAccess {
    /// Feature dimensionality.
    fn dim(&self) -> usize;

    /// Appends feature rows for `nodes` (in order) to `out` — the
    /// allocation-free primitive the trainers use to gather straight into
    /// tape-arena storage (metering happens here).
    fn gather_into(&mut self, nodes: &[NodeId], out: &mut Vec<f32>);

    /// Gathers feature rows for `nodes` (in order) into a dense tensor.
    fn gather(&mut self, nodes: &[NodeId]) -> Tensor {
        let mut buf = Vec::with_capacity(nodes.len() * self.dim());
        self.gather_into(nodes, &mut buf);
        Tensor::from_vec(nodes.len(), self.dim(), buf)
            .expect("gather produces consistent shape")
    }
}

/// [`GraphAccess`] adapter over a complete in-memory [`Graph`] — what a
/// centralized trainer (or a worker with the complete data-sharing
/// strategy) sees.
#[derive(Debug)]
pub struct FullGraphAccess<'g> {
    graph: &'g Graph,
}

impl<'g> FullGraphAccess<'g> {
    /// Wraps a graph.
    pub fn new(graph: &'g Graph) -> Self {
        FullGraphAccess { graph }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }
}

impl GraphAccess for FullGraphAccess<'_> {
    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn degree(&self, v: NodeId) -> usize {
        self.graph.degree(v)
    }

    fn neighbors_into(&self, v: NodeId, out: &mut Vec<(NodeId, f32)>) {
        let ids = self.graph.neighbors(v);
        match self.graph.neighbor_weights(v) {
            Some(ws) => out.extend(ids.iter().copied().zip(ws.iter().copied())),
            None => out.extend(ids.iter().map(|&u| (u, 1.0))),
        }
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.graph.has_edge(u, v)
    }
}

/// [`FeatureAccess`] adapter over a complete in-memory [`FeatureMatrix`].
#[derive(Debug)]
pub struct FullFeatureAccess<'f> {
    features: &'f FeatureMatrix,
}

impl<'f> FullFeatureAccess<'f> {
    /// Wraps a feature matrix.
    pub fn new(features: &'f FeatureMatrix) -> Self {
        FullFeatureAccess { features }
    }
}

impl FeatureAccess for FullFeatureAccess<'_> {
    fn dim(&self) -> usize {
        self.features.dim()
    }

    fn gather_into(&mut self, nodes: &[NodeId], out: &mut Vec<f32>) {
        self.features.gather_into(nodes, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_rng::SeedableRng;

    fn graph() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]).unwrap()
    }

    #[test]
    fn full_access_mirrors_graph() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        assert_eq!(a.num_nodes(), 5);
        assert_eq!(a.degree(0), 4);
        assert_eq!(a.neighbors(1), vec![(0, 1.0), (2, 1.0)]);
        assert!(a.has_edge(1, 2));
        assert!(!a.has_edge(3, 4));
    }

    #[test]
    fn sample_neighbors_respects_fanout() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
        let s = a.sample_neighbors(0, Some(2), &mut rng);
        assert_eq!(s.len(), 2);
        let full = a.sample_neighbors(0, None, &mut rng);
        assert_eq!(full.len(), 4);
        let over = a.sample_neighbors(1, Some(10), &mut rng);
        assert_eq!(over.len(), 2);
    }

    #[test]
    fn sampled_neighbors_distinct() {
        let g = graph();
        let a = FullGraphAccess::new(&g);
        let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = a.sample_neighbors(0, Some(3), &mut rng);
            let mut ids: Vec<NodeId> = s.iter().map(|&(u, _)| u).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), 3, "sampling must be without replacement");
        }
    }

    #[test]
    fn feature_access_gathers_rows() {
        let f = FeatureMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
            .unwrap();
        let mut a = FullFeatureAccess::new(&f);
        assert_eq!(a.dim(), 2);
        let t = a.gather(&[2, 0]);
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.row(0), &[5.0, 6.0]);
    }

    #[test]
    fn weighted_graph_neighbors_carry_weights() {
        let mut b = splpg_graph::GraphBuilder::new(3);
        b.add_weighted_edge(0, 1, 2.5).unwrap();
        let g = b.build();
        let a = FullGraphAccess::new(&g);
        assert_eq!(a.neighbors(0), vec![(1, 2.5)]);
    }
}
