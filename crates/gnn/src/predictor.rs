use splpg_rng::{Rng, RngCore};
use splpg_graph::{Edge, NodeId};
use splpg_nn::{Binding, Mlp, ParamSet};
use splpg_tensor::{Tape, Var};

use crate::{GnnModel, MiniBatch};

/// Edge-score head combining two endpoint embeddings (Eq. (2)).
#[derive(Debug, Clone)]
pub enum EdgePredictor {
    /// Dot product of the two embeddings.
    Dot,
    /// MLP over the concatenated pair (the paper uses a 3-layer MLP).
    Mlp(Mlp),
}

impl EdgePredictor {
    /// Registers the paper's 3-layer MLP predictor
    /// (`2 emb -> hidden -> hidden -> 1`).
    pub fn paper_mlp<R: Rng + ?Sized>(
        params: &mut ParamSet,
        emb_dim: usize,
        hidden: usize,
        rng: &mut R,
    ) -> Self {
        EdgePredictor::Mlp(Mlp::new(params, "edge_mlp", &[2 * emb_dim, hidden, hidden, 1], rng))
    }

    /// Scores endpoint embedding pairs, returning `[num_pairs, 1]` logits.
    pub fn score(&self, tape: &mut Tape, binding: &Binding, h_u: Var, h_v: Var) -> Var {
        match self {
            EdgePredictor::Dot => {
                let prod = tape.mul(h_u, h_v);
                tape.row_sum(prod)
            }
            EdgePredictor::Mlp(mlp) => {
                let cat = tape.concat_cols(h_u, h_v);
                mlp.forward(tape, binding, cat)
            }
        }
    }
}

/// A complete link-prediction model: GNN encoder + edge predictor.
///
/// # Examples
///
/// ```
/// use splpg_rng::SeedableRng;
/// use splpg_gnn::{EdgePredictor, GraphSage, LinkPredictor};
/// use splpg_nn::ParamSet;
///
/// let mut rng = splpg_rng::rngs::StdRng::seed_from_u64(0);
/// let mut params = ParamSet::new();
/// let gnn = GraphSage::new(&mut params, &[16, 32, 32], 0.0, &mut rng);
/// let predictor = EdgePredictor::paper_mlp(&mut params, 32, 32, &mut rng);
/// let model = LinkPredictor::new(Box::new(gnn), predictor);
/// assert_eq!(model.gnn().num_layers(), 2);
/// ```
pub struct LinkPredictor {
    gnn: Box<dyn GnnModel + Send + Sync>,
    predictor: EdgePredictor,
}

impl std::fmt::Debug for LinkPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinkPredictor")
            .field("layers", &self.gnn.num_layers())
            .field("output_dim", &self.gnn.output_dim())
            .finish()
    }
}

impl LinkPredictor {
    /// Combines an encoder and a predictor head.
    pub fn new(gnn: Box<dyn GnnModel + Send + Sync>, predictor: EdgePredictor) -> Self {
        LinkPredictor { gnn, predictor }
    }

    /// The GNN encoder.
    pub fn gnn(&self) -> &(dyn GnnModel + Send + Sync) {
        self.gnn.as_ref()
    }

    /// The predictor head.
    pub fn predictor(&self) -> &EdgePredictor {
        &self.predictor
    }

    /// Scores `pairs` (indices into `batch.seeds`) given the input features
    /// of `batch.input_nodes()`. Returns `[pairs.len(), 1]` logits.
    pub fn score_pairs(
        &self,
        tape: &mut Tape,
        binding: &Binding,
        input: Var,
        batch: &MiniBatch,
        pairs: &[(u32, u32)],
        dropout_rng: Option<&mut dyn RngCore>,
    ) -> Var {
        let emb = self.gnn.forward(tape, binding, input, &batch.blocks, dropout_rng);
        let us: Vec<u32> = pairs.iter().map(|&(u, _)| u).collect();
        let vs: Vec<u32> = pairs.iter().map(|&(_, v)| v).collect();
        let h_u = tape.gather_rows(emb, &us);
        let h_v = tape.gather_rows(emb, &vs);
        self.predictor.score(tape, binding, h_u, h_v)
    }
}

/// Flattens positive and negative edge lists into the seed/pair/label form
/// consumed by [`LinkPredictor::score_pairs`]: unique endpoint seeds, pair
/// indices into them, and labels (1 for positives then 0 for negatives).
pub fn edges_to_pairs(
    positives: &[Edge],
    negatives: &[Edge],
) -> (Vec<NodeId>, Vec<(u32, u32)>, Vec<f32>) {
    let mut seeds: Vec<NodeId> = Vec::new();
    let mut index: std::collections::BTreeMap<NodeId, u32> = std::collections::BTreeMap::new();
    let mut intern = |v: NodeId, seeds: &mut Vec<NodeId>| -> u32 {
        *index.entry(v).or_insert_with(|| {
            seeds.push(v);
            (seeds.len() - 1) as u32
        })
    };
    let mut pairs = Vec::with_capacity(positives.len() + negatives.len());
    let mut labels = Vec::with_capacity(pairs.capacity());
    for e in positives {
        let u = intern(e.src, &mut seeds);
        let v = intern(e.dst, &mut seeds);
        pairs.push((u, v));
        labels.push(1.0);
    }
    for e in negatives {
        let u = intern(e.src, &mut seeds);
        let v = intern(e.dst, &mut seeds);
        pairs.push((u, v));
        labels.push(0.0);
    }
    (seeds, pairs, labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::test_support::path_batch;
    use crate::Gcn;
    use splpg_rng::SeedableRng;
    use splpg_tensor::Tensor;

    fn rng() -> splpg_rng::rngs::StdRng {
        splpg_rng::rngs::StdRng::seed_from_u64(4)
    }

    #[test]
    fn dot_predictor_is_inner_product() {
        let mut tape = Tape::new();
        let hu = tape.leaf(Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, 1.0, 0.0]).unwrap());
        let hv = tape.leaf(Tensor::from_vec(2, 3, vec![4.0, 5.0, 6.0, 1.0, 1.0, 1.0]).unwrap());
        let binding = ParamSet::new().bind(&mut tape);
        let s = EdgePredictor::Dot.score(&mut tape, &binding, hu, hv);
        assert_eq!(tape.value(s).data(), &[32.0, 1.0]);
    }

    #[test]
    fn mlp_predictor_output_shape() {
        let mut params = ParamSet::new();
        let pred = EdgePredictor::paper_mlp(&mut params, 4, 8, &mut rng());
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let hu = tape.leaf(Tensor::ones(5, 4));
        let hv = tape.leaf(Tensor::ones(5, 4));
        let s = pred.score(&mut tape, &binding, hu, hv);
        assert_eq!(tape.value(s).shape(), (5, 1));
    }

    #[test]
    fn edges_to_pairs_interns_endpoints() {
        let pos = vec![Edge::new(3, 7)];
        let neg = vec![Edge::new(3, 9), Edge::new(7, 9)];
        let (seeds, pairs, labels) = edges_to_pairs(&pos, &neg);
        assert_eq!(seeds, vec![3, 7, 9]);
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 2)]);
        assert_eq!(labels, vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn score_pairs_end_to_end() {
        let mut params = ParamSet::new();
        let gnn = Gcn::new(&mut params, &[4, 8, 8], 0.0, &mut rng());
        let pred = EdgePredictor::paper_mlp(&mut params, 8, 8, &mut rng());
        let model = LinkPredictor::new(Box::new(gnn), pred);
        let batch = path_batch();
        let mut tape = Tape::new();
        let binding = params.bind(&mut tape);
        let x = tape.leaf(Tensor::ones(3, 4));
        // Only one seed (node 0): score the self-pair.
        let s = model.score_pairs(&mut tape, &binding, x, &batch, &[(0, 0)], None);
        assert_eq!(tape.value(s).shape(), (1, 1));
        assert!(tape.value(s).get(0, 0).is_finite());
    }

    #[test]
    fn link_predictor_debug_nonempty() {
        let mut params = ParamSet::new();
        let gnn = Gcn::new(&mut params, &[4, 2], 0.0, &mut rng());
        let model = LinkPredictor::new(Box::new(gnn), EdgePredictor::Dot);
        assert!(!format!("{model:?}").is_empty());
    }
}
