//! Single-process training and evaluation helpers.
//!
//! The centralized baseline of every figure trains through
//! [`train_centralized`]; the distributed engine reuses [`batch_grads`]
//! (one worker's forward/backward on its own data view) and
//! [`evaluate_hits`].

use splpg_rng::rngs::StdRng;
use splpg_rng::seq::SliceRandom;
use splpg_rng::{Rng, SeedableRng};
use splpg_graph::{Edge, EdgeSplit, FeatureMatrix, Graph};
use splpg_nn::{Adam, Optimizer, ParamSet};
use splpg_tensor::{Tape, Tensor};

use crate::{
    edges_to_pairs, metrics, EdgePredictor, FeatureAccess, FullFeatureAccess, FullGraphAccess,
    Gat, GatV2, Gcn, Gin, GnnError, GraphAccess, GraphSage, LinkPredictor, NeighborSampler,
    PerSourceNegativeSampler, SamplerScratch,
};

/// Which GNN architecture to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Graph convolutional network.
    Gcn,
    /// GraphSAGE with mean aggregation.
    GraphSage,
    /// Graph attention network.
    Gat,
    /// GATv2 (dynamic attention).
    GatV2,
    /// Graph isomorphism network (extension beyond the paper's four).
    Gin,
}

impl ModelKind {
    /// All supported kinds, in the paper's presentation order.
    pub const ALL: [ModelKind; 5] = [
        ModelKind::Gcn,
        ModelKind::GraphSage,
        ModelKind::Gat,
        ModelKind::GatV2,
        ModelKind::Gin,
    ];

    /// The four architectures the paper evaluates (Figure 14).
    pub const PAPER: [ModelKind; 4] =
        [ModelKind::Gcn, ModelKind::GraphSage, ModelKind::Gat, ModelKind::GatV2];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Gcn => "GCN",
            ModelKind::GraphSage => "GraphSAGE",
            ModelKind::Gat => "GAT",
            ModelKind::GatV2 => "GATv2",
            ModelKind::Gin => "GIN",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Hyperparameters for model construction and training.
///
/// Defaults are CPU-scaled versions of the paper's setup (Section V-A):
/// the paper uses 3 layers, hidden 256, batch 256, Adam lr 0.001,
/// 500 epochs; we default to hidden 64 and 30 epochs so experiments run in
/// CPU-minutes, with every field overridable.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// GNN layer count (paper: 3).
    pub layers: usize,
    /// Hidden/embedding width (paper: 256).
    pub hidden: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Mini-batch size in positive edges (paper: 256).
    pub batch_size: usize,
    /// Training epochs (paper: 500).
    pub epochs: usize,
    /// Adam learning rate (paper: 0.001).
    pub learning_rate: f32,
    /// Per-hop fanouts; `None` entries = full neighborhood.
    pub fanouts: Vec<Option<usize>>,
    /// Hits@K cutoff (paper: 100).
    pub hits_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            layers: 3,
            hidden: 64,
            dropout: 0.0,
            batch_size: 256,
            epochs: 30,
            learning_rate: 1e-3,
            fanouts: vec![Some(25), Some(10), Some(5)],
            hits_k: 100,
            seed: 1,
        }
    }
}

impl TrainConfig {
    /// The sampler implied by the fanout configuration.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts.len() != layers`.
    pub fn sampler(&self) -> NeighborSampler {
        assert_eq!(self.fanouts.len(), self.layers, "one fanout per layer");
        NeighborSampler::new(self.fanouts.clone())
    }

    /// Builds a model + predictor pair for `kind`, registering parameters.
    pub fn build_model<R: Rng + ?Sized>(
        &self,
        kind: ModelKind,
        in_dim: usize,
        params: &mut ParamSet,
        rng: &mut R,
    ) -> LinkPredictor {
        let mut dims = vec![in_dim];
        dims.extend(std::iter::repeat_n(self.hidden, self.layers));
        let gnn: Box<dyn crate::GnnModel + Send + Sync> = match kind {
            ModelKind::Gcn => Box::new(Gcn::new(params, &dims, self.dropout, rng)),
            ModelKind::GraphSage => Box::new(GraphSage::new(params, &dims, self.dropout, rng)),
            ModelKind::Gat => Box::new(Gat::new(params, &dims, self.dropout, rng)),
            ModelKind::GatV2 => Box::new(GatV2::new(params, &dims, self.dropout, rng)),
            ModelKind::Gin => Box::new(Gin::new(params, &dims, self.dropout, rng)),
        };
        let predictor = EdgePredictor::paper_mlp(params, self.hidden, self.hidden, rng);
        LinkPredictor::new(gnn, predictor)
    }
}

/// Loss and gradients from one worker-local mini-batch (Algorithm 1 lines
/// 20–28): draws per-source negatives, samples blocks, runs
/// forward/backward.
///
/// `tape` and `scratch` are reset and reused: a trainer holds one tape and
/// one sampler scratch across steps so the steady-state step draws every
/// buffer from the tape's arena and the sampler's worker scratch instead of
/// the allocator. Recycle the returned gradients back into the tape
/// ([`Tape::recycle`]) once the optimizer has consumed them.
///
/// # Errors
///
/// Propagates negative-sampling failures.
#[allow(clippy::too_many_arguments)]
pub fn batch_grads<G, F>(
    model: &LinkPredictor,
    params: &ParamSet,
    graph_access: &G,
    feature_access: &mut F,
    sampler: &NeighborSampler,
    negative_sampler: &PerSourceNegativeSampler,
    positives: &[Edge],
    rng: &mut StdRng,
    tape: &mut Tape,
    scratch: &mut SamplerScratch,
) -> Result<(f32, Vec<Tensor>), GnnError>
where
    G: GraphAccess,
    F: FeatureAccess,
{
    let negatives = negative_sampler.sample_for_edges(graph_access, positives, rng)?;
    let (seeds, pairs, labels) = edges_to_pairs(positives, &negatives);
    let batch = sampler.sample_with(graph_access, &seeds, rng, scratch);

    tape.reset();
    let binding = params.bind(tape);
    let input_nodes = batch.input_nodes();
    let x = tape.leaf_with(input_nodes.len(), feature_access.dim(), |buf| {
        feature_access.gather_into(input_nodes, buf);
    });
    let mut dropout_rng = rng.clone();
    let logits = model.score_pairs(tape, &binding, x, &batch, &pairs, Some(&mut dropout_rng));
    let loss = tape.bce_with_logits(logits, &labels);
    let loss_value = tape.value(loss).get(0, 0);
    let mut grads = tape.backward(loss);
    let collected = binding.collect_grads(params, &mut grads);
    tape.recycle_gradients(grads);
    Ok((loss_value, collected))
}

/// Scores a list of edges under the current parameters (no gradients,
/// full-precision eval pass). Resets and reuses `tape` and `scratch` per
/// chunk.
#[allow(clippy::too_many_arguments)]
pub fn score_edges<G, F>(
    model: &LinkPredictor,
    params: &ParamSet,
    graph_access: &G,
    feature_access: &mut F,
    sampler: &NeighborSampler,
    edges: &[Edge],
    rng: &mut StdRng,
    tape: &mut Tape,
    scratch: &mut SamplerScratch,
) -> Vec<f32>
where
    G: GraphAccess,
    F: FeatureAccess,
{
    let mut scores = Vec::with_capacity(edges.len());
    // Chunk to bound peak memory on large eval sets; the reused tape keeps
    // the chunk working set warm instead of reallocating it per chunk.
    for chunk in edges.chunks(1024) {
        let (seeds, pairs, _) = edges_to_pairs(chunk, &[]);
        let batch = sampler.sample_with(graph_access, &seeds, rng, scratch);
        tape.reset();
        let binding = params.bind(tape);
        let input_nodes = batch.input_nodes();
        let x = tape.leaf_with(input_nodes.len(), feature_access.dim(), |buf| {
            feature_access.gather_into(input_nodes, buf);
        });
        let logits = model.score_pairs(tape, &binding, x, &batch, &pairs, None);
        scores.extend_from_slice(tape.value(logits).data());
    }
    scores
}

/// Hits@K of `model` on held-out positives vs negatives.
///
/// # Errors
///
/// Propagates metric errors (empty inputs).
#[allow(clippy::too_many_arguments)]
pub fn evaluate_hits<G, F>(
    model: &LinkPredictor,
    params: &ParamSet,
    graph_access: &G,
    feature_access: &mut F,
    sampler: &NeighborSampler,
    positives: &[Edge],
    negatives: &[Edge],
    k: usize,
    rng: &mut StdRng,
    tape: &mut Tape,
    scratch: &mut SamplerScratch,
) -> Result<f64, GnnError>
where
    G: GraphAccess,
    F: FeatureAccess,
{
    let pos = score_edges(
        model, params, graph_access, feature_access, sampler, positives, rng, tape, scratch,
    );
    let neg = score_edges(
        model, params, graph_access, feature_access, sampler, negatives, rng, tape, scratch,
    );
    metrics::hits_at_k(&pos, &neg, k)
}

/// Progress of a training run: per-epoch loss and validation accuracy.
#[derive(Debug, Clone, Default)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub losses: Vec<f32>,
    /// Validation Hits@K per epoch.
    pub valid_hits: Vec<f64>,
}

/// Outcome of [`train_centralized`].
pub struct TrainedModel {
    /// The trained model (architecture + predictor).
    pub model: LinkPredictor,
    /// Trained parameters.
    pub params: ParamSet,
    /// Per-epoch history.
    pub history: TrainHistory,
    /// Test Hits@K of the best-validation parameters.
    pub test_hits: f64,
}

impl std::fmt::Debug for TrainedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedModel")
            .field("test_hits", &self.test_hits)
            .field("epochs", &self.history.losses.len())
            .finish()
    }
}

/// Trains `kind` on the full graph in one process — the paper's
/// "centralized" reference configuration that every distributed method is
/// compared against.
///
/// Follows the paper's protocol: message passing on the training graph,
/// per-source uniform negatives over the whole node set, Adam, and test
/// accuracy reported for the best-validation epoch.
///
/// # Errors
///
/// Propagates sampling/metric failures.
pub fn train_centralized(
    kind: ModelKind,
    graph: &Graph,
    features: &FeatureMatrix,
    split: &EdgeSplit,
    config: &TrainConfig,
) -> Result<TrainedModel, GnnError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let train_graph = split
        .train_graph(graph.num_nodes())
        .map_err(|e| GnnError::NegativeSampling(e.to_string()))?;
    let mut params = ParamSet::new();
    let model = config.build_model(kind, features.dim(), &mut params, &mut rng);
    let mut opt = Adam::new(config.learning_rate);
    let sampler = config.sampler();
    let eval_sampler = NeighborSampler::full(config.layers);
    let negative_sampler = PerSourceNegativeSampler::global(graph.num_nodes());

    let mut history = TrainHistory::default();
    let mut best = (f64::NEG_INFINITY, params.to_flat());
    let mut train_edges = split.train.clone();
    // One tape + sampler scratch per loop: train batches and eval chunks
    // have different shapes, so separate instances keep each arena at its
    // own fixed point.
    let mut tape = Tape::new();
    let mut eval_tape = Tape::new();
    let mut scratch = SamplerScratch::new();
    let mut eval_scratch = SamplerScratch::new();
    for _epoch in 0..config.epochs {
        train_edges.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for chunk in train_edges.chunks(config.batch_size) {
            let ga = FullGraphAccess::new(&train_graph);
            let mut fa = FullFeatureAccess::new(features);
            let (loss, grads) = batch_grads(
                &model,
                &params,
                &ga,
                &mut fa,
                &sampler,
                &negative_sampler,
                chunk,
                &mut rng,
                &mut tape,
                &mut scratch,
            )?;
            opt.step(&mut params, &grads);
            for g in grads {
                tape.recycle(g);
            }
            epoch_loss += loss as f64;
            batches += 1;
        }
        history.losses.push((epoch_loss / batches.max(1) as f64) as f32);

        let ga = FullGraphAccess::new(&train_graph);
        let mut fa = FullFeatureAccess::new(features);
        let hits = evaluate_hits(
            &model,
            &params,
            &ga,
            &mut fa,
            &eval_sampler,
            &split.valid,
            &split.valid_neg,
            config.hits_k,
            &mut rng,
            &mut eval_tape,
            &mut eval_scratch,
        )?;
        history.valid_hits.push(hits);
        if hits > best.0 {
            best = (hits, params.to_flat());
        }
    }
    params.load_flat(&best.1).expect("same parameter structure");
    let ga = FullGraphAccess::new(&train_graph);
    let mut fa = FullFeatureAccess::new(features);
    let test_hits = evaluate_hits(
        &model,
        &params,
        &ga,
        &mut fa,
        &eval_sampler,
        &split.test,
        &split.test_neg,
        config.hits_k,
        &mut rng,
        &mut eval_tape,
        &mut eval_scratch,
    )?;
    Ok(TrainedModel { model, params, history, test_hits })
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_graph::{GraphBuilder, NodeId, SplitFractions};

    /// A small two-community graph with community-correlated features:
    /// link prediction on it is learnable.
    fn toy_dataset() -> (Graph, FeatureMatrix, EdgeSplit) {
        let n = 60usize;
        let half = n / 2;
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = GraphBuilder::new(n);
        for c in 0..2usize {
            let base = c * half;
            for i in 0..half {
                for _ in 0..3 {
                    let j = rng.gen_range(0..half);
                    if i != j {
                        let _ = b.add_edge((base + i) as NodeId, (base + j) as NodeId);
                    }
                }
            }
        }
        // A couple of cross links.
        let _ = b.add_edge(0, half as NodeId);
        let g = b.build();
        let f = FeatureMatrix::from_rows(
            (0..n)
                .map(|i| {
                    let c = if i < half { 1.0 } else { -1.0 };
                    (0..8).map(|d| c * (d as f32 + 1.0) * 0.1 + rng.gen::<f32>() * 0.05).collect()
                })
                .collect(),
        )
        .unwrap();
        let split = EdgeSplit::random(&g, SplitFractions::paper_default(), 3, &mut rng).unwrap();
        (g, f, split)
    }

    fn quick_config() -> TrainConfig {
        TrainConfig {
            layers: 2,
            hidden: 16,
            epochs: 5,
            batch_size: 64,
            learning_rate: 5e-3,
            fanouts: vec![Some(10), Some(5)],
            hits_k: 20,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn centralized_training_learns_something() {
        let (g, f, split) = toy_dataset();
        let out = train_centralized(ModelKind::GraphSage, &g, &f, &split, &quick_config())
            .unwrap();
        assert_eq!(out.history.losses.len(), 5);
        // Loss must decrease from first to last epoch.
        assert!(
            out.history.losses.last().unwrap() < out.history.losses.first().unwrap(),
            "loss did not decrease: {:?}",
            out.history.losses
        );
        assert!(out.test_hits >= 0.0 && out.test_hits <= 1.0);
    }

    #[test]
    fn all_model_kinds_train_one_epoch() {
        let (g, f, split) = toy_dataset();
        let config = TrainConfig { epochs: 1, ..quick_config() };
        for kind in ModelKind::ALL {
            let out = train_centralized(kind, &g, &f, &split, &config)
                .unwrap_or_else(|e| panic!("{kind} failed: {e}"));
            assert!(out.history.losses[0].is_finite(), "{kind} loss not finite");
        }
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::Gcn.name(), "GCN");
        assert_eq!(ModelKind::GatV2.to_string(), "GATv2");
    }

    #[test]
    fn config_sampler_checks_layer_count() {
        let config = TrainConfig { layers: 2, fanouts: vec![None, None], ..Default::default() };
        assert_eq!(config.sampler().num_layers(), 2);
    }

    #[test]
    #[should_panic(expected = "one fanout per layer")]
    fn config_sampler_mismatch_panics() {
        let config = TrainConfig { layers: 3, fanouts: vec![None], ..Default::default() };
        let _ = config.sampler();
    }

    #[test]
    fn score_edges_deterministic_in_eval_mode() {
        let (g, f, split) = toy_dataset();
        let mut rng = StdRng::seed_from_u64(0);
        let config = quick_config();
        let mut params = ParamSet::new();
        let model = config.build_model(ModelKind::Gcn, f.dim(), &mut params, &mut rng);
        let sampler = NeighborSampler::full(config.layers);
        let run = || {
            let ga = FullGraphAccess::new(&g);
            let mut fa = FullFeatureAccess::new(&f);
            let mut r = StdRng::seed_from_u64(9);
            let mut tape = Tape::new();
            let mut scratch = SamplerScratch::new();
            score_edges(
                &model, &params, &ga, &mut fa, &sampler, &split.test, &mut r, &mut tape,
                &mut scratch,
            )
        };
        assert_eq!(run(), run());
    }
}
