//! Property-style tests on the distributed data plane, run as seeded
//! loops: metering invariants must hold for arbitrary community graphs,
//! strategies and partition counts.

use std::sync::Arc;

use splpg_dist::{ClusterSetup, CommTracker, Strategy as TrainingStrategy};
use splpg_gnn::{GraphAccess, NeighborSampler};
use splpg_graph::{FeatureMatrix, Graph, NodeId};
use splpg_rng::{Rng, SeedableRng};

const CASES: u64 = 24;

fn rng(seed: u64) -> splpg_rng::rngs::StdRng {
    splpg_rng::rngs::StdRng::seed_from_u64(seed)
}

/// A random simple graph with 16..60 nodes and 2n..6n edges.
fn rand_graph(r: &mut splpg_rng::rngs::StdRng) -> (usize, Vec<(NodeId, NodeId)>) {
    let n = r.gen_range(16usize..60);
    let m = r.gen_range(2 * n..6 * n);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(m);
    while edges.len() < m {
        let u = r.gen_range(0..n as NodeId);
        let v = r.gen_range(0..n as NodeId);
        if u != v {
            edges.push((u, v));
        }
    }
    (n, edges)
}

fn setup(
    n: usize,
    edges: &[(NodeId, NodeId)],
    strategy: TrainingStrategy,
    workers: usize,
    seed: u64,
) -> ClusterSetup {
    let g = Arc::new(Graph::from_edges(n, edges).unwrap());
    let f = Arc::new(FeatureMatrix::zeros(n, 4));
    ClusterSetup::build(&g, &f, strategy.spec(), workers, 0.15, seed).unwrap()
}

#[test]
fn local_only_strategies_never_transfer() {
    for case in 0..CASES {
        let mut r = rng(case);
        let (n, edges) = rand_graph(&mut r);
        let s = setup(n, &edges, TrainingStrategy::PsgdPa, 4, case);
        let sampler = NeighborSampler::full(2);
        // Sample from every worker's core nodes: no byte may be metered.
        for w in &s.workers {
            let core = s.partition.part_nodes(w.worker_id as u32);
            let view = w.view.clone();
            let _ = sampler.sample(&view, &core[..core.len().min(4)], &mut r);
        }
        assert_eq!(s.tracker.total_bytes(), 0, "case {case}");
    }
}

#[test]
fn halo_makes_core_one_hop_free() {
    // Under SpLPG, expanding one hop from core nodes touches only
    // locally-stored structure.
    for case in 0..CASES {
        let mut r = rng(1000 + case);
        let (n, edges) = rand_graph(&mut r);
        let s = setup(n, &edges, TrainingStrategy::SpLpg, 2, case);
        for w in &s.workers {
            let view = w.view.clone();
            for &v in s.partition.part_nodes(w.worker_id as u32).iter().take(6) {
                let before = s.tracker.total_bytes();
                let _ = view.neighbors(v);
                assert_eq!(
                    s.tracker.total_bytes(),
                    before,
                    "case {case}: core neighbor fetch was metered"
                );
            }
        }
    }
}

#[test]
fn positives_cover_every_edge_at_least_once() {
    // Under halo retention the union of worker positives covers every
    // edge (cross edges twice); without halo, exactly the intra edges.
    for case in 0..CASES {
        let mut r = rng(2000 + case);
        let (n, edges) = rand_graph(&mut r);
        let g = Graph::from_edges(n, &edges).unwrap();
        let s = setup(n, &edges, TrainingStrategy::SpLpg, 3, case);
        let mut covered = std::collections::HashSet::new();
        for w in &s.workers {
            for e in &w.positives {
                covered.insert((e.src, e.dst));
            }
        }
        assert_eq!(covered.len(), g.num_edges(), "case {case}");
    }
}

#[test]
fn negative_spaces_match_strategy() {
    for case in 0..CASES {
        let mut r = rng(3000 + case);
        let (n, edges) = rand_graph(&mut r);
        let local = setup(n, &edges, TrainingStrategy::PsgdPa, 2, case);
        let global = setup(n, &edges, TrainingStrategy::SpLpg, 2, case);
        for w in &local.workers {
            assert!(w.negative_space.len() < n, "case {case}");
        }
        for w in &global.workers {
            assert_eq!(w.negative_space.len(), n, "case {case}");
        }
    }
}

#[test]
fn remote_fetch_prices_match_payload() {
    for case in 0..CASES {
        let mut r = rng(4000 + case);
        let (n, edges) = rand_graph(&mut r);
        let s = setup(n, &edges, TrainingStrategy::SpLpgPlus, 2, case);
        let g = Graph::from_edges(n, &edges).unwrap();
        // Fetch a node owned by worker 1 from worker 0's view.
        let remote = s.partition.part_nodes(1)[0];
        let view = s.workers[0].view.clone();
        if view.is_structure_local(remote) {
            // Halo node: free by design.
            continue;
        }
        let before = s.tracker.structure_bytes();
        let nbrs = view.neighbors(remote);
        let cost = s.tracker.structure_bytes() - before;
        assert_eq!(
            cost,
            nbrs.len() as u64 * splpg_dist::BYTES_PER_EDGE + splpg_dist::BYTES_PER_NODE_ID,
            "case {case}"
        );
        assert_eq!(nbrs.len(), g.degree(remote), "case {case}");
    }
}

#[test]
fn tracker_counts_are_monotone() {
    for case in 0..CASES {
        let mut r = rng(5000 + case);
        let tracker = CommTracker::new();
        let mut last = 0;
        for _ in 0..20 {
            if r.gen::<bool>() {
                tracker.add_structure(r.gen_range(0..10), r.gen_range(0..4));
            } else {
                tracker.add_features(r.gen_range(0..10), 8);
            }
            assert!(tracker.total_bytes() >= last, "case {case}");
            last = tracker.total_bytes();
        }
    }
}
