//! Property-based tests on the distributed data plane: metering
//! invariants must hold for arbitrary community graphs, strategies and
//! partition counts.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;
use splpg_dist::{ClusterSetup, CommTracker, Strategy as TrainingStrategy};
use splpg_gnn::{GraphAccess, NeighborSampler};
use splpg_graph::{FeatureMatrix, Graph, NodeId};

fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (16usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n as NodeId, 0..n as NodeId).prop_filter("no loops", |(u, v)| u != v),
            2 * n..6 * n,
        );
        (Just(n), edges)
    })
}

fn setup(
    n: usize,
    edges: &[(NodeId, NodeId)],
    strategy: TrainingStrategy,
    workers: usize,
    seed: u64,
) -> ClusterSetup {
    let g = Arc::new(Graph::from_edges(n, edges).unwrap());
    let f = Arc::new(FeatureMatrix::zeros(n, 4));
    ClusterSetup::build(&g, &f, strategy.spec(), workers, 0.15, seed).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn local_only_strategies_never_transfer((n, edges) in arb_graph(), seed in 0u64..200) {
        let s = setup(n, &edges, TrainingStrategy::PsgdPa, 4, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sampler = NeighborSampler::full(2);
        // Sample from every worker's core nodes: no byte may be metered.
        for w in &s.workers {
            let core = s.partition.part_nodes(w.worker_id as u32);
            let mut view = w.view.clone();
            let _ = sampler.sample(&mut view, &core[..core.len().min(4)], &mut rng);
        }
        prop_assert_eq!(s.tracker.total_bytes(), 0);
    }

    #[test]
    fn halo_makes_core_one_hop_free((n, edges) in arb_graph(), seed in 0u64..200) {
        // Under SpLPG, expanding one hop from core nodes touches only
        // locally-stored structure.
        let s = setup(n, &edges, TrainingStrategy::SpLpg, 2, seed);
        for w in &s.workers {
            let mut view = w.view.clone();
            for &v in s.partition.part_nodes(w.worker_id as u32).iter().take(6) {
                let before = s.tracker.total_bytes();
                let _ = view.neighbors(v);
                prop_assert_eq!(s.tracker.total_bytes(), before,
                    "core neighbor fetch was metered");
            }
        }
    }

    #[test]
    fn positives_cover_every_edge_at_least_once((n, edges) in arb_graph(), seed in 0u64..200) {
        // Under halo retention the union of worker positives covers every
        // edge (cross edges twice); without halo, exactly the intra edges.
        let g = Graph::from_edges(n, &edges).unwrap();
        let s = setup(n, &edges, TrainingStrategy::SpLpg, 3, seed);
        let mut covered = std::collections::HashSet::new();
        for w in &s.workers {
            for e in &w.positives {
                covered.insert((e.src, e.dst));
            }
        }
        prop_assert_eq!(covered.len(), g.num_edges());
    }

    #[test]
    fn negative_spaces_match_strategy((n, edges) in arb_graph(), seed in 0u64..200) {
        let local = setup(n, &edges, TrainingStrategy::PsgdPa, 2, seed);
        let global = setup(n, &edges, TrainingStrategy::SpLpg, 2, seed);
        for w in &local.workers {
            prop_assert!(w.negative_space.len() < n);
        }
        for w in &global.workers {
            prop_assert_eq!(w.negative_space.len(), n);
        }
    }

    #[test]
    fn remote_fetch_prices_match_payload((n, edges) in arb_graph(), seed in 0u64..200) {
        let s = setup(n, &edges, TrainingStrategy::SpLpgPlus, 2, seed);
        let g = Graph::from_edges(n, &edges).unwrap();
        // Fetch a node owned by worker 1 from worker 0's view.
        let remote = s.partition.part_nodes(1)[0];
        let mut view = s.workers[0].view.clone();
        if view.is_structure_local(remote) {
            // Halo node: free by design.
            return Ok(());
        }
        let before = s.tracker.structure_bytes();
        let nbrs = view.neighbors(remote);
        let cost = s.tracker.structure_bytes() - before;
        prop_assert_eq!(
            cost,
            nbrs.len() as u64 * splpg_dist::BYTES_PER_EDGE + splpg_dist::BYTES_PER_NODE_ID
        );
        prop_assert_eq!(nbrs.len(), g.degree(remote));
    }

    #[test]
    fn tracker_counts_are_monotone((n, edges) in arb_graph(), seed in 0u64..200) {
        let tracker = CommTracker::new();
        let mut last = 0;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        use rand::Rng;
        for _ in 0..20 {
            if rng.gen::<bool>() {
                tracker.add_structure(rng.gen_range(0..10), rng.gen_range(0..4));
            } else {
                tracker.add_features(rng.gen_range(0..10), 8);
            }
            prop_assert!(tracker.total_bytes() >= last);
            last = tracker.total_bytes();
        }
        let _ = (n, edges);
    }
}
