use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes per node identifier on the wire (DGL ships int64 ids).
pub const BYTES_PER_NODE_ID: u64 = 8;
/// Bytes per transferred edge (source id + destination id).
pub const BYTES_PER_EDGE: u64 = 2 * BYTES_PER_NODE_ID;
/// Bytes per feature element (`f32`).
pub const BYTES_PER_FEATURE: u64 = 4;

/// Thread-safe meter of master→worker graph-data transfer.
///
/// Cloning shares the underlying counters, so one tracker can be handed to
/// every worker view of a cluster and read by the coordinator. This is the
/// measurement behind Figures 4, 8, 9, 13 and Table III: "the total
/// cumulative amount of data transferred from the master server to all
/// workers for one training epoch".
///
/// # Examples
///
/// ```
/// use splpg_dist::CommTracker;
/// let t = CommTracker::new();
/// t.add_structure(10, 4);
/// t.add_features(3, 128);
/// assert_eq!(t.structure_bytes(), 10 * 16 + 4 * 8);
/// assert_eq!(t.feature_bytes(), 3 * 128 * 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommTracker {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    structure: AtomicU64,
    features: AtomicU64,
    fetches: AtomicU64,
}

impl CommTracker {
    /// A fresh tracker with zeroed counters.
    pub fn new() -> Self {
        CommTracker::default()
    }

    /// Records a structure transfer of `edges` edges and `nodes` node ids.
    pub fn add_structure(&self, edges: u64, nodes: u64) {
        self.inner
            .structure
            .fetch_add(edges * BYTES_PER_EDGE + nodes * BYTES_PER_NODE_ID, Ordering::Relaxed);
        self.inner.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feature transfer of `rows` rows of width `dim`.
    pub fn add_features(&self, rows: u64, dim: u64) {
        self.inner
            .features
            .fetch_add(rows * dim * BYTES_PER_FEATURE, Ordering::Relaxed);
        self.inner.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative structure bytes.
    pub fn structure_bytes(&self) -> u64 {
        self.inner.structure.load(Ordering::Relaxed)
    }

    /// Cumulative feature bytes.
    pub fn feature_bytes(&self) -> u64 {
        self.inner.features.load(Ordering::Relaxed)
    }

    /// Cumulative total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.structure_bytes() + self.feature_bytes()
    }

    /// Number of individual fetch operations.
    pub fn fetch_count(&self) -> u64 {
        self.inner.fetches.load(Ordering::Relaxed)
    }
}

/// Per-epoch communication totals of a training run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommReport {
    /// Total bytes transferred in each epoch.
    pub epoch_bytes: Vec<u64>,
    /// Structure/feature breakdown of the final cumulative totals.
    pub total_structure_bytes: u64,
    /// Cumulative feature bytes at the end of training.
    pub total_feature_bytes: u64,
}

impl CommReport {
    /// Mean bytes per epoch (0 when no epochs ran).
    pub fn mean_epoch_bytes(&self) -> u64 {
        if self.epoch_bytes.is_empty() {
            0
        } else {
            self.epoch_bytes.iter().sum::<u64>() / self.epoch_bytes.len() as u64
        }
    }

    /// Cumulative total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_structure_bytes + self.total_feature_bytes
    }

    /// Human-readable gigabytes for the mean epoch.
    pub fn mean_epoch_gb(&self) -> f64 {
        self.mean_epoch_bytes() as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = CommTracker::new();
        t.add_structure(5, 2);
        t.add_structure(1, 0);
        assert_eq!(t.structure_bytes(), 6 * BYTES_PER_EDGE + 2 * BYTES_PER_NODE_ID);
        t.add_features(10, 16);
        assert_eq!(t.feature_bytes(), 640);
        assert_eq!(t.total_bytes(), t.structure_bytes() + 640);
        assert_eq!(t.fetch_count(), 3);
    }

    #[test]
    fn clones_share_state() {
        let t = CommTracker::new();
        let t2 = t.clone();
        t2.add_features(1, 1);
        assert_eq!(t.feature_bytes(), 4);
    }

    #[test]
    fn report_mean() {
        let r = CommReport {
            epoch_bytes: vec![100, 300],
            total_structure_bytes: 150,
            total_feature_bytes: 250,
        };
        assert_eq!(r.mean_epoch_bytes(), 200);
        assert_eq!(r.total_bytes(), 400);
        assert!(CommReport::default().mean_epoch_bytes() == 0);
    }

    #[test]
    fn tracker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CommTracker>();
    }
}
