use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Bytes per node identifier on the wire (DGL ships int64 ids).
pub const BYTES_PER_NODE_ID: u64 = 8;
/// Bytes per transferred edge (source id + destination id).
pub const BYTES_PER_EDGE: u64 = 2 * BYTES_PER_NODE_ID;
/// Bytes per feature element (`f32`).
pub const BYTES_PER_FEATURE: u64 = 4;

/// Thread-safe meter of master→worker graph-data transfer.
///
/// Cloning shares the underlying counters, so one tracker can be handed to
/// every worker view of a cluster and read by the coordinator. This is the
/// measurement behind Figures 4, 8, 9, 13 and Table III: "the total
/// cumulative amount of data transferred from the master server to all
/// workers for one training epoch".
///
/// # Examples
///
/// ```
/// use splpg_dist::CommTracker;
/// let t = CommTracker::new();
/// t.add_structure(10, 4);
/// t.add_features(3, 128);
/// assert_eq!(t.structure_bytes(), 10 * 16 + 4 * 8);
/// assert_eq!(t.feature_bytes(), 3 * 128 * 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommTracker {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    structure: AtomicU64,
    features: AtomicU64,
    fetches: AtomicU64,
    structure_edges: AtomicU64,
    structure_nodes: AtomicU64,
    feature_elems: AtomicU64,
    structure_wire: AtomicU64,
    feature_wire: AtomicU64,
    feature_bus_elems: AtomicU64,
}

impl CommTracker {
    /// A fresh tracker with zeroed counters.
    pub fn new() -> Self {
        CommTracker::default()
    }

    /// Records a structure transfer of `edges` edges and `nodes` node
    /// ids, shipped uncompressed (wire bytes = raw bytes).
    pub fn add_structure(&self, edges: u64, nodes: u64) {
        self.add_structure_wire(edges, nodes, edges * BYTES_PER_EDGE + nodes * BYTES_PER_NODE_ID);
    }

    /// Records a structure transfer of `edges` edges and `nodes` node
    /// ids that cost `wire_bytes` on the wire under the active codec.
    pub fn add_structure_wire(&self, edges: u64, nodes: u64, wire_bytes: u64) {
        self.inner
            .structure
            .fetch_add(edges * BYTES_PER_EDGE + nodes * BYTES_PER_NODE_ID, Ordering::Relaxed);
        self.inner.structure_edges.fetch_add(edges, Ordering::Relaxed);
        self.inner.structure_nodes.fetch_add(nodes, Ordering::Relaxed);
        self.inner.structure_wire.fetch_add(wire_bytes, Ordering::Relaxed);
        self.inner.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feature transfer of `rows` rows of width `dim`, shipped
    /// uncompressed (wire bytes = raw bytes).
    pub fn add_features(&self, rows: u64, dim: u64) {
        self.add_features_wire(rows, dim, rows * dim * BYTES_PER_FEATURE);
    }

    /// Records a feature transfer of `rows` rows of width `dim` that
    /// cost `wire_bytes` on the wire under the active codec.
    pub fn add_features_wire(&self, rows: u64, dim: u64, wire_bytes: u64) {
        self.inner
            .features
            .fetch_add(rows * dim * BYTES_PER_FEATURE, Ordering::Relaxed);
        self.inner.feature_elems.fetch_add(rows * dim, Ordering::Relaxed);
        self.inner.feature_wire.fetch_add(wire_bytes, Ordering::Relaxed);
        self.inner.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a feature transfer of `rows` rows of width `dim` served
    /// zero-copy over the shared-memory bus: metered on the local-bus
    /// plane only, never on the raw-feature or wire planes.
    pub fn add_features_bus(&self, rows: u64, dim: u64) {
        self.inner.feature_bus_elems.fetch_add(rows * dim, Ordering::Relaxed);
        self.inner.fetches.fetch_add(1, Ordering::Relaxed);
    }

    /// Cumulative structure bytes.
    pub fn structure_bytes(&self) -> u64 {
        self.inner.structure.load(Ordering::Relaxed)
    }

    /// Cumulative feature bytes.
    pub fn feature_bytes(&self) -> u64 {
        self.inner.features.load(Ordering::Relaxed)
    }

    /// Cumulative total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.structure_bytes() + self.feature_bytes()
    }

    /// Number of individual fetch operations.
    pub fn fetch_count(&self) -> u64 {
        self.inner.fetches.load(Ordering::Relaxed)
    }

    /// Raw count of remotely-fetched edges (the quantity behind
    /// [`structure_bytes`](CommTracker::structure_bytes)).
    pub fn structure_edges(&self) -> u64 {
        self.inner.structure_edges.load(Ordering::Relaxed)
    }

    /// Raw count of remotely-fetched node identifiers.
    pub fn structure_nodes(&self) -> u64 {
        self.inner.structure_nodes.load(Ordering::Relaxed)
    }

    /// Raw count of remotely-fetched feature elements (`f32` scalars).
    pub fn feature_elems(&self) -> u64 {
        self.inner.feature_elems.load(Ordering::Relaxed)
    }

    /// On-wire structure bytes under the active codec (equals
    /// [`structure_bytes`](CommTracker::structure_bytes) when
    /// compression is off).
    pub fn structure_wire_bytes(&self) -> u64 {
        self.inner.structure_wire.load(Ordering::Relaxed)
    }

    /// On-wire feature bytes under the active codec (equals
    /// [`feature_bytes`](CommTracker::feature_bytes) when compression
    /// is off).
    pub fn feature_wire_bytes(&self) -> u64 {
        self.inner.feature_wire.load(Ordering::Relaxed)
    }

    /// Cumulative on-wire total bytes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.structure_wire_bytes() + self.feature_wire_bytes()
    }

    /// Raw count of feature elements served over the shared-memory bus.
    pub fn feature_bus_elems(&self) -> u64 {
        self.inner.feature_bus_elems.load(Ordering::Relaxed)
    }

    /// Bus-plane feature bytes, priced at the raw byte model (the bytes
    /// those rows *would* have cost uncompressed on the wire).
    pub fn feature_bus_bytes(&self) -> u64 {
        self.feature_bus_elems() * BYTES_PER_FEATURE
    }
}

/// Per-worker communication meters for a whole cluster.
///
/// Each worker's view writes into its own [`CommTracker`], so a worker's
/// remote traffic can be shipped back over the wire as a
/// [`FetchLedger`](splpg_net::FetchLedger) delta and reconciled against
/// what the master actually received. The summing accessors keep the
/// aggregate-meter interface that predates per-worker metering.
#[derive(Debug, Clone, Default)]
pub struct CommMeter {
    workers: Vec<CommTracker>,
}

impl CommMeter {
    /// A meter with one zeroed tracker per worker.
    pub fn new(num_workers: usize) -> Self {
        CommMeter { workers: (0..num_workers).map(|_| CommTracker::new()).collect() }
    }

    /// The tracker of one worker.
    pub fn worker(&self, w: usize) -> &CommTracker {
        &self.workers[w]
    }

    /// Number of workers metered.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Cluster-wide structure bytes.
    pub fn structure_bytes(&self) -> u64 {
        self.workers.iter().map(CommTracker::structure_bytes).sum()
    }

    /// Cluster-wide feature bytes.
    pub fn feature_bytes(&self) -> u64 {
        self.workers.iter().map(CommTracker::feature_bytes).sum()
    }

    /// Cluster-wide total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.structure_bytes() + self.feature_bytes()
    }

    /// Cluster-wide fetch-operation count.
    pub fn fetch_count(&self) -> u64 {
        self.workers.iter().map(CommTracker::fetch_count).sum()
    }

    /// Cluster-wide on-wire structure bytes.
    pub fn structure_wire_bytes(&self) -> u64 {
        self.workers.iter().map(CommTracker::structure_wire_bytes).sum()
    }

    /// Cluster-wide on-wire feature bytes.
    pub fn feature_wire_bytes(&self) -> u64 {
        self.workers.iter().map(CommTracker::feature_wire_bytes).sum()
    }

    /// Cluster-wide on-wire total bytes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.structure_wire_bytes() + self.feature_wire_bytes()
    }

    /// Cluster-wide bus-plane feature elements.
    pub fn feature_bus_elems(&self) -> u64 {
        self.workers.iter().map(CommTracker::feature_bus_elems).sum()
    }

    /// Cluster-wide bus-plane feature bytes (raw byte model).
    pub fn feature_bus_bytes(&self) -> u64 {
        self.workers.iter().map(CommTracker::feature_bus_bytes).sum()
    }
}

/// Per-epoch communication totals of a training run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommReport {
    /// Total raw bytes transferred in each epoch.
    pub epoch_bytes: Vec<u64>,
    /// Structure/feature breakdown of the final cumulative totals.
    pub total_structure_bytes: u64,
    /// Cumulative feature bytes at the end of training.
    pub total_feature_bytes: u64,
    /// Cumulative on-wire structure bytes under the active codec.
    pub total_structure_wire_bytes: u64,
    /// Cumulative on-wire feature bytes under the active codec.
    pub total_feature_wire_bytes: u64,
    /// Cumulative feature bytes served over the shared-memory bus
    /// (raw byte model) — the local plane of the local-vs-wire axis.
    pub total_feature_bus_bytes: u64,
}

impl CommReport {
    /// Mean bytes per epoch (0 when no epochs ran).
    pub fn mean_epoch_bytes(&self) -> u64 {
        if self.epoch_bytes.is_empty() {
            0
        } else {
            self.epoch_bytes.iter().sum::<u64>() / self.epoch_bytes.len() as u64
        }
    }

    /// Cumulative total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_structure_bytes + self.total_feature_bytes
    }

    /// Human-readable gigabytes for the mean epoch.
    pub fn mean_epoch_gb(&self) -> f64 {
        self.mean_epoch_bytes() as f64 / 1e9
    }

    /// Cumulative on-wire total bytes.
    pub fn total_wire_bytes(&self) -> u64 {
        self.total_structure_wire_bytes + self.total_feature_wire_bytes
    }

    /// Raw-over-wire compression ratio. A zero on *either* side of the
    /// division — an empty-traffic run, or a bus-only run with no wire
    /// bytes at all — reports 1.0 rather than NaN/inf, so downstream
    /// tables never print a non-finite ratio.
    pub fn compression_ratio(&self) -> f64 {
        if self.total_wire_bytes() == 0 || self.total_bytes() == 0 {
            1.0
        } else {
            self.total_bytes() as f64 / self.total_wire_bytes() as f64
        }
    }

    /// Fraction of feature bytes served over the shared-memory bus
    /// instead of the wire, in `[0, 1]` (0.0 when no features moved at
    /// all — never NaN).
    pub fn bus_fraction(&self) -> f64 {
        let total = self.total_feature_bytes + self.total_feature_bus_bytes;
        if total == 0 {
            0.0
        } else {
            self.total_feature_bus_bytes as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let t = CommTracker::new();
        t.add_structure(5, 2);
        t.add_structure(1, 0);
        assert_eq!(t.structure_bytes(), 6 * BYTES_PER_EDGE + 2 * BYTES_PER_NODE_ID);
        t.add_features(10, 16);
        assert_eq!(t.feature_bytes(), 640);
        assert_eq!(t.total_bytes(), t.structure_bytes() + 640);
        assert_eq!(t.fetch_count(), 3);
    }

    #[test]
    fn clones_share_state() {
        let t = CommTracker::new();
        let t2 = t.clone();
        t2.add_features(1, 1);
        assert_eq!(t.feature_bytes(), 4);
    }

    #[test]
    fn report_mean() {
        let r = CommReport {
            epoch_bytes: vec![100, 300],
            total_structure_bytes: 150,
            total_feature_bytes: 250,
            total_structure_wire_bytes: 75,
            total_feature_wire_bytes: 125,
            total_feature_bus_bytes: 0,
        };
        assert_eq!(r.mean_epoch_bytes(), 200);
        assert_eq!(r.total_bytes(), 400);
        assert_eq!(r.total_wire_bytes(), 200);
        assert!((r.compression_ratio() - 2.0).abs() < 1e-12);
        assert!(CommReport::default().mean_epoch_bytes() == 0);
        assert!((CommReport::default().compression_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_accessors_are_finite_on_empty_and_bus_only_traffic() {
        // Empty run: both planes zero.
        let empty = CommReport::default();
        assert!(empty.compression_ratio().is_finite());
        assert!((empty.compression_ratio() - 1.0).abs() < 1e-12);
        assert!((empty.bus_fraction() - 0.0).abs() < 1e-12);
        // Bus-only run: wire planes zero, bus plane populated — the
        // raw/wire ratio must still come out 1.0, never inf.
        let bus_only =
            CommReport { total_feature_bus_bytes: 4096, ..CommReport::default() };
        assert!((bus_only.compression_ratio() - 1.0).abs() < 1e-12);
        assert!((bus_only.bus_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bus_plane_is_metered_separately_from_raw_and_wire() {
        let t = CommTracker::new();
        t.add_features(2, 8);
        t.add_features_bus(3, 8);
        // Bus rows never leak into the raw-feature or wire planes.
        assert_eq!(t.feature_bytes(), 2 * 8 * BYTES_PER_FEATURE);
        assert_eq!(t.feature_wire_bytes(), 2 * 8 * BYTES_PER_FEATURE);
        assert_eq!(t.feature_bus_elems(), 24);
        assert_eq!(t.feature_bus_bytes(), 24 * BYTES_PER_FEATURE);
        assert_eq!(t.fetch_count(), 2);

        let m = CommMeter::new(2);
        m.worker(0).add_features_bus(1, 4);
        m.worker(1).add_features_bus(2, 4);
        assert_eq!(m.feature_bus_elems(), 12);
        assert_eq!(m.feature_bus_bytes(), 48);
    }

    #[test]
    fn tracker_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CommTracker>();
    }

    #[test]
    fn hand_computed_byte_counts() {
        // 3 edges + 2 node ids: 3*16 + 2*8 = 64 bytes; 7 rows of dim 5:
        // 7*5*4 = 140 bytes.
        let t = CommTracker::new();
        t.add_structure(3, 2);
        t.add_features(7, 5);
        assert_eq!(t.structure_bytes(), 64);
        assert_eq!(t.feature_bytes(), 140);
        assert_eq!(t.total_bytes(), 204);
        // Raw counts behind those bytes.
        assert_eq!(t.structure_edges(), 3);
        assert_eq!(t.structure_nodes(), 2);
        assert_eq!(t.feature_elems(), 35);
        // Bytes are always reconstructible from the raw counts.
        assert_eq!(
            t.total_bytes(),
            t.structure_edges() * BYTES_PER_EDGE
                + t.structure_nodes() * BYTES_PER_NODE_ID
                + t.feature_elems() * BYTES_PER_FEATURE
        );
    }

    #[test]
    fn meter_sums_per_worker_trackers() {
        let m = CommMeter::new(3);
        m.worker(0).add_structure(1, 1);
        m.worker(2).add_features(2, 4);
        assert_eq!(m.num_workers(), 3);
        assert_eq!(m.structure_bytes(), BYTES_PER_EDGE + BYTES_PER_NODE_ID);
        assert_eq!(m.feature_bytes(), 32);
        assert_eq!(m.total_bytes(), m.structure_bytes() + m.feature_bytes());
        assert_eq!(m.fetch_count(), 2);
        assert_eq!(m.worker(1).total_bytes(), 0, "trackers are independent");
    }
}
