/// Which partitioning algorithm a strategy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionerKind {
    /// METIS-like multilevel partitioning (minimum edge cut).
    Metis,
    /// RandomTMA: independent uniform node assignment.
    Random,
    /// SuperTMA: METIS mini-clusters assigned randomly.
    Super,
}

/// What remote graph data a worker may access during training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RemoteKind {
    /// No remote access: the worker only sees its own subgraph.
    None,
    /// Complete data sharing: the entire graph + features through the
    /// master's shared memory (every fetch metered) — the `+` variants.
    Full,
    /// SpLPG: sparsified copies of the other partitions (fetches metered).
    Sparsified,
}

/// Where negative-sample destinations are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NegativeSpace {
    /// Only the worker's own partition (the pathology of Section III-B).
    Local,
    /// The entire node set of the original graph.
    Global,
}

/// A distributed training strategy from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Strategy {
    /// Single-worker training on the full graph (reference accuracy).
    Centralized,
    /// PSGD-PA: METIS partitions, periodic model averaging, local-only
    /// data and negatives.
    PsgdPa,
    /// PSGD-PA with the complete data-sharing strategy.
    PsgdPaPlus,
    /// RandomTMA (Zhu et al.).
    RandomTma,
    /// RandomTMA with complete data sharing.
    RandomTmaPlus,
    /// SuperTMA (Zhu et al.).
    SuperTma,
    /// SuperTMA with complete data sharing.
    SuperTmaPlus,
    /// LLCG: PSGD-PA plus a master-side global correction step after each
    /// synchronization (Ramezani et al.).
    Llcg,
    /// SpLPG: halo-retaining METIS partitions + sparsified remote
    /// partitions for global negative sampling (this paper).
    SpLpg,
    /// SpLPG+ ablation: SpLPG with complete (unsparsified) data sharing.
    SpLpgPlus,
    /// SpLPG- ablation: halo retention but no remote access (local
    /// negatives).
    SpLpgMinus,
    /// SpLPG-- ablation: no halo, no remote access (equivalent to
    /// PSGD-PA's data view).
    SpLpgMinusMinus,
}

/// The data-plane configuration a [`Strategy`] implies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategySpec {
    /// Partitioner.
    pub partitioner: PartitionerKind,
    /// Whether partitions retain full neighbor lists + halo features
    /// (Algorithm 1 lines 2–3).
    pub halo: bool,
    /// Remote data access mode.
    pub remote: RemoteKind,
    /// Negative sample space.
    pub negatives: NegativeSpace,
    /// Whether the master runs LLCG's global correction step after each
    /// synchronization.
    pub global_correction: bool,
}

impl Strategy {
    /// Every strategy, in the paper's presentation order.
    pub const ALL: [Strategy; 12] = [
        Strategy::Centralized,
        Strategy::PsgdPa,
        Strategy::PsgdPaPlus,
        Strategy::RandomTma,
        Strategy::RandomTmaPlus,
        Strategy::SuperTma,
        Strategy::SuperTmaPlus,
        Strategy::Llcg,
        Strategy::SpLpg,
        Strategy::SpLpgPlus,
        Strategy::SpLpgMinus,
        Strategy::SpLpgMinusMinus,
    ];

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Centralized => "Centralized",
            Strategy::PsgdPa => "PSGD-PA",
            Strategy::PsgdPaPlus => "PSGD-PA+",
            Strategy::RandomTma => "RandomTMA",
            Strategy::RandomTmaPlus => "RandomTMA+",
            Strategy::SuperTma => "SuperTMA",
            Strategy::SuperTmaPlus => "SuperTMA+",
            Strategy::Llcg => "LLCG",
            Strategy::SpLpg => "SpLPG",
            Strategy::SpLpgPlus => "SpLPG+",
            Strategy::SpLpgMinus => "SpLPG-",
            Strategy::SpLpgMinusMinus => "SpLPG--",
        }
    }

    /// The data-plane spec of this strategy.
    ///
    /// # Panics
    ///
    /// Panics for [`Strategy::Centralized`], which has no distributed data
    /// plane (handle it before partitioning).
    pub fn spec(&self) -> StrategySpec {
        let base = StrategySpec {
            partitioner: PartitionerKind::Metis,
            halo: false,
            remote: RemoteKind::None,
            negatives: NegativeSpace::Local,
            global_correction: false,
        };
        match self {
            Strategy::Centralized => {
                panic!("centralized training has no distributed data plane")
            }
            Strategy::PsgdPa => base,
            Strategy::PsgdPaPlus => StrategySpec {
                remote: RemoteKind::Full,
                negatives: NegativeSpace::Global,
                ..base
            },
            Strategy::RandomTma => {
                StrategySpec { partitioner: PartitionerKind::Random, ..base }
            }
            Strategy::RandomTmaPlus => StrategySpec {
                partitioner: PartitionerKind::Random,
                remote: RemoteKind::Full,
                negatives: NegativeSpace::Global,
                ..base
            },
            Strategy::SuperTma => {
                StrategySpec { partitioner: PartitionerKind::Super, ..base }
            }
            Strategy::SuperTmaPlus => StrategySpec {
                partitioner: PartitionerKind::Super,
                remote: RemoteKind::Full,
                negatives: NegativeSpace::Global,
                ..base
            },
            Strategy::Llcg => StrategySpec { global_correction: true, ..base },
            Strategy::SpLpg => StrategySpec {
                halo: true,
                remote: RemoteKind::Sparsified,
                negatives: NegativeSpace::Global,
                ..base
            },
            Strategy::SpLpgPlus => StrategySpec {
                halo: true,
                remote: RemoteKind::Full,
                negatives: NegativeSpace::Global,
                ..base
            },
            Strategy::SpLpgMinus => StrategySpec { halo: true, ..base },
            Strategy::SpLpgMinusMinus => base,
        }
    }

    /// Whether this strategy needs the effective-resistance sparsifier.
    pub fn needs_sparsification(&self) -> bool {
        !matches!(self, Strategy::Centralized) && self.spec().remote == RemoteKind::Sparsified
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plus_variants_share_everything() {
        for s in [Strategy::PsgdPaPlus, Strategy::RandomTmaPlus, Strategy::SuperTmaPlus] {
            let spec = s.spec();
            assert_eq!(spec.remote, RemoteKind::Full);
            assert_eq!(spec.negatives, NegativeSpace::Global);
            assert!(!spec.halo);
        }
    }

    #[test]
    fn splpg_spec_matches_paper() {
        let spec = Strategy::SpLpg.spec();
        assert!(spec.halo, "SpLPG retains full neighbors");
        assert_eq!(spec.remote, RemoteKind::Sparsified);
        assert_eq!(spec.negatives, NegativeSpace::Global);
        assert!(Strategy::SpLpg.needs_sparsification());
        assert!(!Strategy::SpLpgPlus.needs_sparsification());
    }

    #[test]
    fn ablations_degrade_in_order() {
        // SpLPG-- drops halo relative to SpLPG-.
        assert!(Strategy::SpLpgMinus.spec().halo);
        assert!(!Strategy::SpLpgMinusMinus.spec().halo);
        // Both lose global negatives.
        assert_eq!(Strategy::SpLpgMinus.spec().negatives, NegativeSpace::Local);
    }

    #[test]
    fn llcg_is_psgd_with_correction() {
        let llcg = Strategy::Llcg.spec();
        let psgd = Strategy::PsgdPa.spec();
        assert!(llcg.global_correction);
        assert_eq!(
            StrategySpec { global_correction: false, ..llcg },
            psgd
        );
    }

    #[test]
    fn names_match_paper_labels() {
        assert_eq!(Strategy::PsgdPaPlus.name(), "PSGD-PA+");
        assert_eq!(Strategy::SpLpgMinusMinus.to_string(), "SpLPG--");
        assert_eq!(Strategy::ALL.len(), 12);
    }

    #[test]
    #[should_panic(expected = "centralized")]
    fn centralized_has_no_spec() {
        let _ = Strategy::Centralized.spec();
    }
}
