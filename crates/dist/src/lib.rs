//! Distributed GNN training engine — the SpLPG framework and every
//! baseline the paper compares against.
//!
//! The cluster of the paper (one master + `p` GPU workers exchanging graph
//! data through shared memory) is simulated with OS threads:
//!
//! * [`CommTracker`] meters every byte of graph structure and node
//!   features a worker pulls from outside its own partition — the paper's
//!   communication-cost metric (cumulative master→worker transfer per
//!   training epoch);
//! * [`WorkerView`] gives each worker exactly the data its strategy
//!   allows: its partitioned subgraph (with or without halo/full-neighbor
//!   retention), plus optionally the full graph (complete data sharing,
//!   the `+` variants) or the *sparsified* remote partitions (SpLPG);
//! * [`Strategy`] enumerates the twelve training configurations of the
//!   evaluation (Centralized, PSGD-PA(+), RandomTMA(+), SuperTMA(+),
//!   LLCG, SpLPG, SpLPG+, SpLPG-, SpLPG--);
//! * [`DistTrainer`] runs synchronous data-parallel training with model
//!   averaging (per epoch) or gradient averaging (per batch, Algorithm 1
//!   lines 29–30), reproducing the paper's training pipeline end to end.
//!
//! # Examples
//!
//! ```no_run
//! use splpg_datasets::{DatasetSpec, Scale};
//! use splpg_dist::{DistConfig, DistTrainer, Strategy};
//! use splpg_gnn::trainer::{ModelKind, TrainConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = DatasetSpec::cora().generate(Scale::tiny(), 1)?;
//! let dist = DistConfig { num_workers: 4, strategy: Strategy::SpLpg, ..Default::default() };
//! let train = TrainConfig { epochs: 5, ..Default::default() };
//! let outcome = DistTrainer::new(dist, train).run(ModelKind::GraphSage, &data)?;
//! println!("hits@k = {:.3}, comm = {} bytes/epoch",
//!          outcome.test_hits, outcome.comm.mean_epoch_bytes());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod comm;
mod runtime;
mod setup;
mod strategy;
mod trainer;
mod view;

pub use comm::{
    CommMeter, CommReport, CommTracker, BYTES_PER_EDGE, BYTES_PER_FEATURE, BYTES_PER_NODE_ID,
};
pub use runtime::NetReport;
pub use setup::{ClusterSetup, SparsifierKind, WorkerData};
pub use splpg_net::process::WorkerEnv;
pub use splpg_net::{CodecConfig, FaultPlan, FeatCodec, RetryPolicy, StructCodec, TcpConfig};
pub use strategy::{NegativeSpace, PartitionerKind, RemoteKind, Strategy, StrategySpec};
pub use trainer::{
    tcp_worker_entry, DistConfig, DistOutcome, DistTrainer, EpochStats, FaultConfig, ShmBusMode,
    SyncMethod,
};
pub use view::{RemoteMode, WorkerView};

/// Errors from distributed training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// Cluster configuration invalid (worker count, etc.).
    InvalidConfig(String),
    /// Partitioning failed.
    Partition(String),
    /// Sparsification failed.
    Sparsify(String),
    /// A worker failed during training.
    Worker(String),
    /// Evaluation failed.
    Eval(String),
    /// Fault-injection, retry, or quorum parameters are invalid.
    InvalidFault(String),
    /// Fewer workers than the configured quorum answered a
    /// synchronization unit even after every retry.
    QuorumLost(String),
    /// Spawning, rendezvous, or reaping of worker processes failed in a
    /// multi-process cluster run.
    Process(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::InvalidConfig(msg) => write!(f, "invalid cluster config: {msg}"),
            DistError::Partition(msg) => write!(f, "partitioning failed: {msg}"),
            DistError::Sparsify(msg) => write!(f, "sparsification failed: {msg}"),
            DistError::Worker(msg) => write!(f, "worker failed: {msg}"),
            DistError::Eval(msg) => write!(f, "evaluation failed: {msg}"),
            DistError::InvalidFault(msg) => {
                write!(f, "invalid fault/retry/quorum config: {msg}")
            }
            DistError::QuorumLost(msg) => write!(f, "quorum lost: {msg}"),
            DistError::Process(msg) => write!(f, "worker process failure: {msg}"),
        }
    }
}

impl std::error::Error for DistError {}
