use std::sync::Arc;
// splpg-lint: allow(wallclock) — Table II reports preprocessing wall-clock; timings are part of ClusterSetup's result, not of any training decision
use std::time::{Duration, Instant};

use splpg_rng::rngs::StdRng;
use splpg_rng::{Rng, SeedableRng};
use splpg_graph::{Edge, FeatureMatrix, Graph, NodeId};
use splpg_partition::{MetisLike, Partition, Partitioner, RandomTma, SuperTma};
use splpg_sparsify::{
    DegreeSparsifier, ExactSparsifier, JlSparsifier, SpanningForestSparsifier, SparsifyConfig,
    Sparsifier, UniformSparsifier,
};

use crate::{
    CommMeter, DistError, NegativeSpace, PartitionerKind, RemoteKind, RemoteMode, StrategySpec,
    WorkerView,
};

/// Which sparsification algorithm SpLPG's shared remote copies use.
///
/// The paper uses the degree-based effective-resistance approximation;
/// the alternatives quantify that choice (the `ablation_sparsifier`
/// experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SparsifierKind {
    /// Degree-based effective-resistance scores (the paper, Theorem 2).
    #[default]
    Degree,
    /// Uniform edge sampling (no importance weighting).
    Uniform,
    /// BFS spanning forest + uniform remainder (connectivity preserving).
    SpanningForest,
    /// Exact effective resistances through the preconditioned multi-RHS
    /// solver engine with per-node reuse (one solve per distinct edge
    /// endpoint). Partition-local graphs are disconnected in the global
    /// id space; the engine solves per component, so this works
    /// unchanged here.
    Exact,
    /// Johnson–Lindenstrauss resistance sketch
    /// ([`SparsifierKind::JL_PROJECTIONS`] blocked solves per partition)
    /// — the middle ground between [`SparsifierKind::Exact`] and
    /// [`SparsifierKind::Degree`] in the ablation.
    Jl,
}

impl SparsifierKind {
    /// Random projections used by [`SparsifierKind::Jl`]: enough for a
    /// stable sampling distribution on the partition sizes the ablation
    /// runs at, small enough to stay cheap.
    pub const JL_PROJECTIONS: usize = 64;
}

/// One worker's training inputs.
#[derive(Debug, Clone)]
pub struct WorkerData {
    /// Worker index (= partition index).
    pub worker_id: usize,
    /// Metered data-plane view.
    pub view: WorkerView,
    /// Positive training edges this worker draws batches from (its
    /// partitioned subgraph's edges; cross-partition edges appear on both
    /// sides under halo retention, per Algorithm 1).
    pub positives: Vec<Edge>,
    /// Node set that per-source negative destinations are drawn from.
    pub negative_space: Vec<NodeId>,
}

/// A fully-prepared cluster: per-worker data views plus preprocessing
/// timings (Table II reports the sparsification time).
#[derive(Debug)]
pub struct ClusterSetup {
    /// Per-worker inputs.
    pub workers: Vec<WorkerData>,
    /// Per-worker communication meters (summing accessors give the
    /// cluster-wide view).
    pub tracker: CommMeter,
    /// The node→partition assignment used.
    pub partition: Partition,
    /// Wall-clock time of graph partitioning.
    pub partition_time: Duration,
    /// Wall-clock time of the effective-resistance sparsification of all
    /// partitions (zero when the strategy doesn't sparsify).
    pub sparsify_time: Duration,
}

impl ClusterSetup {
    /// Partitions `graph` (the training message-passing graph) and builds
    /// every worker's view per `spec`.
    ///
    /// `alpha` is the sparsification level `L^i = alpha |E^i|` (paper
    /// default 0.15); ignored unless the strategy shares sparsified
    /// partitions.
    ///
    /// # Errors
    ///
    /// Propagates partitioning and sparsification failures.
    pub fn build(
        graph: &Arc<Graph>,
        features: &Arc<FeatureMatrix>,
        spec: StrategySpec,
        num_workers: usize,
        alpha: f64,
        seed: u64,
    ) -> Result<Self, DistError> {
        Self::build_with_sparsifier(graph, features, spec, num_workers, alpha, seed, SparsifierKind::Degree)
    }

    /// Like [`ClusterSetup::build`] but with an explicit sparsifier choice
    /// for the shared remote copies.
    ///
    /// # Errors
    ///
    /// Propagates partitioning and sparsification failures.
    #[allow(clippy::too_many_arguments)]
    pub fn build_with_sparsifier(
        graph: &Arc<Graph>,
        features: &Arc<FeatureMatrix>,
        spec: StrategySpec,
        num_workers: usize,
        alpha: f64,
        seed: u64,
        sparsifier_kind: SparsifierKind,
    ) -> Result<Self, DistError> {
        let n = graph.num_nodes();
        let mut rng = StdRng::seed_from_u64(seed);
        let t0 = Instant::now(); // splpg-lint: allow(wallclock) — reported partition_time
        let partition = match spec.partitioner {
            PartitionerKind::Metis => MetisLike::default().partition(graph, num_workers, &mut rng),
            PartitionerKind::Random => {
                RandomTma.partition(graph, num_workers, &mut rng)
            }
            PartitionerKind::Super => SuperTma::default().partition(graph, num_workers, &mut rng),
        }
        .map_err(|e| DistError::Partition(e.to_string()))?;
        let partition_time = t0.elapsed();

        // Per-partition local structures in the global id space.
        let mut local_edges: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); num_workers];
        for e in graph.edges() {
            let pu = partition.part_of(e.src) as usize;
            let pv = partition.part_of(e.dst) as usize;
            if spec.halo {
                // Cross-partition edges are kept in both partitions so the
                // full-neighbor list of every owned node is preserved.
                local_edges[pu].push((e.src, e.dst));
                if pv != pu {
                    local_edges[pv].push((e.src, e.dst));
                }
            } else if pu == pv {
                local_edges[pu].push((e.src, e.dst));
            }
        }

        let tracker = CommMeter::new(num_workers);
        // Per-partition CSR builds are independent: fan out one per pool
        // slot (partitions are few but heavy, so min 1 item per thread).
        let pool = splpg_par::global();
        let locals: Vec<Arc<Graph>> = pool
            .parallel_map_chunks(&local_edges, 1, |_, edges| {
                Graph::from_edges(n, edges).map(Arc::new)
            })
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| DistError::Partition(e.to_string()))?;

        // Sparsified copies (SpLPG): one per partition, timed for Table
        // II. Each partition sparsifies with its own RNG stream derived
        // from a single draw on the setup RNG, so the result depends only
        // on the seed, never on the thread count.
        let mut sparsify_time = Duration::ZERO;
        let sparsified: Option<Arc<Vec<Graph>>> = if spec.remote == RemoteKind::Sparsified {
            let config = SparsifyConfig::with_alpha(alpha);
            let sparsify_seed: u64 = rng.gen();
            let t1 = Instant::now(); // splpg-lint: allow(wallclock) — reported sparsify_time
            let parts = pool
                .parallel_map_chunks(&locals, 1, |i, g| {
                    let mut part_rng = splpg_rng::derive_stream(sparsify_seed, i as u64);
                    match sparsifier_kind {
                        SparsifierKind::Degree => {
                            DegreeSparsifier::new(config).sparsify(g, &mut part_rng)
                        }
                        SparsifierKind::Uniform => {
                            UniformSparsifier::new(config).sparsify(g, &mut part_rng)
                        }
                        SparsifierKind::SpanningForest => {
                            SpanningForestSparsifier::new(config).sparsify(g, &mut part_rng)
                        }
                        SparsifierKind::Exact => {
                            ExactSparsifier::new(config).sparsify(g, &mut part_rng)
                        }
                        SparsifierKind::Jl => {
                            JlSparsifier::new(config, SparsifierKind::JL_PROJECTIONS)
                                .sparsify(g, &mut part_rng)
                        }
                    }
                })
                .into_iter()
                .collect::<Result<Vec<_>, _>>()
                .map_err(|e| DistError::Sparsify(e.to_string()))?;
            sparsify_time = t1.elapsed();
            Some(Arc::new(parts))
        } else {
            None
        };
        let owner: Arc<Vec<u32>> = Arc::new(partition.assignments().to_vec());

        // Per-worker view assembly (halo bitmaps, positive-edge copies)
        // reads only shared state: one worker per pool slot.
        let worker_ids: Vec<usize> = (0..num_workers).collect();
        let partition_ref = &partition;
        let sparsified_ref = &sparsified;
        let workers: Vec<WorkerData> = pool.parallel_map_chunks(&worker_ids, 1, |_, &w| {
            let core: Vec<NodeId> = partition_ref.part_nodes(w as u32);
            let mut structure_local = vec![false; n];
            let mut feature_local = vec![false; n];
            for &v in &core {
                structure_local[v as usize] = true;
                feature_local[v as usize] = true;
            }
            if spec.halo {
                // Halo nodes: partial adjacency + features stored locally.
                for &v in &core {
                    for &u in graph.neighbors(v) {
                        structure_local[u as usize] = true;
                        feature_local[u as usize] = true;
                    }
                }
            }
            let remote = match spec.remote {
                RemoteKind::None => RemoteMode::None,
                RemoteKind::Full => RemoteMode::Full { graph: Arc::clone(graph) },
                RemoteKind::Sparsified => RemoteMode::Sparsified {
                    parts: Arc::clone(sparsified_ref.as_ref().expect("built above")),
                    owner: Arc::clone(&owner),
                },
            };
            let view = WorkerView::new(
                Arc::clone(&locals[w]),
                Arc::new(structure_local),
                Arc::new(feature_local),
                Arc::clone(features),
                remote,
                tracker.worker(w).clone(),
            );
            let positives = locals[w].edges().to_vec();
            let negative_space = match spec.negatives {
                NegativeSpace::Local => core.clone(),
                NegativeSpace::Global => (0..n as NodeId).collect(),
            };
            WorkerData { worker_id: w, view, positives, negative_space }
        });
        Ok(ClusterSetup { workers, tracker, partition, partition_time, sparsify_time })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Strategy;
    use splpg_gnn::GraphAccess;

    fn fixture() -> (Arc<Graph>, Arc<FeatureMatrix>) {
        // Two cliques of 8 joined by one bridge.
        let mut b = splpg_graph::GraphBuilder::new(16);
        for base in [0u32, 8] {
            for i in 0..8 {
                for j in (i + 1)..8 {
                    b.add_edge(base + i, base + j).unwrap();
                }
            }
        }
        b.add_edge(0, 8).unwrap();
        let g = Arc::new(b.build());
        let f = Arc::new(FeatureMatrix::zeros(16, 4));
        (g, f)
    }

    #[test]
    fn psgd_pa_drops_cross_edges() {
        let (g, f) = fixture();
        let setup =
            ClusterSetup::build(&g, &f, Strategy::PsgdPa.spec(), 2, 0.15, 1).unwrap();
        let total: usize = setup.workers.iter().map(|w| w.positives.len()).sum();
        assert_eq!(total, g.num_edges() - setup.partition.edge_cut(&g));
        // Negative space is local.
        for w in &setup.workers {
            assert_eq!(w.negative_space.len(), 8);
        }
    }

    #[test]
    fn splpg_keeps_cross_edges_on_both_sides() {
        let (g, f) = fixture();
        let setup =
            ClusterSetup::build(&g, &f, Strategy::SpLpg.spec(), 2, 0.15, 1).unwrap();
        let total: usize = setup.workers.iter().map(|w| w.positives.len()).sum();
        assert_eq!(total, g.num_edges() + setup.partition.edge_cut(&g));
        for w in &setup.workers {
            assert_eq!(w.negative_space.len(), 16, "global negative space");
        }
        assert!(setup.sparsify_time > Duration::ZERO);
    }

    #[test]
    fn splpg_core_nodes_have_full_degree() {
        let (g, f) = fixture();
        let setup =
            ClusterSetup::build(&g, &f, Strategy::SpLpg.spec(), 2, 0.15, 1).unwrap();
        for w in &setup.workers {
            let view = w.view.clone();
            for &v in setup.partition.part_nodes(w.worker_id as u32).iter() {
                assert_eq!(
                    view.neighbors(v).len(),
                    g.degree(v),
                    "core node {v} of worker {} lost neighbors",
                    w.worker_id
                );
            }
        }
        // No metering happened: all those reads were local.
        assert_eq!(setup.tracker.total_bytes(), 0);
    }

    #[test]
    fn full_sharing_gives_global_negative_space() {
        let (g, f) = fixture();
        let setup =
            ClusterSetup::build(&g, &f, Strategy::PsgdPaPlus.spec(), 2, 0.15, 1).unwrap();
        for w in &setup.workers {
            assert_eq!(w.negative_space.len(), 16);
        }
        assert_eq!(setup.sparsify_time, Duration::ZERO);
    }

    #[test]
    fn sparsified_remote_has_fewer_edges() {
        let (g, f) = fixture();
        let setup =
            ClusterSetup::build(&g, &f, Strategy::SpLpg.spec(), 2, 0.15, 1).unwrap();
        // Fetch a remote node's neighbors; sparsified copy must be small.
        let w0 = setup.workers[0].view.clone();
        let remote_node = setup.partition.part_nodes(1)[3];
        let sparse_deg = w0.neighbors(remote_node).len();
        assert!(
            sparse_deg < g.degree(remote_node),
            "sparsified degree {sparse_deg} not below {}",
            g.degree(remote_node)
        );
    }

    #[test]
    fn setup_identical_across_thread_counts() {
        let (g, f) = fixture();
        let run = |threads: usize| {
            splpg_par::set_num_threads(threads);
            let s = ClusterSetup::build(&g, &f, Strategy::SpLpg.spec(), 4, 0.15, 7).unwrap();
            splpg_par::set_num_threads(0);
            s
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one.partition.assignments(), eight.partition.assignments());
        for (wa, wb) in one.workers.iter().zip(&eight.workers) {
            assert_eq!(wa.positives, wb.positives, "worker {}", wa.worker_id);
            assert_eq!(wa.negative_space, wb.negative_space, "worker {}", wa.worker_id);
            // Sparsified remote copies must match too: fetch a node owned
            // by another worker through both views.
            let other = (wa.worker_id + 1) % one.workers.len();
            let remote = one.partition.part_nodes(other as u32)[0];
            let va = wa.view.clone();
            let vb = wb.view.clone();
            assert_eq!(va.neighbors(remote), vb.neighbors(remote), "worker {}", wa.worker_id);
        }
    }

    #[test]
    fn solver_backed_sparsifiers_handle_partition_locals() {
        // Partition-local graphs keep all global node ids, so they are
        // disconnected by construction — the exact and JL kinds must
        // sparsify them via per-component solves, deterministically
        // across thread counts.
        let (g, f) = fixture();
        for kind in [SparsifierKind::Exact, SparsifierKind::Jl] {
            let run = |threads: usize| {
                splpg_par::set_num_threads(threads);
                let s = ClusterSetup::build_with_sparsifier(
                    &g,
                    &f,
                    Strategy::SpLpg.spec(),
                    2,
                    0.3,
                    11,
                    kind,
                )
                .unwrap();
                splpg_par::set_num_threads(0);
                s
            };
            let one = run(1);
            let four = run(4);
            // Remote sparsified copies exist and lost edges.
            let w0 = one.workers[0].view.clone();
            let remote_node = one.partition.part_nodes(1)[2];
            assert!(
                w0.neighbors(remote_node).len() <= g.degree(remote_node),
                "{kind:?}: sparsified copy grew a node's degree"
            );
            // Thread-count invariance through the solver paths.
            for (wa, wb) in one.workers.iter().zip(&four.workers) {
                let other = (wa.worker_id + 1) % one.workers.len();
                let remote = one.partition.part_nodes(other as u32)[0];
                let va = wa.view.clone();
                let vb = wb.view.clone();
                assert_eq!(
                    va.neighbors(remote),
                    vb.neighbors(remote),
                    "{kind:?}: worker {} diverged across thread counts",
                    wa.worker_id
                );
            }
        }
    }

    #[test]
    fn random_tma_partitions_differently() {
        let (g, f) = fixture();
        let metis =
            ClusterSetup::build(&g, &f, Strategy::PsgdPa.spec(), 2, 0.15, 1).unwrap();
        let random =
            ClusterSetup::build(&g, &f, Strategy::RandomTma.spec(), 2, 0.15, 1).unwrap();
        assert!(random.partition.edge_cut(&g) > metis.partition.edge_cut(&g));
    }
}
