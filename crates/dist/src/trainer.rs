use std::sync::{Barrier, Mutex};
use std::time::Duration;

use splpg_rng::rngs::StdRng;
use splpg_rng::seq::SliceRandom;
use splpg_rng::SeedableRng;
use splpg_datasets::Dataset;
use splpg_gnn::trainer::{
    batch_grads, evaluate_hits, train_centralized, ModelKind, TrainConfig,
};
use splpg_gnn::{
    FullFeatureAccess, FullGraphAccess, LinkPredictor, NeighborSampler,
    PerSourceNegativeSampler,
};
use splpg_nn::{average_grads, Adam, Optimizer, ParamSet};
use splpg_tensor::Tensor;

use crate::setup::{ClusterSetup, WorkerData};
use crate::{CommReport, DistError, Strategy};

/// How worker replicas are synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMethod {
    /// FedAvg-style model averaging once per epoch — what the paper's
    /// baselines use and what it reports ("their prediction performance
    /// remains more or less the same").
    ModelAveraging,
    /// Synchronous gradient averaging every mini-batch (Algorithm 1 lines
    /// 29–30), like PyTorch DDP's `all_reduce`.
    GradientAveraging,
}

/// Fault-injection configuration: each worker independently crashes for a
/// whole epoch with the given probability (it contributes nothing to that
/// epoch's synchronization and rejoins at the next one — the behaviour of
/// FedAvg-style systems under worker preemption).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-worker, per-epoch failure probability in `[0, 1)`.
    pub failure_probability: f64,
    /// Seed of the (deterministic) failure schedule.
    pub seed: u64,
}

impl FaultConfig {
    /// Whether `worker` is down during `epoch` (deterministic hash).
    pub fn is_down(&self, worker: usize, epoch: usize) -> bool {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for x in [worker as u64 + 1, epoch as u64 + 1] {
            h ^= x;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
        }
        (h as f64 / u64::MAX as f64) < self.failure_probability
    }
}

/// Cluster configuration for a distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of workers `p` (the paper uses 4, 8, 16).
    pub num_workers: usize,
    /// Training strategy.
    pub strategy: Strategy,
    /// Synchronization method.
    pub sync: SyncMethod,
    /// Sparsification level `alpha` (paper default 0.15).
    pub alpha: f64,
    /// Evaluate validation accuracy every this many epochs (1 = every
    /// epoch; evaluation is master-side and not metered).
    pub eval_every: usize,
    /// Seed for partitioning/sparsification.
    pub setup_seed: u64,
    /// Optional worker fault injection.
    pub faults: Option<FaultConfig>,
    /// Sparsification algorithm for the shared remote copies.
    pub sparsifier: crate::SparsifierKind,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            num_workers: 4,
            strategy: Strategy::SpLpg,
            sync: SyncMethod::ModelAveraging,
            alpha: 0.15,
            eval_every: 1,
            setup_seed: 17,
            faults: None,
            sparsifier: crate::SparsifierKind::default(),
        }
    }
}

/// Per-epoch statistics of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean worker training loss.
    pub mean_loss: f32,
    /// Validation Hits@K (when evaluated this epoch).
    pub valid_hits: Option<f64>,
    /// Master→worker bytes transferred during this epoch.
    pub comm_bytes: u64,
}

/// Outcome of a distributed training run.
#[derive(Debug)]
pub struct DistOutcome {
    /// Test Hits@K of the best-validation parameters.
    pub test_hits: f64,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Communication report.
    pub comm: CommReport,
    /// Partitioning wall-clock time.
    pub partition_time: Duration,
    /// Sparsification wall-clock time (Table II; zero if not sparsified).
    pub sparsify_time: Duration,
    /// `(epoch, worker)` pairs that were down due to fault injection.
    pub failures: Vec<(usize, usize)>,
}

/// Distributed trainer implementing Algorithm 1 and all baselines.
#[derive(Debug, Clone)]
pub struct DistTrainer {
    dist: DistConfig,
    train: TrainConfig,
}

struct WorkerState {
    model: LinkPredictor,
    params: ParamSet,
    opt: Adam,
    rng: StdRng,
    data: WorkerData,
}

impl DistTrainer {
    /// Creates a trainer from cluster + hyperparameter configuration.
    pub fn new(dist: DistConfig, train: TrainConfig) -> Self {
        DistTrainer { dist, train }
    }

    /// The cluster configuration.
    pub fn dist_config(&self) -> &DistConfig {
        &self.dist
    }

    /// The training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// Runs training of `kind` on `data` and returns accuracy +
    /// communication statistics.
    ///
    /// # Errors
    ///
    /// Propagates configuration, partitioning and worker failures.
    pub fn run(&self, kind: ModelKind, data: &Dataset) -> Result<DistOutcome, DistError> {
        if self.dist.strategy == Strategy::Centralized {
            return self.run_centralized(kind, data);
        }
        if self.dist.num_workers < 2 {
            return Err(DistError::InvalidConfig(
                "distributed strategies need at least 2 workers".to_string(),
            ));
        }
        let train_graph = std::sync::Arc::new(
            data.split
                .train_graph(data.graph.num_nodes())
                .map_err(|e| DistError::InvalidConfig(e.to_string()))?,
        );
        let features = std::sync::Arc::new(data.features.clone());
        let spec = self.dist.strategy.spec();
        let setup = ClusterSetup::build_with_sparsifier(
            &train_graph,
            &features,
            spec,
            self.dist.num_workers,
            self.dist.alpha,
            self.dist.setup_seed,
            self.dist.sparsifier,
        )?;

        // Global model (master) + identically-initialized worker replicas.
        let mut master_rng = StdRng::seed_from_u64(self.train.seed);
        let mut master_params = ParamSet::new();
        let master_model =
            self.train.build_model(kind, data.features.dim(), &mut master_params, &mut master_rng);
        let mut states: Vec<WorkerState> = setup
            .workers
            .iter()
            .map(|w| {
                let mut rng = StdRng::seed_from_u64(self.train.seed);
                let mut params = ParamSet::new();
                let model = self.train.build_model(kind, data.features.dim(), &mut params, &mut rng);
                WorkerState {
                    model,
                    params,
                    opt: Adam::new(self.train.learning_rate),
                    rng: StdRng::seed_from_u64(self.train.seed ^ (w.worker_id as u64 + 1) << 32),
                    data: w.clone(),
                }
            })
            .collect();

        let sampler = self.train.sampler();
        let eval_sampler = NeighborSampler::full(self.train.layers);
        let mut master_opt = Adam::new(self.train.learning_rate);
        let mut correction_opt = Adam::new(self.train.learning_rate);
        let mut correction_rng = StdRng::seed_from_u64(self.train.seed ^ 0xC0FFEE);

        let mut global_flat = master_params.to_flat();
        let mut epochs = Vec::with_capacity(self.train.epochs);
        let mut best = (f64::NEG_INFINITY, global_flat.clone());
        let mut prev_bytes = setup.tracker.total_bytes();

        let mut failures: Vec<(usize, usize)> = Vec::new();
        for epoch in 0..self.train.epochs {
            let down: Vec<bool> = (0..self.dist.num_workers)
                .map(|w| self.dist.faults.is_some_and(|f| f.is_down(w, epoch)))
                .collect();
            for (w, &d) in down.iter().enumerate() {
                if d {
                    failures.push((epoch, w));
                }
            }
            let mean_loss = match self.dist.sync {
                SyncMethod::ModelAveraging => {
                    self.epoch_model_averaging(&mut states, &sampler, &mut global_flat, &down)?
                }
                SyncMethod::GradientAveraging => self.epoch_gradient_averaging(
                    &mut states,
                    &sampler,
                    &mut master_params,
                    &mut master_opt,
                    &mut global_flat,
                    &down,
                )?,
            };

            // LLCG global correction: the master performs a centralized
            // step on the full graph after synchronization.
            if spec.global_correction {
                master_params
                    .load_flat(&global_flat)
                    .map_err(|e| DistError::Worker(e.to_string()))?;
                let mut batch = data.split.train.clone();
                batch.shuffle(&mut correction_rng);
                batch.truncate(self.train.batch_size.min(batch.len()));
                let mut ga = FullGraphAccess::new(&train_graph);
                let mut fa = FullFeatureAccess::new(&data.features);
                let negative_sampler =
                    PerSourceNegativeSampler::global(data.graph.num_nodes());
                let (_, grads) = batch_grads(
                    &master_model,
                    &master_params,
                    &mut ga,
                    &mut fa,
                    &sampler,
                    &negative_sampler,
                    &batch,
                    &mut correction_rng,
                )
                .map_err(|e| DistError::Worker(e.to_string()))?;
                correction_opt.step(&mut master_params, &grads);
                global_flat = master_params.to_flat();
            }

            let comm_bytes = setup.tracker.total_bytes() - prev_bytes;
            prev_bytes = setup.tracker.total_bytes();

            let valid_hits = if epoch % self.dist.eval_every == 0
                || epoch + 1 == self.train.epochs
            {
                master_params
                    .load_flat(&global_flat)
                    .map_err(|e| DistError::Worker(e.to_string()))?;
                let mut ga = FullGraphAccess::new(&train_graph);
                let mut fa = FullFeatureAccess::new(&data.features);
                let hits = evaluate_hits(
                    &master_model,
                    &master_params,
                    &mut ga,
                    &mut fa,
                    &eval_sampler,
                    &data.split.valid,
                    &data.split.valid_neg,
                    self.train.hits_k,
                    &mut master_rng,
                )
                .map_err(|e| DistError::Eval(e.to_string()))?;
                if hits > best.0 {
                    best = (hits, global_flat.clone());
                }
                Some(hits)
            } else {
                None
            };
            epochs.push(EpochStats { epoch, mean_loss, valid_hits, comm_bytes });
        }

        master_params.load_flat(&best.1).map_err(|e| DistError::Worker(e.to_string()))?;
        let mut ga = FullGraphAccess::new(&train_graph);
        let mut fa = FullFeatureAccess::new(&data.features);
        let test_hits = evaluate_hits(
            &master_model,
            &master_params,
            &mut ga,
            &mut fa,
            &eval_sampler,
            &data.split.test,
            &data.split.test_neg,
            self.train.hits_k,
            &mut master_rng,
        )
        .map_err(|e| DistError::Eval(e.to_string()))?;

        let comm = CommReport {
            epoch_bytes: epochs.iter().map(|e| e.comm_bytes).collect(),
            total_structure_bytes: setup.tracker.structure_bytes(),
            total_feature_bytes: setup.tracker.feature_bytes(),
        };
        Ok(DistOutcome {
            test_hits,
            epochs,
            comm,
            partition_time: setup.partition_time,
            sparsify_time: setup.sparsify_time,
            failures,
        })
    }

    /// One epoch with per-epoch model averaging. Workers run their local
    /// batches in parallel threads; the averaged parameters become the new
    /// global model.
    fn epoch_model_averaging(
        &self,
        states: &mut [WorkerState],
        sampler: &NeighborSampler,
        global_flat: &mut Vec<f32>,
        down: &[bool],
    ) -> Result<f32, DistError> {
        // (flat params, summed loss, batch count) for a live worker; None
        // for a crashed one.
        type WorkerEpoch = Result<Option<(Vec<f32>, f64, usize)>, String>;
        let batch_size = self.train.batch_size;
        let flat: &Vec<f32> = global_flat;
        let results: Vec<WorkerEpoch> =
            // splpg-lint: allow(thread-spawn) — worker replicas are long-lived actors, one OS thread each; splpg-par's fork-join pool cannot host them
            std::thread::scope(|scope| {
                let handles: Vec<_> = states
                    .iter_mut()
                    .enumerate()
                    .map(|(i, state)| {
                        let crashed = down.get(i).copied().unwrap_or(false);
                        scope.spawn(move || -> WorkerEpoch {
                            if crashed {
                                // A crashed worker does no work and is
                                // excluded from the average; it reloads
                                // the global model when it rejoins.
                                return Ok(None);
                            }
                            state.params.load_flat(flat).map_err(|e| e.to_string())?;
                            let negative_sampler = PerSourceNegativeSampler::new(
                                state.data.negative_space.clone(),
                            );
                            let mut positives = state.data.positives.clone();
                            positives.shuffle(&mut state.rng);
                            let mut loss_sum = 0.0f64;
                            let mut batches = 0usize;
                            for chunk in positives.chunks(batch_size) {
                                let mut view = state.data.view.clone();
                                let mut feat_view = state.data.view.clone();
                                let (loss, grads) = batch_grads(
                                    &state.model,
                                    &state.params,
                                    &mut view,
                                    &mut feat_view,
                                    sampler,
                                    &negative_sampler,
                                    chunk,
                                    &mut state.rng,
                                )
                                .map_err(|e| e.to_string())?;
                                state.opt.step(&mut state.params, &grads);
                                loss_sum += loss as f64;
                                batches += 1;
                            }
                            Ok(Some((state.params.to_flat(), loss_sum, batches)))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".to_string())))
                    .collect()
            });
        let mut flats = Vec::with_capacity(states.len());
        let mut loss_sum = 0.0f64;
        let mut batch_count = 0usize;
        for r in results {
            if let Some((f, l, b)) = r.map_err(DistError::Worker)? {
                flats.push(f);
                loss_sum += l;
                batch_count += b;
            }
        }
        if !flats.is_empty() {
            // If every worker is down the round is lost and the global
            // model simply carries over.
            *global_flat =
                ParamSet::average_flat(&flats).map_err(|e| DistError::Worker(e.to_string()))?;
        }
        Ok((loss_sum / batch_count.max(1) as f64) as f32)
    }

    /// One epoch with synchronous per-batch gradient averaging (Algorithm
    /// 1 lines 19–30). All workers advance in lockstep rounds; worker 0
    /// applies the averaged gradient to the shared global parameters.
    #[allow(clippy::too_many_arguments)]
    fn epoch_gradient_averaging(
        &self,
        states: &mut [WorkerState],
        sampler: &NeighborSampler,
        master_params: &mut ParamSet,
        master_opt: &mut Adam,
        global_flat: &mut Vec<f32>,
        down: &[bool],
    ) -> Result<f32, DistError> {
        let batch_size = self.train.batch_size;
        let rounds = states
            .iter()
            .map(|s| s.data.positives.len().div_ceil(batch_size))
            .max()
            .unwrap_or(0);
        let num_workers = states.len();
        let barrier = Barrier::new(num_workers);
        let slots: Mutex<Vec<Option<Vec<Tensor>>>> = Mutex::new(vec![None; num_workers]);
        let shared_global = Mutex::new((std::mem::take(global_flat), master_params, master_opt));
        let loss_acc = Mutex::new((0.0f64, 0usize));

        // splpg-lint: allow(thread-spawn) — barrier-synchronised worker replicas (DDP emulation) need dedicated threads, not pool tasks
        let results: Vec<Result<(), String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = states
                .iter_mut()
                .enumerate()
                .map(|(i, state)| {
                    let barrier = &barrier;
                    let slots = &slots;
                    let shared_global = &shared_global;
                    let loss_acc = &loss_acc;
                    let crashed = down.get(i).copied().unwrap_or(false);
                    scope.spawn(move || -> Result<(), String> {
                        let negative_sampler =
                            PerSourceNegativeSampler::new(state.data.negative_space.clone());
                        let mut positives = state.data.positives.clone();
                        positives.shuffle(&mut state.rng);
                        for round in 0..rounds {
                            {
                                let guard = shared_global.lock().expect("lock poisoned");
                                state.params.load_flat(&guard.0).map_err(|e| e.to_string())?;
                            }
                            let start = round * batch_size;
                            let grads = if !crashed && start < positives.len() {
                                let end = (start + batch_size).min(positives.len());
                                let mut view = state.data.view.clone();
                                let mut feat_view = state.data.view.clone();
                                let (loss, grads) = batch_grads(
                                    &state.model,
                                    &state.params,
                                    &mut view,
                                    &mut feat_view,
                                    sampler,
                                    &negative_sampler,
                                    &positives[start..end],
                                    &mut state.rng,
                                )
                                .map_err(|e| e.to_string())?;
                                let mut acc = loss_acc.lock().expect("lock poisoned");
                                acc.0 += loss as f64;
                                acc.1 += 1;
                                grads
                            } else {
                                // Exhausted workers contribute zero
                                // gradients to keep the average unbiased
                                // towards still-active workers.
                                (0..state.params.len())
                                    .map(|p| {
                                        let (r, c) = state.params.value(p).shape();
                                        Tensor::zeros(r, c)
                                    })
                                    .collect()
                            };
                            slots.lock().expect("lock poisoned")[i] = Some(grads);
                            barrier.wait();
                            if i == 0 {
                                let collected: Vec<Vec<Tensor>> = {
                                    let mut guard = slots.lock().expect("lock poisoned");
                                    guard.iter_mut().map(|g| g.take().expect("all set")).collect()
                                };
                                let avg =
                                    average_grads(&collected).map_err(|e| e.to_string())?;
                                let mut guard = shared_global.lock().expect("lock poisoned");
                                let (flat, params, opt) = &mut *guard;
                                params.load_flat(flat).map_err(|e| e.to_string())?;
                                opt.step(params, &avg);
                                *flat = params.to_flat();
                            }
                            barrier.wait();
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| Err("worker panicked".to_string())))
                .collect()
        });
        for r in results {
            r.map_err(DistError::Worker)?;
        }
        *global_flat = shared_global.into_inner().expect("lock poisoned").0;
        let (loss_sum, batches) = loss_acc.into_inner().expect("lock poisoned");
        Ok((loss_sum / batches.max(1) as f64) as f32)
    }

    fn run_centralized(&self, kind: ModelKind, data: &Dataset) -> Result<DistOutcome, DistError> {
        let out = train_centralized(kind, &data.graph, &data.features, &data.split, &self.train)
            .map_err(|e| DistError::Worker(e.to_string()))?;
        let epochs = out
            .history
            .losses
            .iter()
            .zip(&out.history.valid_hits)
            .enumerate()
            .map(|(epoch, (&mean_loss, &hits))| EpochStats {
                epoch,
                mean_loss,
                valid_hits: Some(hits),
                comm_bytes: 0,
            })
            .collect();
        Ok(DistOutcome {
            test_hits: out.test_hits,
            epochs,
            comm: CommReport::default(),
            partition_time: Duration::ZERO,
            sparsify_time: Duration::ZERO,
            failures: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_datasets::{DatasetSpec, Scale};

    fn quick_train() -> TrainConfig {
        TrainConfig {
            layers: 2,
            hidden: 8,
            epochs: 2,
            batch_size: 128,
            fanouts: vec![Some(5), Some(5)],
            hits_k: 20,
            ..TrainConfig::default()
        }
    }

    fn tiny_data() -> Dataset {
        DatasetSpec::cora().generate(Scale::new(0.05, 16), 5).unwrap()
    }

    #[test]
    fn splpg_runs_and_meters_communication() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::SpLpg, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.epochs.len(), 2);
        assert!(out.comm.total_bytes() > 0, "SpLPG must transfer remote data");
        assert!(out.sparsify_time > Duration::ZERO);
        assert!(out.test_hits >= 0.0 && out.test_hits <= 1.0);
    }

    #[test]
    fn psgd_pa_transfers_nothing() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::PsgdPa, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.comm.total_bytes(), 0, "local-only training is free");
    }

    #[test]
    fn splpg_cheaper_than_full_sharing() {
        let data = tiny_data();
        let run = |strategy| {
            let dist = DistConfig { num_workers: 2, strategy, ..Default::default() };
            DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap()
        };
        let splpg = run(Strategy::SpLpg);
        let plus = run(Strategy::SpLpgPlus);
        assert!(
            splpg.comm.total_bytes() < plus.comm.total_bytes(),
            "splpg {} >= splpg+ {}",
            splpg.comm.total_bytes(),
            plus.comm.total_bytes()
        );
    }

    #[test]
    fn gradient_averaging_runs() {
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::SpLpg,
            sync: SyncMethod::GradientAveraging,
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::Gcn, &data).unwrap();
        assert!(out.epochs.iter().all(|e| e.mean_loss.is_finite()));
    }

    #[test]
    fn llcg_correction_runs() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::Llcg, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.comm.total_bytes(), 0);
        assert!(out.test_hits.is_finite());
    }

    #[test]
    fn centralized_through_same_interface() {
        let data = tiny_data();
        let dist =
            DistConfig { num_workers: 1, strategy: Strategy::Centralized, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.comm.total_bytes(), 0);
        assert_eq!(out.epochs.len(), 2);
    }

    #[test]
    fn single_worker_distributed_rejected() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 1, strategy: Strategy::PsgdPa, ..Default::default() };
        assert!(matches!(
            DistTrainer::new(dist, quick_train()).run(ModelKind::Gcn, &data),
            Err(DistError::InvalidConfig(_))
        ));
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use splpg_datasets::{DatasetSpec, Scale};

    fn quick_train() -> TrainConfig {
        TrainConfig {
            layers: 2,
            hidden: 8,
            epochs: 4,
            batch_size: 128,
            fanouts: vec![Some(5), Some(5)],
            hits_k: 20,
            ..TrainConfig::default()
        }
    }

    fn tiny_data() -> splpg_datasets::Dataset {
        DatasetSpec::cora().generate(Scale::new(0.05, 16), 5).unwrap()
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let f = FaultConfig { failure_probability: 0.5, seed: 3 };
        for w in 0..4 {
            for e in 0..10 {
                assert_eq!(f.is_down(w, e), f.is_down(w, e));
            }
        }
    }

    #[test]
    fn fault_rate_roughly_matches_probability() {
        let f = FaultConfig { failure_probability: 0.3, seed: 9 };
        let down = (0..10_000).filter(|&e| f.is_down(0, e)).count();
        assert!((2_500..3_500).contains(&down), "observed {down}/10000");
    }

    #[test]
    fn training_survives_worker_failures() {
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 3,
            strategy: Strategy::SpLpg,
            faults: Some(FaultConfig { failure_probability: 0.4, seed: 7 }),
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert!(!out.failures.is_empty(), "expected injected failures");
        assert!(out.test_hits.is_finite());
        assert!(out.epochs.iter().all(|e| e.mean_loss.is_finite()));
    }

    #[test]
    fn training_survives_failures_under_gradient_averaging() {
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::PsgdPa,
            sync: SyncMethod::GradientAveraging,
            faults: Some(FaultConfig { failure_probability: 0.5, seed: 11 }),
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::Gcn, &data).unwrap();
        assert!(out.test_hits.is_finite());
    }

    #[test]
    fn no_faults_means_no_failures_recorded() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert!(out.failures.is_empty());
    }

    #[test]
    fn all_workers_down_carries_model_over() {
        // probability 1.0 - eps: every epoch everyone is down; the global
        // model must remain the initial one and training must not crash.
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::PsgdPa,
            faults: Some(FaultConfig { failure_probability: 0.9999, seed: 1 }),
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.failures.len(), 2 * quick_train().epochs);
        assert!(out.test_hits.is_finite());
    }
}
