use std::sync::{Arc, Mutex};
use std::time::Duration;

use splpg_rng::rngs::StdRng;
use splpg_rng::seq::SliceRandom;
use splpg_rng::SeedableRng;
use splpg_datasets::Dataset;
use splpg_gnn::trainer::{
    batch_grads, evaluate_hits, train_centralized, ModelKind, TrainConfig,
};
use splpg_graph::Graph;
use splpg_gnn::{
    FullFeatureAccess, FullGraphAccess, NeighborSampler, PerSourceNegativeSampler, SamplerScratch,
};
use splpg_net::process::{spawn_cluster, worker_from_env, ProcessSpec, WorkerEnv};
use splpg_net::shm::{identity_hash, segment_name};
use splpg_net::{
    ClusterConfig, CodecConfig, FaultPlan, RetryPolicy, SegmentSpec, ShmLane, ShmOwner, TcpConfig,
};
use splpg_nn::{Adam, Optimizer, ParamSet};
use splpg_tensor::Tape;

use crate::runtime::{
    ga_apply_round, ma_aggregate, worker_loop, Backend, MasterNet, NetReport, Replica,
};
use crate::setup::ClusterSetup;
use crate::{CommReport, DistError, Strategy};

/// How worker replicas are synchronized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMethod {
    /// FedAvg-style model averaging once per epoch — what the paper's
    /// baselines use and what it reports ("their prediction performance
    /// remains more or less the same").
    ModelAveraging,
    /// Synchronous gradient averaging every mini-batch (Algorithm 1 lines
    /// 29–30), like PyTorch DDP's `all_reduce`.
    GradientAveraging,
}

/// Fault-injection configuration: each worker independently crashes for a
/// whole epoch with the given probability (it contributes nothing to that
/// epoch's synchronization and rejoins at the next one — the behaviour of
/// FedAvg-style systems under worker preemption).
///
/// This models *epoch-granular* unavailability; message-level wire faults
/// (drop/duplicate/delay/permanent crash) live in
/// [`DistConfig::wire_faults`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Per-worker, per-epoch failure probability in `[0, 1)`.
    pub failure_probability: f64,
    /// Seed of the (deterministic) failure schedule.
    pub seed: u64,
}

impl FaultConfig {
    /// Whether `worker` is down during `epoch` (deterministic hash).
    pub fn is_down(&self, worker: usize, epoch: usize) -> bool {
        let mut h = self.seed ^ 0x9e37_79b9_7f4a_7c15;
        for x in [worker as u64 + 1, epoch as u64 + 1] {
            h ^= x;
            h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            h ^= h >> 33;
        }
        (h as f64 / u64::MAX as f64) < self.failure_probability
    }
}

/// Whether co-located workers read remote feature rows over a POSIX
/// shared-memory segment instead of the wire.
///
/// The decision is purely configuration-deterministic: with the bus on,
/// *every* remote feature row rides the bus (structure fetches stay on
/// the wire), in the cluster run and in the sequential reference alike —
/// which is what keeps the two bit-identical. A segment that cannot be
/// created or fails validation at attach time degrades the run to the
/// wire path with the typed error recorded in
/// [`NetReport::shm_fault`](crate::NetReport), never a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShmBusMode {
    /// No shared-memory bus: all remote fetches ride the wire.
    #[default]
    Off,
    /// Publish the feature matrix in a shared-memory segment and serve
    /// remote feature rows from it, metered on the local-bus plane.
    On,
    /// Like `On`, but the owner corrupts the sealed payload before any
    /// worker attaches — a deterministic way to exercise the
    /// checksum-detected fallback to the wire path in tests and benches.
    CorruptForTest,
}

/// Cluster configuration for a distributed run.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Number of workers `p` (the paper uses 4, 8, 16).
    pub num_workers: usize,
    /// Training strategy.
    pub strategy: Strategy,
    /// Synchronization method.
    pub sync: SyncMethod,
    /// Sparsification level `alpha` (paper default 0.15).
    pub alpha: f64,
    /// Evaluate validation accuracy every this many epochs (1 = every
    /// epoch; evaluation is master-side and not metered).
    pub eval_every: usize,
    /// Seed for partitioning/sparsification.
    pub setup_seed: u64,
    /// Optional epoch-granular worker fault injection.
    pub faults: Option<FaultConfig>,
    /// Sparsification algorithm for the shared remote copies.
    pub sparsifier: crate::SparsifierKind,
    /// Minimum number of workers that must answer each synchronization
    /// unit for training to proceed (`None` = all of them). Responses
    /// from injected-down workers count — they answered, they just
    /// contributed nothing. Falling below the quorum aborts with
    /// [`DistError::QuorumLost`].
    pub quorum: Option<usize>,
    /// Per-message timeout/backoff/retry policy. Only consulted when
    /// silence is possible (wire faults configured or quorum below `p`);
    /// a fault-free full-quorum run never starts a timer.
    pub retry: RetryPolicy,
    /// Optional message-level wire faults (drop/duplicate/delay/crash),
    /// applied deterministically per message by the transport layer.
    pub wire_faults: Option<FaultPlan>,
    /// Wire codec for protocol frames *and* data-plane pricing:
    /// delta+varint/RLE packing for structure payloads, f16/int8 row
    /// quantization for feature payloads. The default is uncompressed,
    /// which is lossless and bit-identical to pre-compression behaviour.
    pub wire_codec: CodecConfig,
    /// Shared-memory feature bus for co-located workers (default off).
    pub feature_bus: ShmBusMode,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            num_workers: 4,
            strategy: Strategy::SpLpg,
            sync: SyncMethod::ModelAveraging,
            alpha: 0.15,
            eval_every: 1,
            setup_seed: 17,
            faults: None,
            sparsifier: crate::SparsifierKind::default(),
            quorum: None,
            retry: RetryPolicy::default(),
            wire_faults: None,
            wire_codec: CodecConfig::default(),
            feature_bus: ShmBusMode::default(),
        }
    }
}

/// Per-epoch statistics of a distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean worker training loss.
    pub mean_loss: f32,
    /// Validation Hits@K (when evaluated this epoch).
    pub valid_hits: Option<f64>,
    /// Master→worker bytes transferred during this epoch.
    pub comm_bytes: u64,
    /// On-wire bytes of those transfers under the negotiated codec
    /// (equals `comm_bytes` when compression is off).
    pub comm_wire_bytes: u64,
}

/// Outcome of a distributed training run.
#[derive(Debug)]
pub struct DistOutcome {
    /// Test Hits@K of the best-validation parameters.
    pub test_hits: f64,
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
    /// Communication report.
    pub comm: CommReport,
    /// Partitioning wall-clock time.
    pub partition_time: Duration,
    /// Sparsification wall-clock time (Table II; zero if not sparsified).
    pub sparsify_time: Duration,
    /// `(epoch, worker)` pairs that were down due to fault injection.
    pub failures: Vec<(usize, usize)>,
    /// Wire-level traffic report (all zeros for the sequential reference
    /// and the centralized path, which move no messages).
    pub net: NetReport,
}

/// Distributed trainer implementing Algorithm 1 and all baselines.
#[derive(Debug, Clone)]
pub struct DistTrainer {
    dist: DistConfig,
    train: TrainConfig,
}

impl DistTrainer {
    /// Creates a trainer from cluster + hyperparameter configuration.
    pub fn new(dist: DistConfig, train: TrainConfig) -> Self {
        DistTrainer { dist, train }
    }

    /// The cluster configuration.
    pub fn dist_config(&self) -> &DistConfig {
        &self.dist
    }

    /// The training configuration.
    pub fn train_config(&self) -> &TrainConfig {
        &self.train
    }

    /// Rejects invalid fault, retry, and quorum parameters before any
    /// thread or channel exists.
    fn validate(&self) -> Result<(), DistError> {
        if self.dist.num_workers < 2 {
            return Err(DistError::InvalidConfig(
                "distributed strategies need at least 2 workers".to_string(),
            ));
        }
        if let Some(f) = &self.dist.faults {
            let p = f.failure_probability;
            if !p.is_finite() {
                return Err(DistError::InvalidFault(format!(
                    "failure probability is not finite ({p})"
                )));
            }
            if p < 0.0 {
                return Err(DistError::InvalidFault(format!(
                    "failure probability {p} is negative"
                )));
            }
            if p >= 1.0 {
                return Err(DistError::InvalidFault(format!(
                    "failure probability {p} >= 1 leaves no worker to ever synchronize"
                )));
            }
        }
        if let Some(plan) = &self.dist.wire_faults {
            plan.validate().map_err(DistError::InvalidFault)?;
            for &(w, _) in &plan.crashes {
                if w >= self.dist.num_workers {
                    return Err(DistError::InvalidFault(format!(
                        "crash schedule names worker {w} but the cluster has {} workers",
                        self.dist.num_workers
                    )));
                }
            }
        }
        self.dist.retry.validate().map_err(DistError::InvalidFault)?;
        if let Some(q) = self.dist.quorum {
            if q == 0 {
                return Err(DistError::InvalidFault(
                    "quorum of 0 would let training proceed with no workers at all"
                        .to_string(),
                ));
            }
            if q > self.dist.num_workers {
                return Err(DistError::InvalidFault(format!(
                    "quorum {q} exceeds the worker count {}",
                    self.dist.num_workers
                )));
            }
        }
        Ok(())
    }

    /// Builds the training graph and the partitioned cluster setup.
    fn prepare(&self, data: &Dataset) -> Result<(Arc<Graph>, ClusterSetup), DistError> {
        let train_graph = Arc::new(
            data.split
                .train_graph(data.graph.num_nodes())
                .map_err(|e| DistError::InvalidConfig(e.to_string()))?,
        );
        let features = Arc::new(data.features.clone());
        let setup = ClusterSetup::build_with_sparsifier(
            &train_graph,
            &features,
            self.dist.strategy.spec(),
            self.dist.num_workers,
            self.dist.alpha,
            self.dist.setup_seed,
            self.dist.sparsifier,
        )?;
        Ok((train_graph, setup))
    }

    /// Identity the feature-bus segment is pinned to: the geometry plus
    /// the seeds every process derives deterministically from its own
    /// configuration, so a master and its worker children agree without
    /// negotiation — and a stale segment from a different run can never
    /// validate.
    fn bus_spec(&self, data: &Dataset) -> SegmentSpec {
        let rows = data.features.num_rows() as u64;
        let dim = data.features.dim() as u64;
        SegmentSpec {
            rows,
            dim,
            identity: identity_hash(&[rows, dim, self.dist.setup_seed, self.train.seed]),
        }
    }

    /// Publishes the feature segment and attaches the master-side lane.
    /// Any failure — creation, the test-only corruption hook, or attach
    /// validation — leaves the lane `None` with the typed error's display
    /// form as the fault; the run then proceeds on the wire path.
    fn setup_bus(&self, data: &Dataset) -> (Option<ShmOwner>, Option<ShmLane>, Option<String>) {
        if self.dist.feature_bus == ShmBusMode::Off {
            return (None, None, None);
        }
        let spec = self.bus_spec(data);
        let name = segment_name("bus");
        let owner = match ShmOwner::create(&name, &spec, data.features.as_slice()) {
            Ok(owner) => owner,
            Err(e) => return (None, None, Some(e.to_string())),
        };
        if self.dist.feature_bus == ShmBusMode::CorruptForTest {
            if let Err(e) = owner.corrupt_payload_for_test() {
                return (Some(owner), None, Some(e.to_string()));
            }
        }
        match ShmLane::attach(&name, &spec) {
            Ok(lane) => (Some(owner), Some(lane), None),
            Err(e) => (Some(owner), None, Some(e.to_string())),
        }
    }

    /// Identically-initialized worker replicas, one per partition.
    fn build_replicas(
        &self,
        kind: ModelKind,
        data: &Dataset,
        setup: &ClusterSetup,
        bus: Option<&ShmLane>,
    ) -> Vec<Replica> {
        setup
            .workers
            .iter()
            .map(|w| {
                let mut rng = StdRng::seed_from_u64(self.train.seed);
                let mut params = ParamSet::new();
                let model =
                    self.train.build_model(kind, data.features.dim(), &mut params, &mut rng);
                // Every replica path (cluster, multi-process, sequential
                // reference) prices and degrades remote fetches under the
                // same codec, which is what keeps them bit-identical.
                let mut w = w.clone();
                w.view = w.view.with_wire_codec(self.dist.wire_codec);
                if let Some(lane) = bus {
                    w.view = w.view.with_feature_bus(lane.clone());
                }
                let worker_id = w.worker_id;
                Replica::new(
                    worker_id,
                    model,
                    params,
                    Adam::new(self.train.learning_rate),
                    splpg_rng::derive_stream(self.train.seed, w.worker_id as u64 + 1),
                    w,
                    setup.tracker.worker(worker_id).clone(),
                    self.train.sampler(),
                    self.train.batch_size,
                )
            })
            .collect()
    }

    /// Runs training of `kind` on `data` and returns accuracy +
    /// communication statistics.
    ///
    /// Workers run as long-lived actors on dedicated threads and exchange
    /// typed serialized messages with the master through `splpg-net`;
    /// with no wire faults and a full quorum the result is bit-identical
    /// to [`DistTrainer::run_reference`].
    ///
    /// # Errors
    ///
    /// Propagates configuration, partitioning and worker failures;
    /// [`DistError::QuorumLost`] when too few workers answer a
    /// synchronization unit.
    pub fn run(&self, kind: ModelKind, data: &Dataset) -> Result<DistOutcome, DistError> {
        if self.dist.strategy == Strategy::Centralized {
            return self.run_centralized(kind, data);
        }
        self.validate()?;
        let (train_graph, setup) = self.prepare(data)?;
        // The owner must outlive every replica: it unlinks the segment on
        // drop, and lanes hold the mapping alive independently of the file.
        let (bus_owner, bus_lane, bus_fault) = self.setup_bus(data);
        let replicas = self.build_replicas(kind, data, &setup, bus_lane.as_ref());
        let p = self.dist.num_workers;
        let quorum = self.dist.quorum.unwrap_or(p);
        let wire: Option<FaultPlan> = self.dist.wire_faults.clone().filter(|f| f.is_active());
        let cluster_cfg =
            ClusterConfig { workers: p, faults: wire.clone(), codec: self.dist.wire_codec };
        let cells: Vec<Mutex<Option<Replica>>> =
            replicas.into_iter().map(|r| Mutex::new(Some(r))).collect();
        let faults = self.dist.faults;
        let (result, stats) = splpg_net::run_cluster(
            &cluster_cfg,
            |port| {
                let w = port.worker();
                let rep = cells[w]
                    .lock()
                    .expect("invariant: replica cell never poisoned")
                    .take()
                    .expect("invariant: one actor per replica");
                let crash = wire.as_ref().and_then(|f| f.crash_epoch(w)).map(|e| e as u64);
                worker_loop(port, rep, faults, crash);
            },
            |hub| {
                let stats = hub.stats_handle();
                let active = wire.is_some() || quorum < p;
                let net = MasterNet::new(hub, self.dist.retry, active, quorum);
                (self.master_loop(Backend::Net(net), kind, data, &train_graph, &setup), stats)
            },
        );
        // Wire counters land on the *sending* thread after a frame enters
        // its lane; only now — with every worker joined — is the snapshot
        // guaranteed to cover all traffic, so the frame counts taken
        // inside the master loop are replaced with the final ones.
        let mut result = result;
        if let Ok(out) = &mut result {
            let snap = stats.snapshot();
            out.net.messages = snap.messages;
            out.net.bytes = snap.bytes;
            out.net.dropped = snap.dropped;
            out.net.duplicated = snap.duplicated;
            out.net.delayed = snap.delayed;
            out.net.retries = snap.retries;
            out.net.kinds = snap.kinds;
            out.net.shm_fault = bus_fault;
        }
        drop(bus_owner);
        result
    }

    /// Runs training with `p` real worker *processes* over loopback TCP:
    /// the current binary is re-executed once per worker (role handoff by
    /// environment variable, rendezvous through an ephemeral port file),
    /// each child builds its replica deterministically from the same
    /// configuration and dataset, and the master drives the identical
    /// [`master_loop`] it uses over in-process channels — so a fault-free
    /// run is bit-identical to [`DistTrainer::run`] and to
    /// [`DistTrainer::run_reference`].
    ///
    /// `child_args` are passed to the re-executed binary; a test binary
    /// uses them to route the child into the test that calls
    /// [`tcp_worker_entry`]. The child-side code path must exist — a
    /// child that never dials in stalls the rendezvous until its bounded
    /// window closes.
    ///
    /// [`master_loop`]: DistTrainer::run
    ///
    /// # Errors
    ///
    /// As [`DistTrainer::run`], plus [`DistError::Process`] when
    /// spawning, the rendezvous, or a worker process fails.
    pub fn run_multiprocess(
        &self,
        kind: ModelKind,
        data: &Dataset,
        child_args: &[String],
    ) -> Result<DistOutcome, DistError> {
        if self.dist.strategy == Strategy::Centralized {
            return Err(DistError::InvalidConfig(
                "centralized training has no worker processes to spawn".to_string(),
            ));
        }
        self.validate()?;
        let (train_graph, setup) = self.prepare(data)?;
        // The master publishes the segment before any child spawns, so a
        // child that can read its environment always finds a sealed
        // segment (or none at all — never a half-written one).
        let (bus_owner, _bus_lane, bus_fault) = self.setup_bus(data);
        let p = self.dist.num_workers;
        let quorum = self.dist.quorum.unwrap_or(p);
        let wire: Option<FaultPlan> = self.dist.wire_faults.clone().filter(|f| f.is_active());
        let spec = ProcessSpec {
            workers: p,
            faults: wire.clone(),
            tcp: TcpConfig::default(),
            child_args: child_args.to_vec(),
            codec: self.dist.wire_codec,
            shm_segment: bus_owner.as_ref().map(|o| o.name().to_string()),
        };
        let (hub, children) =
            spawn_cluster(&spec).map_err(|e| DistError::Process(e.to_string()))?;
        let active = wire.is_some() || quorum < p;
        let net = MasterNet::new(hub, self.dist.retry, active, quorum);
        let result = self.master_loop(Backend::Net(net), kind, data, &train_graph, &setup);
        // master_loop consumed the hub (finish broadcast Stop and closed
        // every lane), so the children are already exiting; reap them and
        // surface any non-zero exit even when training itself succeeded.
        let joined = children.join();
        drop(bus_owner);
        let mut out = result?;
        out.net.shm_fault = bus_fault;
        joined.map_err(|e| DistError::Process(e.to_string()))?;
        Ok(out)
    }

    /// The worker-process half of [`DistTrainer::run_multiprocess`]:
    /// rebuilds this worker's replica deterministically (same
    /// configuration, same dataset, same seeds as the master and every
    /// sibling), dials the master, and serves requests until a `Stop`
    /// frame, master hang-up, or this worker's scheduled crash epoch.
    ///
    /// # Errors
    ///
    /// Configuration/setup errors as [`DistTrainer::run`];
    /// [`DistError::Process`] when the rendezvous or dial fails, or when
    /// the spawning master's worker count disagrees with this
    /// configuration.
    pub fn run_tcp_worker(
        &self,
        env: &WorkerEnv,
        kind: ModelKind,
        data: &Dataset,
    ) -> Result<(), DistError> {
        self.validate()?;
        if env.workers() != self.dist.num_workers {
            return Err(DistError::Process(format!(
                "spawned into a {}-worker cluster but configured for {}",
                env.workers(),
                self.dist.num_workers
            )));
        }
        let (_train_graph, setup) = self.prepare(data)?;
        // Attach the advertised feature segment, if any. Attach failure
        // (torn, missing, version- or identity-mismatched segment) falls
        // back to the wire path silently — the child keeps training; only
        // the metering planes shift, which the master observes through
        // the fetch ledgers.
        let bus_lane = match (self.dist.feature_bus, env.shm_segment()) {
            (ShmBusMode::Off, _) | (_, None) => None,
            (_, Some(name)) => ShmLane::attach(name, &self.bus_spec(data)).ok(),
        };
        let mut replicas = self.build_replicas(kind, data, &setup, bus_lane.as_ref());
        let w = env.worker();
        if w >= replicas.len() {
            return Err(DistError::Process(format!(
                "worker index {w} out of range for {} replicas",
                replicas.len()
            )));
        }
        let rep = replicas.remove(w);
        let wire: Option<FaultPlan> = self.dist.wire_faults.clone().filter(|f| f.is_active());
        let crash = wire.as_ref().and_then(|f| f.crash_epoch(w)).map(|e| e as u64);
        // Dial only now, with the replica fully built: the instant the
        // rendezvous completes this worker can serve, so the master's
        // retry clock (when faults make it run) never races replica
        // construction.
        let port = env
            .connect(wire.as_ref(), &TcpConfig::default())
            .map_err(|e| DistError::Process(e.to_string()))?
            .with_codec(self.dist.wire_codec);
        worker_loop(port, rep, self.dist.faults, crash);
        Ok(())
    }

    /// Sequential in-process reference of [`DistTrainer::run`]: the same
    /// replicas, the same aggregation, executed on the calling thread in
    /// worker order with no message passing. This defines the expected
    /// bits of a fault-free cluster run.
    ///
    /// # Errors
    ///
    /// Rejects configurations with active wire faults (only the cluster
    /// path can inject them); otherwise as [`DistTrainer::run`].
    pub fn run_reference(&self, kind: ModelKind, data: &Dataset) -> Result<DistOutcome, DistError> {
        if self.dist.strategy == Strategy::Centralized {
            return self.run_centralized(kind, data);
        }
        if self.dist.wire_faults.as_ref().is_some_and(|f| f.is_active()) {
            return Err(DistError::InvalidConfig(
                "the sequential reference cannot inject wire faults; use run()".to_string(),
            ));
        }
        self.validate()?;
        let (train_graph, setup) = self.prepare(data)?;
        let (bus_owner, bus_lane, bus_fault) = self.setup_bus(data);
        let replicas = self.build_replicas(kind, data, &setup, bus_lane.as_ref());
        let backend = Backend::Local { replicas, faults: self.dist.faults };
        let mut out = self.master_loop(backend, kind, data, &train_graph, &setup)?;
        out.net.shm_fault = bus_fault;
        drop(bus_owner);
        Ok(out)
    }

    /// The master's training loop, identical for the cluster and the
    /// sequential reference backend.
    fn master_loop(
        &self,
        mut backend: Backend,
        kind: ModelKind,
        data: &Dataset,
        train_graph: &Arc<Graph>,
        setup: &ClusterSetup,
    ) -> Result<DistOutcome, DistError> {
        let spec = self.dist.strategy.spec();
        let mut master_rng = StdRng::seed_from_u64(self.train.seed);
        let mut master_params = ParamSet::new();
        let master_model =
            self.train.build_model(kind, data.features.dim(), &mut master_params, &mut master_rng);
        let sampler = self.train.sampler();
        let eval_sampler = NeighborSampler::full(self.train.layers);
        let mut master_opt = Adam::new(self.train.learning_rate);
        let mut correction_opt = Adam::new(self.train.learning_rate);
        let mut correction_rng = splpg_rng::derive_stream(self.train.seed, 0xC0FFEE);
        // Master-side tapes, reset per use: the LLCG correction step and
        // the periodic evaluations reuse one arena each across epochs.
        let mut correction_tape = Tape::new();
        let mut eval_tape = Tape::new();
        let mut correction_scratch = SamplerScratch::new();
        let mut eval_scratch = SamplerScratch::new();

        let mut global_flat = master_params.to_flat();
        let mut epochs = Vec::with_capacity(self.train.epochs);
        let mut best = (f64::NEG_INFINITY, global_flat.clone());
        let mut prev_bytes = backend.data_bytes_so_far(&setup.tracker);
        let mut prev_wire_bytes = backend.data_wire_bytes_so_far(&setup.tracker);
        let rounds_per_epoch = setup
            .workers
            .iter()
            .map(|w| w.positives.len().div_ceil(self.train.batch_size))
            .max()
            .unwrap_or(0);
        let mut failures: Vec<(usize, usize)> = Vec::new();

        // The epoch loop runs inside a closure so an error still reaches
        // backend.finish() below — which shuts the cluster down and keeps
        // the error path deadlock-free by construction.
        let loop_result: Result<(), DistError> = (|| {
            for epoch in 0..self.train.epochs {
                for w in 0..self.dist.num_workers {
                    if self.dist.faults.is_some_and(|f| f.is_down(w, epoch)) {
                        failures.push((epoch, w));
                    }
                }
                let mean_loss = match self.dist.sync {
                    SyncMethod::ModelAveraging => {
                        let contribs = backend.epoch_ma(epoch, &global_flat)?;
                        ma_aggregate(contribs, &mut global_flat)?
                    }
                    SyncMethod::GradientAveraging => {
                        let mut loss_acc = (0.0f64, 0u64);
                        for round in 0..rounds_per_epoch {
                            let contribs =
                                backend.round_ga(epoch, round as u64, &global_flat)?;
                            ga_apply_round(
                                contribs,
                                &mut master_params,
                                &mut master_opt,
                                &mut global_flat,
                                &mut loss_acc,
                            )?;
                        }
                        (loss_acc.0 / loss_acc.1.max(1) as f64) as f32
                    }
                };

                // LLCG global correction: the master performs a centralized
                // step on the full graph after synchronization.
                if spec.global_correction {
                    master_params
                        .load_flat(&global_flat)
                        .map_err(|e| DistError::Worker(e.to_string()))?;
                    let mut batch = data.split.train.clone();
                    batch.shuffle(&mut correction_rng);
                    batch.truncate(self.train.batch_size.min(batch.len()));
                    let ga = FullGraphAccess::new(train_graph);
                    let mut fa = FullFeatureAccess::new(&data.features);
                    let negative_sampler =
                        PerSourceNegativeSampler::global(data.graph.num_nodes());
                    let (_, grads) = batch_grads(
                        &master_model,
                        &master_params,
                        &ga,
                        &mut fa,
                        &sampler,
                        &negative_sampler,
                        &batch,
                        &mut correction_rng,
                        &mut correction_tape,
                        &mut correction_scratch,
                    )
                    .map_err(|e| DistError::Worker(e.to_string()))?;
                    correction_opt.step(&mut master_params, &grads);
                    for g in grads {
                        correction_tape.recycle(g);
                    }
                    global_flat = master_params.to_flat();
                }

                let now_bytes = backend.data_bytes_so_far(&setup.tracker);
                let comm_bytes = now_bytes - prev_bytes;
                prev_bytes = now_bytes;
                let now_wire = backend.data_wire_bytes_so_far(&setup.tracker);
                let comm_wire_bytes = now_wire - prev_wire_bytes;
                prev_wire_bytes = now_wire;

                let valid_hits = if epoch % self.dist.eval_every == 0
                    || epoch + 1 == self.train.epochs
                {
                    master_params
                        .load_flat(&global_flat)
                        .map_err(|e| DistError::Worker(e.to_string()))?;
                    let ga = FullGraphAccess::new(train_graph);
                    let mut fa = FullFeatureAccess::new(&data.features);
                    let hits = evaluate_hits(
                        &master_model,
                        &master_params,
                        &ga,
                        &mut fa,
                        &eval_sampler,
                        &data.split.valid,
                        &data.split.valid_neg,
                        self.train.hits_k,
                        &mut master_rng,
                        &mut eval_tape,
                        &mut eval_scratch,
                    )
                    .map_err(|e| DistError::Eval(e.to_string()))?;
                    if hits > best.0 {
                        best = (hits, global_flat.clone());
                    }
                    Some(hits)
                } else {
                    None
                };
                epochs.push(EpochStats {
                    epoch,
                    mean_loss,
                    valid_hits,
                    comm_bytes,
                    comm_wire_bytes,
                });
            }
            Ok(())
        })();
        let (total_structure_bytes, total_feature_bytes) = backend.comm_split(&setup.tracker);
        let (total_structure_wire_bytes, total_feature_wire_bytes) =
            backend.comm_wire_split(&setup.tracker);
        let total_feature_bus_bytes = backend.comm_bus_bytes(&setup.tracker);
        let net = backend.finish();
        loop_result?;

        master_params.load_flat(&best.1).map_err(|e| DistError::Worker(e.to_string()))?;
        let ga = FullGraphAccess::new(train_graph);
        let mut fa = FullFeatureAccess::new(&data.features);
        let test_hits = evaluate_hits(
            &master_model,
            &master_params,
            &ga,
            &mut fa,
            &eval_sampler,
            &data.split.test,
            &data.split.test_neg,
            self.train.hits_k,
            &mut master_rng,
            &mut eval_tape,
            &mut eval_scratch,
        )
        .map_err(|e| DistError::Eval(e.to_string()))?;

        let comm = CommReport {
            epoch_bytes: epochs.iter().map(|e| e.comm_bytes).collect(),
            total_structure_bytes,
            total_feature_bytes,
            total_structure_wire_bytes,
            total_feature_wire_bytes,
            total_feature_bus_bytes,
        };
        Ok(DistOutcome {
            test_hits,
            epochs,
            comm,
            partition_time: setup.partition_time,
            sparsify_time: setup.sparsify_time,
            failures,
            net,
        })
    }

    fn run_centralized(&self, kind: ModelKind, data: &Dataset) -> Result<DistOutcome, DistError> {
        let out = train_centralized(kind, &data.graph, &data.features, &data.split, &self.train)
            .map_err(|e| DistError::Worker(e.to_string()))?;
        let epochs = out
            .history
            .losses
            .iter()
            .zip(&out.history.valid_hits)
            .enumerate()
            .map(|(epoch, (&mean_loss, &hits))| EpochStats {
                epoch,
                mean_loss,
                valid_hits: Some(hits),
                comm_bytes: 0,
                comm_wire_bytes: 0,
            })
            .collect();
        Ok(DistOutcome {
            test_hits: out.test_hits,
            epochs,
            comm: CommReport::default(),
            partition_time: Duration::ZERO,
            sparsify_time: Duration::ZERO,
            failures: Vec::new(),
            net: NetReport::default(),
        })
    }
}

/// Child-side dispatcher for self-re-executing multi-process drivers.
///
/// Call this first in any binary (or test) that also spawns clusters via
/// [`DistTrainer::run_multiprocess`]. In the master process it returns
/// `Ok(false)` and the caller proceeds to launch; in a spawned worker
/// child it builds the trainer via `make` (handed the cluster's worker
/// count), serves the whole worker lifetime, and returns `Ok(true)` —
/// the caller should then exit successfully without launching anything,
/// or a worker would fork-bomb.
///
/// # Errors
///
/// [`DistError::Process`] when the worker environment is malformed, plus
/// whatever `make` or [`DistTrainer::run_tcp_worker`] surface.
pub fn tcp_worker_entry<F>(make: F) -> Result<bool, DistError>
where
    F: FnOnce(usize) -> Result<(DistTrainer, ModelKind, Dataset), DistError>,
{
    let env = match worker_from_env() {
        Ok(Some(env)) => env,
        Ok(None) => return Ok(false),
        Err(e) => return Err(DistError::Process(e.to_string())),
    };
    let (trainer, kind, data) = make(env.workers())?;
    trainer.run_tcp_worker(&env, kind, &data)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use splpg_datasets::{DatasetSpec, Scale};

    fn quick_train() -> TrainConfig {
        TrainConfig {
            layers: 2,
            hidden: 8,
            epochs: 2,
            batch_size: 128,
            fanouts: vec![Some(5), Some(5)],
            hits_k: 20,
            ..TrainConfig::default()
        }
    }

    fn tiny_data() -> Dataset {
        DatasetSpec::cora().generate(Scale::new(0.05, 16), 5).unwrap()
    }

    #[test]
    fn splpg_runs_and_meters_communication() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::SpLpg, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.epochs.len(), 2);
        assert!(out.comm.total_bytes() > 0, "SpLPG must transfer remote data");
        assert!(out.sparsify_time > Duration::ZERO);
        assert!(out.test_hits >= 0.0 && out.test_hits <= 1.0);
    }

    #[test]
    fn psgd_pa_transfers_nothing() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::PsgdPa, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.comm.total_bytes(), 0, "local-only training is free");
    }

    #[test]
    fn splpg_cheaper_than_full_sharing() {
        let data = tiny_data();
        let run = |strategy| {
            let dist = DistConfig { num_workers: 2, strategy, ..Default::default() };
            DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap()
        };
        let splpg = run(Strategy::SpLpg);
        let plus = run(Strategy::SpLpgPlus);
        assert!(
            splpg.comm.total_bytes() < plus.comm.total_bytes(),
            "splpg {} >= splpg+ {}",
            splpg.comm.total_bytes(),
            plus.comm.total_bytes()
        );
    }

    #[test]
    fn gradient_averaging_runs() {
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::SpLpg,
            sync: SyncMethod::GradientAveraging,
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::Gcn, &data).unwrap();
        assert!(out.epochs.iter().all(|e| e.mean_loss.is_finite()));
    }

    #[test]
    fn llcg_correction_runs() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::Llcg, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.comm.total_bytes(), 0);
        assert!(out.test_hits.is_finite());
    }

    #[test]
    fn centralized_through_same_interface() {
        let data = tiny_data();
        let dist =
            DistConfig { num_workers: 1, strategy: Strategy::Centralized, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.comm.total_bytes(), 0);
        assert_eq!(out.epochs.len(), 2);
    }

    #[test]
    fn single_worker_distributed_rejected() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 1, strategy: Strategy::PsgdPa, ..Default::default() };
        assert!(matches!(
            DistTrainer::new(dist, quick_train()).run(ModelKind::Gcn, &data),
            Err(DistError::InvalidConfig(_))
        ));
    }

    #[test]
    fn fault_free_run_counts_wire_traffic() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, strategy: Strategy::SpLpg, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        // 2 epochs × (2 requests + 2 responses) + 2 stop frames.
        assert_eq!(out.net.messages, 10);
        assert!(out.net.bytes > 0);
        assert_eq!(out.net.dropped, 0);
        assert_eq!(out.net.retries, 0);
        assert!(out.net.dead_workers.is_empty());
        // The transport-shipped fetch ledgers reconcile exactly with the
        // worker-side communication meters.
        assert_eq!(out.net.data_bytes, out.comm.total_bytes());
    }

    #[test]
    fn lossless_compression_is_bit_identical_at_two_and_four_workers() {
        // {structure: Varint, features: F32} changes every frame and the
        // wire-byte accounting but not one bit of arithmetic: the cluster
        // run must match the sequential reference exactly, and must match
        // an uncompressed run of the same seeds.
        use splpg_net::{FeatCodec, StructCodec};
        let data = tiny_data();
        for p in [2usize, 4] {
            let codec =
                CodecConfig { structure: StructCodec::Varint, features: FeatCodec::F32 };
            let dist = DistConfig {
                num_workers: p,
                strategy: Strategy::SpLpg,
                wire_codec: codec,
                ..Default::default()
            };
            let trainer = DistTrainer::new(dist.clone(), quick_train());
            let cluster = trainer.run(ModelKind::GraphSage, &data).unwrap();
            let reference = trainer.run_reference(ModelKind::GraphSage, &data).unwrap();
            assert_eq!(cluster.epochs, reference.epochs, "p={p}");
            assert_eq!(cluster.test_hits.to_bits(), reference.test_hits.to_bits());
            assert_eq!(cluster.comm, reference.comm);
            // Same bits as the uncompressed run of the same seeds.
            let plain = DistTrainer::new(
                DistConfig { wire_codec: CodecConfig::default(), ..dist },
                quick_train(),
            )
            .run(ModelKind::GraphSage, &data)
            .unwrap();
            assert_eq!(plain.test_hits.to_bits(), cluster.test_hits.to_bits());
            // Varint packing actually compresses the structure stream.
            assert!(
                cluster.comm.total_structure_wire_bytes
                    < cluster.comm.total_structure_bytes,
                "p={p}: wire {} !< raw {}",
                cluster.comm.total_structure_wire_bytes,
                cluster.comm.total_structure_bytes
            );
            // Feature payloads are uncompressed in this mode.
            assert_eq!(
                cluster.comm.total_feature_wire_bytes,
                cluster.comm.total_feature_bytes
            );
        }
    }

    #[test]
    fn quantized_runs_complete_and_shrink_feature_traffic() {
        use splpg_net::{FeatCodec, StructCodec};
        let data = tiny_data();
        for features in [FeatCodec::F16, FeatCodec::Int8] {
            let dist = DistConfig {
                num_workers: 2,
                strategy: Strategy::SpLpg,
                wire_codec: CodecConfig { structure: StructCodec::Rle, features },
                ..Default::default()
            };
            let trainer = DistTrainer::new(dist, quick_train());
            let cluster = trainer.run(ModelKind::GraphSage, &data).unwrap();
            let reference = trainer.run_reference(ModelKind::GraphSage, &data).unwrap();
            // Lossy codecs quantize the parameter frames the cluster's
            // wire carries, which the wire-free reference never sees — so
            // the arithmetic may differ, but the communication accounting
            // (RNG-driven fetch sets, codec-priced) must still agree.
            assert_eq!(cluster.comm, reference.comm);
            assert!(
                cluster.comm.total_feature_wire_bytes < cluster.comm.total_feature_bytes,
                "{features:?}: wire {} !< raw {}",
                cluster.comm.total_feature_wire_bytes,
                cluster.comm.total_feature_bytes
            );
            assert!(cluster.test_hits.is_finite());
        }
    }

    #[test]
    fn feature_bus_is_bit_identical_and_moves_features_off_the_wire() {
        use splpg_net::shm::shm_available;
        if !shm_available() {
            eprintln!("skipping: no /dev/shm on this host");
            return;
        }
        let data = tiny_data();
        for p in [2usize, 4] {
            let dist = DistConfig {
                num_workers: p,
                strategy: Strategy::SpLpg,
                feature_bus: ShmBusMode::On,
                ..Default::default()
            };
            let trainer = DistTrainer::new(dist.clone(), quick_train());
            let bus = trainer.run(ModelKind::GraphSage, &data).unwrap();
            assert!(bus.net.shm_fault.is_none(), "p={p}: {:?}", bus.net.shm_fault);
            // The sequential reference with the same config takes the same
            // bus decisions, so every counter matches bit for bit.
            let reference = trainer.run_reference(ModelKind::GraphSage, &data).unwrap();
            assert_eq!(bus.epochs, reference.epochs, "p={p}");
            assert_eq!(bus.test_hits.to_bits(), reference.test_hits.to_bits());
            assert_eq!(bus.comm, reference.comm);
            // Bus reads are plain f32 loads from the mapping — the same
            // bits the wire path would have shipped losslessly, so a
            // wire-only run of the same seeds computes identical results.
            let wire = DistTrainer::new(
                DistConfig { feature_bus: ShmBusMode::Off, ..dist },
                quick_train(),
            )
            .run(ModelKind::GraphSage, &data)
            .unwrap();
            // Per-epoch byte counters legitimately differ (features moved
            // off the wire); the arithmetic must not.
            for (b, w) in bus.epochs.iter().zip(&wire.epochs) {
                assert_eq!(b.mean_loss.to_bits(), w.mean_loss.to_bits(), "p={p}");
                assert_eq!(b.valid_hits, w.valid_hits, "p={p}");
            }
            assert_eq!(bus.test_hits.to_bits(), wire.test_hits.to_bits());
            // Remote feature rows move to the local-bus plane: nothing on
            // the feature raw/wire planes, the same row volume on the bus
            // plane as the wire run's raw plane, and exact reconciliation
            // against the transport-shipped fetch ledgers.
            assert!(bus.comm.total_feature_bus_bytes > 0, "p={p}");
            assert_eq!(bus.comm.total_feature_bytes, 0, "p={p}");
            assert_eq!(bus.comm.total_feature_wire_bytes, 0, "p={p}");
            assert_eq!(bus.comm.total_feature_bus_bytes, wire.comm.total_feature_bytes);
            assert_eq!(bus.net.data_bus_bytes, bus.comm.total_feature_bus_bytes);
            assert_eq!(bus.net.data_bytes, bus.comm.total_bytes());
            // Structure still crosses the wire.
            assert_eq!(bus.comm.total_structure_bytes, wire.comm.total_structure_bytes);
        }
    }

    #[test]
    fn corrupted_bus_segment_falls_back_to_wire() {
        use splpg_net::shm::shm_available;
        if !shm_available() {
            eprintln!("skipping: no /dev/shm on this host");
            return;
        }
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::SpLpg,
            feature_bus: ShmBusMode::CorruptForTest,
            ..Default::default()
        };
        let torn = DistTrainer::new(dist.clone(), quick_train())
            .run(ModelKind::GraphSage, &data)
            .unwrap();
        // The torn segment is detected at attach time, recorded as a typed
        // fault, and the run completes on the wire path with the same bits
        // and the same meter readings as a bus-free run.
        let fault = torn.net.shm_fault.as_deref().expect("fault recorded");
        assert!(fault.contains("checksum"), "unexpected fault: {fault}");
        let wire = DistTrainer::new(
            DistConfig { feature_bus: ShmBusMode::Off, ..dist },
            quick_train(),
        )
        .run(ModelKind::GraphSage, &data)
        .unwrap();
        assert_eq!(torn.epochs, wire.epochs);
        assert_eq!(torn.test_hits.to_bits(), wire.test_hits.to_bits());
        assert_eq!(torn.comm, wire.comm);
        assert_eq!(torn.comm.total_feature_bus_bytes, 0);
        assert!(torn.comm.total_feature_wire_bytes > 0);
    }

    #[test]
    fn reference_matches_cluster_run_bit_for_bit() {
        let data = tiny_data();
        for sync in [SyncMethod::ModelAveraging, SyncMethod::GradientAveraging] {
            let dist = DistConfig {
                num_workers: 2,
                strategy: Strategy::SpLpg,
                sync,
                ..Default::default()
            };
            let trainer = DistTrainer::new(dist, quick_train());
            let cluster = trainer.run(ModelKind::GraphSage, &data).unwrap();
            let reference = trainer.run_reference(ModelKind::GraphSage, &data).unwrap();
            assert_eq!(cluster.epochs, reference.epochs, "sync {sync:?}");
            assert_eq!(cluster.test_hits.to_bits(), reference.test_hits.to_bits());
            assert_eq!(cluster.comm, reference.comm);
            assert_eq!(cluster.failures, reference.failures);
        }
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;

    fn trainer(dist: DistConfig) -> DistTrainer {
        DistTrainer::new(dist, TrainConfig::default())
    }

    fn expect_invalid_fault(dist: DistConfig) {
        match trainer(dist).validate() {
            Err(DistError::InvalidFault(_)) => {}
            other => panic!("expected InvalidFault, got {other:?}"),
        }
    }

    #[test]
    fn nan_failure_probability_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            faults: Some(FaultConfig { failure_probability: f64::NAN, seed: 1 }),
            ..Default::default()
        });
    }

    #[test]
    fn negative_failure_probability_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            faults: Some(FaultConfig { failure_probability: -0.5, seed: 1 }),
            ..Default::default()
        });
    }

    #[test]
    fn certain_failure_probability_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            faults: Some(FaultConfig { failure_probability: 1.0, seed: 1 }),
            ..Default::default()
        });
    }

    #[test]
    fn wire_fault_nan_probability_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            wire_faults: Some(FaultPlan { drop: f64::NAN, ..FaultPlan::default() }),
            ..Default::default()
        });
    }

    #[test]
    fn wire_fault_probability_sum_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            wire_faults: Some(FaultPlan {
                drop: 0.5,
                duplicate: 0.3,
                delay: 0.3,
                ..FaultPlan::default()
            }),
            ..Default::default()
        });
    }

    #[test]
    fn crash_of_unknown_worker_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            wire_faults: Some(FaultPlan { crashes: vec![(5, 0)], ..FaultPlan::default() }),
            ..Default::default()
        });
    }

    #[test]
    fn zero_timeout_with_retries_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            retry: RetryPolicy { timeout_ms: 0, max_retries: 3, backoff: 2 },
            ..Default::default()
        });
    }

    #[test]
    fn zero_backoff_rejected() {
        expect_invalid_fault(DistConfig {
            num_workers: 2,
            retry: RetryPolicy { timeout_ms: 100, max_retries: 3, backoff: 0 },
            ..Default::default()
        });
    }

    #[test]
    fn quorum_zero_rejected() {
        expect_invalid_fault(DistConfig { num_workers: 2, quorum: Some(0), ..Default::default() });
    }

    #[test]
    fn quorum_above_worker_count_rejected() {
        expect_invalid_fault(DistConfig { num_workers: 2, quorum: Some(3), ..Default::default() });
    }

    #[test]
    fn valid_fault_setup_accepted() {
        let dist = DistConfig {
            num_workers: 3,
            quorum: Some(2),
            wire_faults: Some(FaultPlan {
                drop: 0.1,
                duplicate: 0.05,
                seed: 7,
                crashes: vec![(2, 1)],
                ..FaultPlan::default()
            }),
            ..Default::default()
        };
        assert!(trainer(dist).validate().is_ok());
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use splpg_datasets::{DatasetSpec, Scale};

    fn quick_train() -> TrainConfig {
        TrainConfig {
            layers: 2,
            hidden: 8,
            epochs: 4,
            batch_size: 128,
            fanouts: vec![Some(5), Some(5)],
            hits_k: 20,
            ..TrainConfig::default()
        }
    }

    fn tiny_data() -> splpg_datasets::Dataset {
        DatasetSpec::cora().generate(Scale::new(0.05, 16), 5).unwrap()
    }

    #[test]
    fn fault_schedule_is_deterministic() {
        let f = FaultConfig { failure_probability: 0.5, seed: 3 };
        for w in 0..4 {
            for e in 0..10 {
                assert_eq!(f.is_down(w, e), f.is_down(w, e));
            }
        }
    }

    #[test]
    fn fault_rate_roughly_matches_probability() {
        let f = FaultConfig { failure_probability: 0.3, seed: 9 };
        let down = (0..10_000).filter(|&e| f.is_down(0, e)).count();
        assert!((2_500..3_500).contains(&down), "observed {down}/10000");
    }

    #[test]
    fn training_survives_worker_failures() {
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 3,
            strategy: Strategy::SpLpg,
            faults: Some(FaultConfig { failure_probability: 0.4, seed: 7 }),
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert!(!out.failures.is_empty(), "expected injected failures");
        assert!(out.test_hits.is_finite());
        assert!(out.epochs.iter().all(|e| e.mean_loss.is_finite()));
    }

    #[test]
    fn training_survives_failures_under_gradient_averaging() {
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::PsgdPa,
            sync: SyncMethod::GradientAveraging,
            faults: Some(FaultConfig { failure_probability: 0.5, seed: 11 }),
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::Gcn, &data).unwrap();
        assert!(out.test_hits.is_finite());
    }

    #[test]
    fn no_faults_means_no_failures_recorded() {
        let data = tiny_data();
        let dist = DistConfig { num_workers: 2, ..Default::default() };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert!(out.failures.is_empty());
    }

    #[test]
    fn all_workers_down_carries_model_over() {
        // probability 1.0 - eps: every epoch everyone is down; the global
        // model must remain the initial one and training must not crash.
        // The down workers still answer (Unavailable), so the default
        // full quorum is met and no timeout ever starts.
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::PsgdPa,
            faults: Some(FaultConfig { failure_probability: 0.9999, seed: 1 }),
            ..Default::default()
        };
        let out = DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(out.failures.len(), 2 * quick_train().epochs);
        assert!(out.test_hits.is_finite());
    }

    #[test]
    fn wire_faults_with_quorum_complete_and_reproduce() {
        // drop + duplicate + one permanently crashed worker, quorum p-1:
        // training must complete, and the same seeds must reproduce the
        // same metrics in a second run.
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 3,
            strategy: Strategy::SpLpg,
            quorum: Some(2),
            retry: RetryPolicy { timeout_ms: 200, max_retries: 4, backoff: 2 },
            wire_faults: Some(FaultPlan {
                drop: 0.1,
                duplicate: 0.05,
                seed: 21,
                crashes: vec![(2, 1)],
                ..FaultPlan::default()
            }),
            ..Default::default()
        };
        let trainer = DistTrainer::new(dist, quick_train());
        let a = trainer.run(ModelKind::GraphSage, &data).unwrap();
        let b = trainer.run(ModelKind::GraphSage, &data).unwrap();
        assert_eq!(a.net.dead_workers, vec![2], "crashed worker detected");
        assert!(a.net.dropped > 0 || a.net.duplicated > 0, "faults were exercised");
        assert_eq!(a.epochs, b.epochs, "faulty runs reproduce");
        assert_eq!(a.test_hits.to_bits(), b.test_hits.to_bits());
        assert_eq!(a.comm, b.comm);
    }

    #[test]
    fn losing_the_quorum_is_an_error_not_a_hang() {
        // Both remaining workers crash at epoch 0 with quorum 2: the
        // gather exhausts its retries and surfaces QuorumLost.
        let data = tiny_data();
        let dist = DistConfig {
            num_workers: 2,
            strategy: Strategy::PsgdPa,
            quorum: Some(2),
            retry: RetryPolicy { timeout_ms: 50, max_retries: 1, backoff: 2 },
            wire_faults: Some(FaultPlan {
                crashes: vec![(0, 0), (1, 0)],
                ..FaultPlan::default()
            }),
            ..Default::default()
        };
        match DistTrainer::new(dist, quick_train()).run(ModelKind::GraphSage, &data) {
            Err(DistError::QuorumLost(_)) => {}
            other => panic!("expected QuorumLost, got {other:?}"),
        }
    }
}
