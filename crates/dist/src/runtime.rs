//! Cluster runtime: the message protocol between [`DistTrainer`]'s
//! master loop and its worker replicas.
//!
//! Workers are long-lived actors hosted by `splpg-net`; the master talks
//! to them exclusively through typed [`Request`]/[`Response`] frames. The
//! same per-replica compute methods also back
//! [`DistTrainer::run_reference`], the sequential in-process baseline the
//! bit-identity tests compare against — both paths execute the identical
//! floating-point operations in the identical order, so a fault-free
//! full-quorum cluster run reproduces the reference exactly.
//!
//! Determinism under faults rests on three rules:
//!
//! 1. a worker computes each `(epoch, round)` unit **exactly once** and
//!    caches the encoded response; duplicated or retransmitted requests
//!    are answered from the cache, so the worker RNG stream advances
//!    once per unit no matter how the wire misbehaves;
//! 2. the master keys incoming responses by worker into per-unit slots,
//!    discarding stale units and duplicate arrivals — late gradients
//!    never enter an aggregation;
//! 3. aggregation always iterates workers in index order, never arrival
//!    order.
//!
//! [`DistTrainer`]: crate::DistTrainer
//! [`DistTrainer::run_reference`]: crate::DistTrainer::run_reference

use splpg_gnn::trainer::batch_grads;
use splpg_gnn::{LinkPredictor, NeighborSampler, PerSourceNegativeSampler, SamplerScratch};
use splpg_net::codec::NUM_KINDS;
use splpg_net::{
    FetchLedger, KindStat, MasterHub, MsgId, NetError, Request, Response, RetryPolicy, WorkerPort,
};
use splpg_nn::{average_grads, Adam, Optimizer, ParamSet};
use splpg_rng::rngs::StdRng;
use splpg_rng::seq::SliceRandom;
use splpg_tensor::{Tape, Tensor};

use crate::setup::WorkerData;
use crate::trainer::FaultConfig;
use crate::{CommTracker, DistError, BYTES_PER_EDGE, BYTES_PER_FEATURE, BYTES_PER_NODE_ID};

/// Wire-level traffic report of a distributed run.
///
/// Frame counts and byte totals are measured at the transport (what
/// actually entered a lane); `data_bytes` is the sum of the
/// [`FetchLedger`] deltas workers shipped back in their responses,
/// converted with the same byte constants the [`CommTracker`] meters use —
/// on a fault-free run it equals the meters' `total_bytes()` exactly.
/// Under crash faults the frame counts depend on response timing (how many
/// retransmissions were needed); the data-plane and metric values do not.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetReport {
    /// Frames that entered a lane (duplicates counted individually).
    pub messages: u64,
    /// Total bytes of those frames, length prefixes included.
    pub bytes: u64,
    /// Frames discarded by fault injection.
    pub dropped: u64,
    /// Extra copies produced by fault injection.
    pub duplicated: u64,
    /// Frames whose delivery was deferred by fault injection.
    pub delayed: u64,
    /// Retransmission rounds the master performed.
    pub retries: u64,
    /// Graph-data bytes workers reported fetching, reconstructed from
    /// their fetch ledgers.
    pub data_bytes: u64,
    /// On-wire graph-data bytes under the negotiated codec, from the same
    /// ledgers (equals `data_bytes` when compression is off).
    pub data_wire_bytes: u64,
    /// Feature bytes served over the shared-memory bus instead of the
    /// wire (raw byte model), from the same ledgers — zero when the bus
    /// is off or fell back.
    pub data_bus_bytes: u64,
    /// Why the shared-memory feature bus degraded to the wire path, when
    /// it did: the display form of the typed [`ShmError`] the segment
    /// attach surfaced. `None` means the bus was off or healthy.
    ///
    /// [`ShmError`]: splpg_net::ShmError
    pub shm_fault: Option<String>,
    /// Per-[`MsgKind`] histogram of protocol frames: count, raw-encoding
    /// bytes, and on-wire bytes for each message kind, recorded
    /// master-side (slot 0 aggregates unknown kinds).
    ///
    /// [`MsgKind`]: splpg_net::codec::kind_name
    pub kinds: [KindStat; NUM_KINDS],
    /// Workers declared dead after retry exhaustion, in detection order.
    pub dead_workers: Vec<usize>,
}

/// Converts raw fetch counts to bytes with the tracker constants.
pub(crate) fn ledger_bytes(l: &FetchLedger) -> u64 {
    l.structure_edges * BYTES_PER_EDGE
        + l.structure_nodes * BYTES_PER_NODE_ID
        + l.feature_elems * BYTES_PER_FEATURE
}

/// On-wire bytes a ledger carries under the negotiated codec.
pub(crate) fn ledger_wire_bytes(l: &FetchLedger) -> u64 {
    l.structure_wire_bytes + l.feature_wire_bytes
}

/// Bus-plane feature bytes a ledger carries, at the raw byte model.
pub(crate) fn ledger_bus_bytes(l: &FetchLedger) -> u64 {
    l.feature_bus_elems * BYTES_PER_FEATURE
}

/// Concatenates gradient tensors into one flat wire payload.
pub(crate) fn flatten_grads(grads: &[Tensor]) -> Vec<f32> {
    let mut out = Vec::with_capacity(grads.iter().map(Tensor::len).sum());
    for g in grads {
        out.extend_from_slice(g.data());
    }
    out
}

/// Rebuilds gradient tensors from a flat payload and parameter shapes.
pub(crate) fn unflatten_grads(
    flat: &[f32],
    shapes: &[(usize, usize)],
) -> Result<Vec<Tensor>, String> {
    let mut out = Vec::with_capacity(shapes.len());
    let mut pos = 0usize;
    for &(r, c) in shapes {
        let n = r * c;
        let slice = flat
            .get(pos..pos + n)
            .ok_or_else(|| format!("gradient payload too short: {} < {}", flat.len(), pos + n))?;
        out.push(Tensor::from_vec(r, c, slice.to_vec()).map_err(|e| e.to_string())?);
        pos += n;
    }
    if pos != flat.len() {
        return Err(format!("gradient payload has {} trailing elements", flat.len() - pos));
    }
    Ok(out)
}

/// One worker's full training state: model replica, optimizer, RNG
/// stream, data view, and communication ledger.
///
/// The compute methods are the single source of truth for worker-side
/// training math — the cluster worker loop and the sequential reference
/// path both call them, which is what makes the two bit-identical.
pub(crate) struct Replica {
    pub worker_id: usize,
    model: LinkPredictor,
    params: ParamSet,
    opt: Adam,
    rng: StdRng,
    data: WorkerData,
    tracker: CommTracker,
    sampler: NeighborSampler,
    negative_sampler: PerSourceNegativeSampler,
    batch_size: usize,
    positives: Vec<splpg_graph::Edge>,
    shuffled_epoch: Option<u64>,
    reported: FetchLedger,
    /// Long-lived autodiff tape: its arena is recycled across every batch
    /// this replica ever computes, so steady-state steps allocate nothing.
    tape: Tape,
    /// Long-lived sampler scratch, reused for the same reason.
    scratch: SamplerScratch,
}

impl Replica {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        worker_id: usize,
        model: LinkPredictor,
        params: ParamSet,
        opt: Adam,
        rng: StdRng,
        data: WorkerData,
        tracker: CommTracker,
        sampler: NeighborSampler,
        batch_size: usize,
    ) -> Self {
        let negative_sampler = PerSourceNegativeSampler::new(data.negative_space.clone());
        Replica {
            worker_id,
            model,
            params,
            opt,
            rng,
            data,
            tracker,
            sampler,
            negative_sampler,
            batch_size,
            positives: Vec::new(),
            shuffled_epoch: None,
            reported: FetchLedger::default(),
            tape: Tape::new(),
            scratch: SamplerScratch::new(),
        }
    }

    /// Remote fetches performed since the previous call.
    fn ledger_delta(&mut self) -> FetchLedger {
        let now = FetchLedger {
            structure_edges: self.tracker.structure_edges(),
            structure_nodes: self.tracker.structure_nodes(),
            feature_elems: self.tracker.feature_elems(),
            structure_wire_bytes: self.tracker.structure_wire_bytes(),
            feature_wire_bytes: self.tracker.feature_wire_bytes(),
            feature_bus_elems: self.tracker.feature_bus_elems(),
        };
        let delta = now.since(&self.reported);
        self.reported = now;
        delta
    }

    /// One full local epoch from `flat` (model averaging): shuffle the
    /// local positives, step the local optimizer per batch, return
    /// `(trained flat params, loss sum, batch count)`.
    pub fn epoch_ma(&mut self, epoch: u64, flat: &[f32]) -> Result<(Vec<f32>, f64, u64), String> {
        self.params.load_flat(flat).map_err(|e| e.to_string())?;
        self.data.view.begin_epoch(epoch);
        let mut positives = self.data.positives.clone();
        positives.shuffle(&mut self.rng);
        let mut loss_sum = 0.0f64;
        let mut batches = 0u64;
        // Both views are clones of the same worker view and share its
        // per-epoch feature-row cache; cloned once per epoch, not per batch.
        let view = self.data.view.clone();
        let mut feat_view = self.data.view.clone();
        for chunk in positives.chunks(self.batch_size) {
            let (loss, grads) = batch_grads(
                &self.model,
                &self.params,
                &view,
                &mut feat_view,
                &self.sampler,
                &self.negative_sampler,
                chunk,
                &mut self.rng,
                &mut self.tape,
                &mut self.scratch,
            )
            .map_err(|e| e.to_string())?;
            self.opt.step(&mut self.params, &grads);
            for g in grads {
                self.tape.recycle(g);
            }
            loss_sum += loss as f64;
            batches += 1;
        }
        Ok((self.params.to_flat(), loss_sum, batches))
    }

    /// Shuffles this epoch's batch order exactly once per epoch. Called
    /// unconditionally at the first round of an epoch — including for
    /// injected-down workers — so the RNG stream is identical whether or
    /// not the worker contributes.
    pub fn ensure_shuffled(&mut self, epoch: u64) {
        if self.shuffled_epoch != Some(epoch) {
            self.data.view.begin_epoch(epoch);
            self.positives = self.data.positives.clone();
            self.positives.shuffle(&mut self.rng);
            self.shuffled_epoch = Some(epoch);
        }
    }

    /// One mini-batch round at `flat` (gradient averaging). `None` when
    /// this worker's positives are exhausted for the epoch.
    pub fn round_ga(
        &mut self,
        epoch: u64,
        round: u64,
        flat: &[f32],
    ) -> Result<Option<(f32, Vec<f32>)>, String> {
        self.ensure_shuffled(epoch);
        self.params.load_flat(flat).map_err(|e| e.to_string())?;
        let start = (round as usize) * self.batch_size;
        if start >= self.positives.len() {
            return Ok(None);
        }
        let end = (start + self.batch_size).min(self.positives.len());
        let view = self.data.view.clone();
        let mut feat_view = self.data.view.clone();
        let (loss, grads) = batch_grads(
            &self.model,
            &self.params,
            &view,
            &mut feat_view,
            &self.sampler,
            &self.negative_sampler,
            &self.positives[start..end],
            &mut self.rng,
            &mut self.tape,
            &mut self.scratch,
        )
        .map_err(|e| e.to_string())?;
        let flat = flatten_grads(&grads);
        for g in grads {
            self.tape.recycle(g);
        }
        Ok(Some((loss, flat)))
    }
}

/// The worker actor body: serve requests until the master hangs up, a
/// `Stop` arrives, or this worker's scheduled crash epoch begins.
///
/// Responses for each `(epoch, round)` unit are computed once and cached;
/// retransmitted or duplicated requests re-send the cached response and
/// requests for already-superseded units are ignored.
pub(crate) fn worker_loop(
    mut port: WorkerPort,
    mut rep: Replica,
    faults: Option<FaultConfig>,
    crash_epoch: Option<u64>,
) {
    let mut cached: Option<((u64, u64), Response)> = None;
    loop {
        let req = match port.recv() {
            Ok(r) => r,
            Err(_) => return,
        };
        if matches!(req, Request::Stop { .. }) {
            return;
        }
        let id = req.id();
        if crash_epoch.is_some_and(|ce| id.epoch >= ce) {
            // Simulated process kill: exit without answering; the master
            // discovers it through retry exhaustion.
            return;
        }
        if let Some((unit, resp)) = &cached {
            if id.unit() == *unit {
                // Re-send under the retransmission's attempt number so
                // the fault layer makes a fresh delivery decision — an
                // echoed attempt would be re-dropped identically forever.
                let mut resend = resp.clone();
                resend.set_attempt(id.attempt);
                if port.send(&resend).is_err() {
                    return;
                }
                continue;
            }
            if id.unit() < *unit {
                continue;
            }
        }
        let resp = compute_response(&mut rep, &req, faults.as_ref());
        let failed = matches!(resp, Response::Failed { .. });
        cached = Some((id.unit(), resp.clone()));
        if port.send(&resp).is_err() || failed {
            return;
        }
    }
}

fn compute_response(rep: &mut Replica, req: &Request, faults: Option<&FaultConfig>) -> Response {
    let id = req.id();
    let down = faults.is_some_and(|f| f.is_down(rep.worker_id, id.epoch as usize));
    match req {
        Request::Epoch { params, .. } => {
            if down {
                // Injected-down for the epoch: answer (so the master need
                // not wait out a timeout) without touching the RNG.
                return Response::Unavailable { id };
            }
            match rep.epoch_ma(id.epoch, params) {
                Ok((flat, loss_sum, batches)) => Response::Epoch {
                    id,
                    params: flat,
                    loss_sum,
                    batches,
                    ledger: rep.ledger_delta(),
                },
                Err(error) => Response::Failed { id, error },
            }
        }
        Request::Round { params, .. } => {
            // The epoch shuffle happens even for down workers (their RNG
            // stream must match a fault-free run of the same seed).
            rep.ensure_shuffled(id.epoch);
            if down {
                return Response::Round {
                    id,
                    active: false,
                    loss: 0.0,
                    grads: Vec::new(),
                    ledger: rep.ledger_delta(),
                };
            }
            match rep.round_ga(id.epoch, id.round, params) {
                Ok(Some((loss, grads))) => Response::Round {
                    id,
                    active: true,
                    loss,
                    grads,
                    ledger: rep.ledger_delta(),
                },
                Ok(None) => Response::Round {
                    id,
                    active: false,
                    loss: 0.0,
                    grads: Vec::new(),
                    ledger: rep.ledger_delta(),
                },
                Err(error) => Response::Failed { id, error },
            }
        }
        Request::Stop { .. } => Response::Unavailable { id },
    }
}

/// The master's gather engine: broadcast, collect with per-message
/// timeout + bounded exponential backoff, enforce the quorum.
pub(crate) struct MasterNet {
    hub: MasterHub,
    live: Vec<bool>,
    policy: RetryPolicy,
    /// Whether timeouts are in play at all. A fault-free full-quorum
    /// cluster uses plain blocking receives and never consults a clock.
    active: bool,
    quorum: usize,
    data_ledger: FetchLedger,
    dead: Vec<usize>,
}

impl MasterNet {
    pub fn new(hub: MasterHub, policy: RetryPolicy, active: bool, quorum: usize) -> Self {
        let workers = hub.workers();
        MasterNet {
            hub,
            live: vec![true; workers],
            policy,
            active,
            quorum,
            data_ledger: FetchLedger::default(),
            dead: Vec::new(),
        }
    }

    /// One synchronization unit: send `make(worker, attempt)` to every
    /// live worker and collect responses into worker-indexed slots.
    ///
    /// Every accepted response resets the retry ladder: a worker is only
    /// declared dead after the cluster made no progress at all through a
    /// whole retry budget, so a slow-but-alive worker is never mistaken
    /// for a crashed one just because it shares a gather with one.
    /// Dead workers are excluded from all later units. Errors with
    /// [`DistError::QuorumLost`] when fewer than `quorum` workers
    /// answered, and [`DistError::Worker`] when a worker reports an
    /// internal failure.
    fn gather(
        &mut self,
        unit: (u64, u64),
        make: impl Fn(u32, u32) -> Request,
    ) -> Result<Vec<Option<Response>>, DistError> {
        let p = self.hub.workers();
        let mut slots: Vec<Option<Response>> = (0..p).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..p).filter(|&w| self.live[w]).collect();
        for &w in &pending {
            let _ = self.hub.send(w, &make(w as u32, 0));
        }
        let mut attempt: u32 = 0;
        while !pending.is_empty() {
            let received = if self.active {
                match self.hub.recv_timeout(self.policy.window(attempt)) {
                    Ok(r) => r,
                    Err(NetError::Closed) => {
                        // Every worker hung up: no response can ever
                        // arrive, so give up on the pending set at once.
                        for &w in &pending {
                            self.live[w] = false;
                            self.dead.push(w);
                        }
                        pending.clear();
                        continue;
                    }
                    Err(e) => return Err(DistError::Worker(e.to_string())),
                }
            } else {
                match self.hub.recv() {
                    Ok(r) => Some(r),
                    Err(e) => {
                        return Err(DistError::Worker(format!(
                            "worker hung up mid-gather without faults configured: {e}"
                        )))
                    }
                }
            };
            match received {
                Some(resp) => {
                    let id = resp.id();
                    let w = id.worker as usize;
                    if id.unit() != unit || w >= p || slots[w].is_some() {
                        // Stale unit or duplicate delivery: discard.
                        continue;
                    }
                    if let Response::Failed { error, .. } = &resp {
                        return Err(DistError::Worker(format!("worker {w}: {error}")));
                    }
                    match &resp {
                        Response::Epoch { ledger, .. } | Response::Round { ledger, .. } => {
                            self.data_ledger.add(ledger);
                        }
                        _ => {}
                    }
                    slots[w] = Some(resp);
                    pending.retain(|&x| x != w);
                    attempt = 0;
                }
                None => {
                    if attempt >= self.policy.max_retries {
                        for &w in &pending {
                            self.live[w] = false;
                            self.dead.push(w);
                        }
                        pending.clear();
                    } else {
                        attempt += 1;
                        self.hub.note_retry();
                        for &w in &pending {
                            let _ = self.hub.send(w, &make(w as u32, attempt));
                        }
                    }
                }
            }
        }
        let responders = slots.iter().filter(|s| s.is_some()).count();
        if responders < self.quorum {
            return Err(DistError::QuorumLost(format!(
                "epoch {} round {}: {responders} of {p} workers answered, quorum is {}",
                unit.0, unit.1, self.quorum
            )));
        }
        Ok(slots)
    }
}

/// Per-worker model-averaging contribution: `(flat params, loss sum,
/// batch count)`, `None` for down/dead workers.
pub(crate) type EpochSlot = Option<(Vec<f32>, f64, u64)>;

/// Per-worker gradient-averaging contribution: `(loss, flat grads)`,
/// `None` for inactive/down/dead workers.
pub(crate) type RoundSlot = Option<(f32, Vec<f32>)>;

/// How the master reaches its workers: over the message-passing cluster,
/// or by calling the replicas in-process and in worker order (the
/// sequential reference that defines bit-exact expected behaviour).
pub(crate) enum Backend {
    Net(MasterNet),
    Local { replicas: Vec<Replica>, faults: Option<FaultConfig> },
}

impl Backend {
    /// One model-averaging epoch: per-worker `(flat params, loss sum,
    /// batch count)` contributions, `None` for down/dead workers.
    pub fn epoch_ma(
        &mut self,
        epoch: usize,
        flat: &[f32],
    ) -> Result<Vec<EpochSlot>, DistError> {
        match self {
            Backend::Net(net) => {
                let slots = net.gather((epoch as u64, 0), |w, attempt| Request::Epoch {
                    id: MsgId { worker: w, epoch: epoch as u64, round: 0, attempt },
                    params: flat.to_vec(),
                })?;
                Ok(slots
                    .into_iter()
                    .map(|slot| match slot {
                        Some(Response::Epoch { params, loss_sum, batches, .. }) => {
                            Some((params, loss_sum, batches))
                        }
                        _ => None,
                    })
                    .collect())
            }
            Backend::Local { replicas, faults } => {
                let mut out = Vec::with_capacity(replicas.len());
                for rep in replicas.iter_mut() {
                    if faults.is_some_and(|f| f.is_down(rep.worker_id, epoch)) {
                        out.push(None);
                    } else {
                        out.push(Some(rep.epoch_ma(epoch as u64, flat).map_err(DistError::Worker)?));
                    }
                }
                Ok(out)
            }
        }
    }

    /// One gradient-averaging round: per-worker `(loss, flat grads)`
    /// contributions, `None` for inactive/down/dead workers.
    pub fn round_ga(
        &mut self,
        epoch: usize,
        round: u64,
        flat: &[f32],
    ) -> Result<Vec<RoundSlot>, DistError> {
        match self {
            Backend::Net(net) => {
                let slots = net.gather((epoch as u64, round), |w, attempt| Request::Round {
                    id: MsgId { worker: w, epoch: epoch as u64, round, attempt },
                    params: flat.to_vec(),
                })?;
                Ok(slots
                    .into_iter()
                    .map(|slot| match slot {
                        Some(Response::Round { active: true, loss, grads, .. }) => {
                            Some((loss, grads))
                        }
                        _ => None,
                    })
                    .collect())
            }
            Backend::Local { replicas, faults } => {
                let mut out = Vec::with_capacity(replicas.len());
                for rep in replicas.iter_mut() {
                    rep.ensure_shuffled(epoch as u64);
                    if faults.is_some_and(|f| f.is_down(rep.worker_id, epoch)) {
                        out.push(None);
                    } else {
                        out.push(
                            rep.round_ga(epoch as u64, round, flat)
                                .map_err(DistError::Worker)?,
                        );
                    }
                }
                Ok(out)
            }
        }
    }

    /// Graph-data bytes fetched so far, from the vantage point this
    /// backend can actually observe: the shared tracker for in-process
    /// replicas, the gathered fetch ledgers for a cluster — whose
    /// workers may live in other processes, where the master-side
    /// tracker never advances. On a fault-free full-quorum run the two
    /// are identical (every response, hence every ledger delta, is
    /// accepted), which the bit-identity tests pin by comparing a
    /// cluster run's ledger-based report against the reference's
    /// tracker-based one.
    pub fn data_bytes_so_far(&self, tracker: &crate::CommMeter) -> u64 {
        match self {
            Backend::Net(net) => ledger_bytes(&net.data_ledger),
            Backend::Local { .. } => tracker.total_bytes(),
        }
    }

    /// On-wire graph-data bytes fetched so far, same vantage points as
    /// [`Backend::data_bytes_so_far`].
    pub fn data_wire_bytes_so_far(&self, tracker: &crate::CommMeter) -> u64 {
        match self {
            Backend::Net(net) => ledger_wire_bytes(&net.data_ledger),
            Backend::Local { .. } => tracker.total_wire_bytes(),
        }
    }

    /// Bus-plane feature bytes fetched so far, same vantage points as
    /// [`Backend::data_bytes_so_far`].
    pub fn comm_bus_bytes(&self, tracker: &crate::CommMeter) -> u64 {
        match self {
            Backend::Net(net) => ledger_bus_bytes(&net.data_ledger),
            Backend::Local { .. } => tracker.feature_bus_bytes(),
        }
    }

    /// `(structure bytes, feature bytes)` split of
    /// [`Backend::data_bytes_so_far`], for the final [`CommReport`].
    ///
    /// [`CommReport`]: crate::CommReport
    pub fn comm_split(&self, tracker: &crate::CommMeter) -> (u64, u64) {
        match self {
            Backend::Net(net) => {
                let l = &net.data_ledger;
                (
                    l.structure_edges * BYTES_PER_EDGE + l.structure_nodes * BYTES_PER_NODE_ID,
                    l.feature_elems * BYTES_PER_FEATURE,
                )
            }
            Backend::Local { .. } => (tracker.structure_bytes(), tracker.feature_bytes()),
        }
    }

    /// `(structure wire bytes, feature wire bytes)` split under the
    /// negotiated codec, same vantage points as [`Backend::comm_split`].
    pub fn comm_wire_split(&self, tracker: &crate::CommMeter) -> (u64, u64) {
        match self {
            Backend::Net(net) => {
                let l = &net.data_ledger;
                (l.structure_wire_bytes, l.feature_wire_bytes)
            }
            Backend::Local { .. } => {
                (tracker.structure_wire_bytes(), tracker.feature_wire_bytes())
            }
        }
    }

    /// Shuts the cluster down (if any) and reports wire traffic.
    pub fn finish(self) -> NetReport {
        match self {
            Backend::Net(mut net) => {
                net.hub.shutdown();
                let snap = net.hub.stats();
                net.dead.sort_unstable();
                net.dead.dedup();
                NetReport {
                    messages: snap.messages,
                    bytes: snap.bytes,
                    dropped: snap.dropped,
                    duplicated: snap.duplicated,
                    delayed: snap.delayed,
                    retries: snap.retries,
                    data_bytes: ledger_bytes(&net.data_ledger),
                    data_wire_bytes: ledger_wire_bytes(&net.data_ledger),
                    data_bus_bytes: ledger_bus_bytes(&net.data_ledger),
                    shm_fault: None,
                    kinds: snap.kinds,
                    dead_workers: net.dead,
                }
            }
            Backend::Local { .. } => NetReport::default(),
        }
    }
}

/// Folds model-averaging contributions into the global parameters
/// (worker order; down workers excluded; all-down epochs carry the model
/// over) and returns the mean loss.
pub(crate) fn ma_aggregate(
    contribs: Vec<Option<(Vec<f32>, f64, u64)>>,
    global_flat: &mut Vec<f32>,
) -> Result<f32, DistError> {
    let mut flats = Vec::with_capacity(contribs.len());
    let mut loss_sum = 0.0f64;
    let mut batch_count = 0u64;
    for (flat, loss, batches) in contribs.into_iter().flatten() {
        flats.push(flat);
        loss_sum += loss;
        batch_count += batches;
    }
    if !flats.is_empty() {
        *global_flat =
            ParamSet::average_flat(&flats).map_err(|e| DistError::Worker(e.to_string()))?;
    }
    Ok((loss_sum / batch_count.max(1) as f64) as f32)
}

/// Applies one gradient-averaging round to the master parameters.
/// Non-contributing workers enter as zero gradients so the averaging
/// divisor stays at `p` (unbiased towards still-active workers).
pub(crate) fn ga_apply_round(
    contribs: Vec<Option<(f32, Vec<f32>)>>,
    master_params: &mut ParamSet,
    master_opt: &mut Adam,
    global_flat: &mut Vec<f32>,
    loss_acc: &mut (f64, u64),
) -> Result<(), DistError> {
    let shapes: Vec<(usize, usize)> =
        (0..master_params.len()).map(|i| master_params.value(i).shape()).collect();
    let mut worker_grads = Vec::with_capacity(contribs.len());
    for contrib in contribs {
        match contrib {
            Some((loss, flat)) => {
                loss_acc.0 += loss as f64;
                loss_acc.1 += 1;
                worker_grads.push(unflatten_grads(&flat, &shapes).map_err(DistError::Worker)?);
            }
            None => {
                worker_grads.push(shapes.iter().map(|&(r, c)| Tensor::zeros(r, c)).collect());
            }
        }
    }
    let avg = average_grads(&worker_grads).map_err(|e| DistError::Worker(e.to_string()))?;
    master_params.load_flat(global_flat).map_err(|e| DistError::Worker(e.to_string()))?;
    master_opt.step(master_params, &avg);
    *global_flat = master_params.to_flat();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grads_flatten_round_trip() {
        let grads = vec![
            Tensor::from_fn(2, 3, |r, c| (r * 3 + c) as f32),
            Tensor::from_fn(1, 4, |_, c| -(c as f32)),
        ];
        let flat = flatten_grads(&grads);
        assert_eq!(flat.len(), 10);
        let back = unflatten_grads(&flat, &[(2, 3), (1, 4)]).unwrap();
        for (a, b) in grads.iter().zip(&back) {
            assert_eq!(a.data(), b.data());
            assert_eq!(a.shape(), b.shape());
        }
    }

    #[test]
    fn unflatten_rejects_wrong_sizes() {
        assert!(unflatten_grads(&[1.0; 5], &[(2, 3)]).is_err(), "too short");
        assert!(unflatten_grads(&[1.0; 7], &[(2, 3)]).is_err(), "trailing");
        assert!(unflatten_grads(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn ledger_bytes_match_tracker_constants() {
        let l = FetchLedger {
            structure_edges: 3,
            structure_nodes: 2,
            feature_elems: 35,
            ..FetchLedger::default()
        };
        assert_eq!(ledger_bytes(&l), 3 * 16 + 2 * 8 + 35 * 4);
        // The exact scenario of the CommTracker hand-computed test.
        let t = CommTracker::new();
        t.add_structure(3, 2);
        t.add_features(7, 5);
        let via_tracker = FetchLedger {
            structure_edges: t.structure_edges(),
            structure_nodes: t.structure_nodes(),
            feature_elems: t.feature_elems(),
            structure_wire_bytes: t.structure_wire_bytes(),
            feature_wire_bytes: t.feature_wire_bytes(),
            feature_bus_elems: t.feature_bus_elems(),
        };
        assert_eq!(ledger_bytes(&via_tracker), t.total_bytes());
        // Uncompressed transfers price wire bytes identically to raw.
        assert_eq!(ledger_wire_bytes(&via_tracker), t.total_bytes());
    }

    #[test]
    fn ma_aggregate_averages_live_workers_only() {
        let mut flat = vec![0.0f32; 2];
        let contribs = vec![
            Some((vec![1.0, 3.0], 2.0, 2)),
            None,
            Some((vec![3.0, 5.0], 4.0, 2)),
        ];
        let mean = ma_aggregate(contribs, &mut flat).unwrap();
        assert_eq!(flat, vec![2.0, 4.0]);
        assert!((mean - 1.5).abs() < 1e-6);
    }

    #[test]
    fn ma_aggregate_all_down_carries_model_over() {
        let mut flat = vec![7.0f32, 8.0];
        let mean = ma_aggregate(vec![None, None], &mut flat).unwrap();
        assert_eq!(flat, vec![7.0, 8.0]);
        assert_eq!(mean, 0.0);
    }
}
